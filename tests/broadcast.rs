//! Integration: the Chord ring-broadcast primitive (§4's `broadcast`) —
//! exactly-once coverage on stable rings, the mechanism beneath on-demand
//! fan-out.

use std::collections::HashMap;

use libdat::chord::{ChordConfig, ChordNode, IdPolicy, IdSpace, NodeAddr, StaticRing, Upcall};
use libdat::sim::harness::prestabilized_chord;
use rand::SeedableRng;

fn cfg(space: IdSpace) -> ChordConfig {
    ChordConfig {
        space,
        stabilize_ms: 60_000,
        fix_fingers_ms: 60_000,
        check_pred_ms: 60_000,
        ..ChordConfig::default()
    }
}

#[test]
fn broadcast_reaches_every_node_exactly_once() {
    let space = IdSpace::new(32);
    for (n, seed) in [(16usize, 1u64), (100, 2), (256, 3)] {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
        let mut net = prestabilized_chord(&ring, cfg(space), seed);
        net.take_upcalls(); // drop the Joined upcalls
        let origin = NodeAddr(0);
        net.with_node(origin, |node: &mut ChordNode| {
            ((), node.broadcast(vec![7, 7, 7]))
        });
        net.run_for(30_000);
        let mut seen: HashMap<NodeAddr, u32> = HashMap::new();
        for u in net.take_upcalls() {
            if let Upcall::Broadcast { payload, .. } = &u.upcall {
                assert_eq!(payload, &vec![7, 7, 7]);
                *seen.entry(u.node).or_insert(0) += 1;
            }
        }
        assert_eq!(seen.len(), n, "n={n}: every node must be reached");
        assert!(
            seen.values().all(|&c| c == 1),
            "n={n}: exactly-once delivery violated: {:?}",
            seen.values().filter(|&&c| c != 1).collect::<Vec<_>>()
        );
    }
}

#[test]
fn broadcast_message_count_is_n_minus_1() {
    // The disjoint-range fan-out sends exactly one message per remote node.
    let space = IdSpace::new(32);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
    let ring = StaticRing::build(space, 128, IdPolicy::Probed, &mut rng);
    let mut net = prestabilized_chord(&ring, cfg(space), 9);
    net.reset_link_stats();
    net.with_node(NodeAddr(5), |node: &mut ChordNode| {
        ((), node.broadcast(vec![1]))
    });
    net.run_for(30_000);
    let total_sent: u64 = net.addrs().iter().map(|&a| net.link_stats(a).sent).sum();
    assert_eq!(total_sent, 127, "one broadcast frame per remote node");
}

#[test]
fn ping_node_detects_crash_and_evicts() {
    let space = IdSpace::new(32);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
    let ring = StaticRing::build(space, 24, IdPolicy::Probed, &mut rng);
    let mut net = prestabilized_chord(&ring, cfg(space), 4);
    net.take_upcalls();
    // Pick a node and one of its fingers; crash the finger.
    let me = NodeAddr(0);
    let target = net
        .node(me)
        .unwrap()
        .table()
        .iter()
        .map(|(_, f)| f.node)
        .last()
        .expect("has fingers");
    let target_addr = target.addr;
    net.crash(target_addr);
    // Two ping rounds (two strikes) evict the dead finger. A ping only
    // counts as a timeout after its retransmissions are exhausted —
    // 2 s + 4 s + 8 s of backoff with the default RTO — so give each
    // round the full cycle.
    for _ in 0..2 {
        net.with_node(me, |node: &mut ChordNode| ((), node.ping_node(target)));
        net.run_for(20_000);
    }
    let still_there = net
        .node(me)
        .unwrap()
        .table()
        .iter()
        .any(|(_, f)| f.node.id == target.id);
    assert!(
        !still_there,
        "dead finger must be evicted after two strikes"
    );
}

#[test]
fn ping_node_keeps_live_nodes() {
    let space = IdSpace::new(32);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    let ring = StaticRing::build(space, 24, IdPolicy::Probed, &mut rng);
    let mut net = prestabilized_chord(&ring, cfg(space), 5);
    let me = NodeAddr(0);
    let target = net
        .node(me)
        .unwrap()
        .table()
        .iter()
        .map(|(_, f)| f.node)
        .last()
        .unwrap();
    for _ in 0..3 {
        net.with_node(me, |node: &mut ChordNode| ((), node.ping_node(target)));
        net.run_for(5_000);
    }
    let still_there = net
        .node(me)
        .unwrap()
        .table()
        .iter()
        .any(|(_, f)| f.node.id == target.id);
    assert!(still_there, "live nodes answer pings and stay");
}
