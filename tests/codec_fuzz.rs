//! Decode-never-panics property tests over every wire codec in the
//! workspace — chord frames, DAT payloads, MAAN payloads, and the
//! Prometheus text parser — plus the seeded structure-aware fuzz smoke
//! (see `dat_sim::fuzz`).
//!
//! Everything here runs under plain `cargo test` with fixed seeds: same
//! binary, same inputs, same verdict. CI scales the mutation count up
//! via `FUZZ_ITERS=50000 cargo test --test codec_fuzz`.

use dat_sim::fuzz::{chord_corpus, dat_corpus, fuzz_codec, maan_corpus, FuzzTarget, ALL_TARGETS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Mutations per codec for the fuzz smoke: 5k under plain `cargo test`,
/// raised via `FUZZ_ITERS` (CI runs 50k per codec).
fn fuzz_iters() -> u64 {
    std::env::var("FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000)
}

#[test]
fn seeded_fuzz_smoke_finds_no_panic_in_any_codec() {
    let iters = fuzz_iters();
    for target in ALL_TARGETS {
        // fuzz_codec panics (with seed + hex input) on any decoder panic
        // or re-encode instability; returning at all is the pass.
        let report = fuzz_codec(target, 0xC0FFEE, iters);
        eprintln!(
            "fuzz {}: {} mutations over {} corpus frames — {} rejected, {} survived",
            target.label(),
            report.iterations,
            report.corpus,
            report.rejected,
            report.survived
        );
        assert_eq!(report.iterations, iters);
        assert_eq!(report.rejected + report.survived, iters);
        assert!(
            report.rejected > 0,
            "{}: no mutation was ever rejected — the mutator is broken",
            target.label()
        );
    }
}

#[test]
fn truncation_at_every_offset_never_panics() {
    for msg in chord_corpus() {
        let bytes = dat_chord::codec::encode(&msg);
        for cut in 0..bytes.len() {
            assert!(
                dat_chord::codec::decode(&bytes[..cut]).is_err(),
                "chord {:?}: {cut}-byte prefix decoded",
                msg.kind()
            );
        }
    }
    for msg in dat_corpus() {
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            // No panic is the property; a short prefix must error.
            assert!(
                dat_core::codec::DatMsg::decode(&bytes[..cut]).is_err(),
                "DAT {}: {cut}-byte prefix decoded",
                msg.kind()
            );
        }
    }
    for msg in maan_corpus() {
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(
                dat_maan::MaanMsg::decode(&bytes[..cut]).is_err(),
                "MAAN {}: {cut}-byte prefix decoded",
                msg.kind()
            );
        }
    }
}

/// Chord frames carry a CRC32C trailer, so *every* single-bit flip of a
/// valid frame must be rejected. DAT and MAAN payloads travel inside
/// checksummed chord frames and have no trailer of their own — for them
/// the property is only that a flip never panics the decoder.
#[test]
fn single_bit_flips_never_panic_and_chord_rejects_them_all() {
    for msg in chord_corpus() {
        let bytes = dat_chord::codec::encode(&msg);
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert!(
                dat_chord::codec::decode(&flipped).is_err(),
                "chord {:?}: flipping bit {bit} went undetected",
                msg.kind()
            );
        }
    }
    for msg in dat_corpus() {
        let bytes = msg.encode();
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            let _ = dat_core::codec::DatMsg::decode(&flipped);
        }
    }
    for msg in maan_corpus() {
        let bytes = msg.encode();
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            let _ = dat_maan::MaanMsg::decode(&flipped);
        }
    }
}

#[test]
fn pure_random_bytes_never_panic_any_decoder() {
    let mut rng = SmallRng::seed_from_u64(0xBAD5EED);
    for _ in 0..2_000 {
        let n = rng.random_range(0..256usize);
        let mut bytes = vec![0u8; n];
        for b in &mut bytes {
            *b = rng.random();
        }
        let _ = dat_chord::codec::decode(&bytes);
        let _ = dat_core::codec::DatMsg::decode(&bytes);
        let _ = dat_maan::MaanMsg::decode(&bytes);
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = dat_obs::validate_prometheus(text);
        }
    }
}

/// The fuzzer itself is a deterministic function of its seed — the replay
/// handle a CI failure prints is trustworthy.
#[test]
fn fuzz_reports_are_reproducible() {
    for target in [FuzzTarget::Chord, FuzzTarget::Stats] {
        assert_eq!(
            fuzz_codec(target, 0xFEED, 1_000),
            fuzz_codec(target, 0xFEED, 1_000)
        );
    }
}
