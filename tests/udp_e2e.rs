//! Integration: the same DAT stack over real loopback UDP — the paper's
//! RPC-based deployment (§5.1). Kept small so CI stays fast; the
//! `rpc_cluster` example scales the same path to larger clusters.

use std::time::{Duration, Instant};

use libdat::chord::{ChordConfig, Id, IdSpace, NodeAddr, NodeStatus};
use libdat::core::{AggFunc, AggregationMode, DatConfig, DatEvent, DatProtocol, StackNode};
use libdat::rpc::RpcCluster;
use rand::{Rng, SeedableRng};

fn fast_chord() -> ChordConfig {
    ChordConfig {
        space: IdSpace::new(40),
        stabilize_ms: 60,
        fix_fingers_ms: 30,
        check_pred_ms: 200,
        req_timeout_ms: 800,
        probe_on_join: false,
        ..ChordConfig::default()
    }
}

#[test]
fn udp_cluster_converges_and_answers_queries() {
    let n = 8usize;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    let dcfg = DatConfig {
        epoch_ms: 150,
        query_window_ms: 250,
        ..DatConfig::default()
    };
    let mut actors = Vec::new();
    for i in 0..n {
        let id = Id(rng.random());
        let mut node =
            StackNode::new(fast_chord(), id, NodeAddr(i as u64)).with_app(DatProtocol::new(dcfg));
        let key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, (i * 10) as f64);
        actors.push(node);
    }
    let key = libdat::chord::hash_to_id(IdSpace::new(40), b"cpu-usage");
    let cluster = RpcCluster::launch(actors).unwrap();

    let bootstrap = cluster
        .call(NodeAddr(0), |node| (node.me(), node.start_create()))
        .unwrap();
    for i in 1..n {
        cluster.cast(NodeAddr(i as u64), move |node| node.start_join(bootstrap));
        std::thread::sleep(Duration::from_millis(50));
    }

    // Wait for every node to be active with a correct successor ring.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let mut infos = Vec::new();
        for i in 0..n {
            if let Some(v) = cluster.call(NodeAddr(i as u64), |node| {
                (
                    (
                        node.status(),
                        node.me().id,
                        node.chord().table().successor().map(|s| s.id),
                    ),
                    vec![],
                )
            }) {
                infos.push(v);
            }
        }
        let active = infos.iter().all(|(s, _, _)| *s == NodeStatus::Active);
        if active && infos.len() == n {
            let mut ids: Vec<Id> = infos.iter().map(|(_, id, _)| *id).collect();
            ids.sort_unstable();
            let ring_ok = infos.iter().all(|(_, id, succ)| {
                let pos = ids.iter().position(|x| x == id).unwrap();
                *succ == Some(ids[(pos + 1) % n])
            });
            if ring_ok {
                break;
            }
        }
        assert!(Instant::now() < deadline, "UDP ring did not converge");
        std::thread::sleep(Duration::from_millis(100));
    }

    // Continuous aggregation warm-up, then an on-demand query.
    std::thread::sleep(Duration::from_millis(600));
    let asker = NodeAddr(3);
    let reqid = cluster.call(asker, move |node| node.query(key)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let partial = loop {
        let found = cluster
            .call(asker, |node| (node.take_events(), vec![]))
            .unwrap_or_default()
            .into_iter()
            .find_map(|e| match e {
                DatEvent::QueryDone {
                    reqid: r, partial, ..
                } if r == reqid => Some(partial),
                _ => None,
            });
        if let Some(p) = found {
            break p;
        }
        assert!(Instant::now() < deadline, "on-demand query timed out");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(partial.count as usize, n, "query covers every node");
    let want: f64 = (0..n).map(|i| (i * 10) as f64).sum();
    assert_eq!(partial.finalize(AggFunc::Sum), want);

    let stats = cluster.stats();
    assert!(stats.decode_errors == 0, "{stats:?}");
    let actors = cluster.shutdown();
    assert_eq!(actors.len(), n);
}

#[test]
fn udp_continuous_reports_reach_root() {
    let n = 5usize;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(123);
    let dcfg = DatConfig {
        epoch_ms: 120,
        ..DatConfig::default()
    };
    let mut actors = Vec::new();
    for i in 0..n {
        let id = Id(rng.random());
        let mut node =
            StackNode::new(fast_chord(), id, NodeAddr(i as u64)).with_app(DatProtocol::new(dcfg));
        let key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, 7.0);
        actors.push(node);
    }
    let cluster = RpcCluster::launch(actors).unwrap();
    let bootstrap = cluster
        .call(NodeAddr(0), |node| (node.me(), node.start_create()))
        .unwrap();
    for i in 1..n {
        cluster.cast(NodeAddr(i as u64), move |node| node.start_join(bootstrap));
        std::thread::sleep(Duration::from_millis(80));
    }
    // Poll every node for a full-coverage root report. The completeness
    // accounting must ride the real UDP transport intact: one contributor
    // per node, a sane local ring-size estimate, bounded staleness.
    let deadline = Instant::now() + Duration::from_secs(20);
    'outer: loop {
        for i in 0..n {
            let events = cluster
                .call(NodeAddr(i as u64), |node| (node.take_events(), vec![]))
                .unwrap_or_default();
            for e in events {
                if let DatEvent::Report {
                    partial,
                    completeness,
                    ..
                } = e
                {
                    if partial.count as usize == n {
                        assert_eq!(partial.finalize(AggFunc::Sum), 7.0 * n as f64);
                        assert_eq!(
                            completeness.contributors as usize, n,
                            "one contributor per node over UDP"
                        );
                        assert!(
                            completeness.ratio > 0.2 && completeness.ratio <= 2.0,
                            "completeness ratio {:.3} from the local density estimate",
                            completeness.ratio
                        );
                        assert!(
                            completeness.staleness_ms <= 4 * 120,
                            "staleness {} ms",
                            completeness.staleness_ms
                        );
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "no full-coverage report over UDP"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    cluster.shutdown();
}
