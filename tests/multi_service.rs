//! Integration: one `StackNode` hosts several application protocols at
//! once — continuous DAT aggregation and MAAN resource discovery share a
//! single Chord substrate (one finger table, one stabilization schedule),
//! and the engine's per-proto tallies attribute every application message
//! to the protocol that produced it.

use libdat::chord::{ChordConfig, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use libdat::core::{
    AggFunc, AggregationMode, DatConfig, DatEvent, DatProtocol, StackNode, DAT_PROTO,
};
use libdat::maan::{MaanEvent, MaanProtocol, MaanStack, Resource, MAAN_PROTO};
use libdat::monitor::grid_schemas;
use libdat::sim::harness::{addr_book, prestabilized_stack};
use rand::SeedableRng;

const BITS: u8 = 32;
const N: usize = 64;

#[test]
fn one_stack_runs_aggregation_and_discovery_concurrently() {
    let space = IdSpace::new(BITS);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0x5AC);
    let ring = StaticRing::build(space, N, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 60_000,
        fix_fingers_ms: 60_000,
        check_pred_ms: 60_000,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net = prestabilized_stack(&ring, ccfg, 0x5AC, |_, id, addr| {
        StackNode::new(ccfg, id, addr)
            .with_app(DatProtocol::new(dcfg))
            .with_app(MaanProtocol::new(grid_schemas()))
    });
    net.set_record_upcalls(false);
    let book = addr_book(&ring);

    // Every node hosts both services on the same substrate.
    for &id in ring.ids() {
        let node = net.node(book[&id]).unwrap();
        assert_eq!(node.protocols(), vec![DAT_PROTO, MAAN_PROTO]);
    }

    // DAT side: register the global attribute everywhere.
    let mut key = libdat::chord::Id(0);
    for (i, &id) in ring.ids().iter().enumerate() {
        let node = net.node_mut(book[&id]).unwrap();
        key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, i as f64);
    }

    // MAAN side: 16 machines advertise their cpu-speed from scattered
    // origin nodes; registration routes to the LPH owner of each value.
    for j in 0..16usize {
        let speed = j as f64 * 0.5; // 0.0, 0.5, …, 7.5 GHz
        let res = Resource::new(&format!("grid://host-{j:02}")).with("cpu-speed", speed);
        let origin = book[&ring.ids()[(j * 4) % N]];
        net.with_node(origin, |n| ((), n.maan_register(&res)))
            .unwrap();
    }
    net.run_for(12_000);

    // Measure a clean window: both services active at once.
    for addr in net.addrs() {
        net.node_mut(addr).unwrap().reset_metrics();
        net.node_mut(addr).unwrap().take_events();
    }
    let asker = book[&ring.ids()[N / 2]];
    let qid = net
        .with_node(asker, |n| n.maan_range_query("cpu-speed", 2.0, 3.0))
        .unwrap();
    net.run_for(6_000);

    // The range query resolved over the same overlay the DAT runs on.
    let hits = net
        .node_mut(asker)
        .unwrap()
        .take_maan_events()
        .into_iter()
        .find_map(|e| match e {
            MaanEvent::QueryDone { qid: q, hits } if q == qid => Some(hits),
            _ => None,
        })
        .expect("range query completes while aggregation runs");
    let mut uris: Vec<String> = hits.iter().map(|r| r.uri.clone()).collect();
    uris.sort();
    assert_eq!(
        uris,
        vec!["grid://host-04", "grid://host-05", "grid://host-06"],
        "cpu-speed in [2.0, 3.0] GHz"
    );

    // Meanwhile the DAT kept reporting full coverage at its root.
    let root = book[&ring.successor(key)];
    let p = net
        .node_mut(root)
        .unwrap()
        .take_events()
        .into_iter()
        .rev()
        .find_map(|e| match e {
            DatEvent::Report {
                key: k, partial, ..
            } if k == key => Some(partial),
            _ => None,
        })
        .expect("root keeps reporting during discovery");
    assert_eq!(p.count as usize, N);
    assert_eq!(p.finalize(AggFunc::Sum), (N * (N - 1) / 2) as f64);

    // Per-node tallies attribute traffic to the right proto byte: the DAT
    // epoch traffic is ubiquitous, the MAAN walk is sparse, and the books
    // balance per protocol once the network quiesces (no loss configured).
    let addrs = net.addrs();
    let dat_senders = addrs
        .iter()
        .filter(|&&a| net.node(a).unwrap().proto_sent(DAT_PROTO) > 0)
        .count();
    assert!(
        dat_senders >= N - 1,
        "every non-root node sends DAT traffic ({dat_senders})"
    );
    let maan_sent: u64 = addrs
        .iter()
        .map(|&a| net.node(a).unwrap().proto_sent(MAAN_PROTO))
        .sum();
    let maan_recv: u64 = addrs
        .iter()
        .map(|&a| net.node(a).unwrap().proto_received(MAAN_PROTO))
        .sum();
    assert!(maan_sent > 0, "the walk produced MAAN-tagged messages");
    assert_eq!(maan_sent, maan_recv, "MAAN books balance at quiescence");

    // And with no discovery in flight, the MAAN tally stays flat while the
    // DAT tally keeps growing — attribution, not just accounting.
    for addr in net.addrs() {
        net.node_mut(addr).unwrap().reset_metrics();
    }
    net.run_for(3_000);
    let dat_total: u64 = net
        .addrs()
        .iter()
        .map(|&a| net.node(a).unwrap().proto_sent(DAT_PROTO))
        .sum();
    let maan_total: u64 = net
        .addrs()
        .iter()
        .map(|&a| net.node(a).unwrap().proto_sent(MAAN_PROTO))
        .sum();
    assert!(dat_total > 0, "continuous aggregation keeps running");
    assert_eq!(maan_total, 0, "idle MAAN sends nothing");

    // The fleet-merged observability registry tells the same story without
    // touching any node: the engine's per-layer series reproduce the tally
    // sums exactly, nothing was dropped on this lossless run, and the
    // whole dump parses as Prometheus text.
    let fleet = libdat::sim::fleet_registry(&net);
    assert_eq!(fleet.counter_with("engine_sent_total", "dat"), dat_total);
    assert_eq!(fleet.counter_with("engine_sent_total", "maan"), maan_total);
    assert_eq!(
        fleet.counter_sum("dropped_total"),
        0,
        "lossless run dropped payloads"
    );
    let text = libdat::sim::fleet_prometheus(&net);
    let samples = libdat::obs::validate_prometheus(&text).expect("fleet dump parses");
    assert!(samples > 0);
}
