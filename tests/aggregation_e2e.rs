//! Integration: end-to-end aggregation across crates in the simulator —
//! continuous mode, on-demand queries, and the centralized baseline.

use libdat::chord::{ChordConfig, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use libdat::core::{AggFunc, AggregationMode, DatConfig, DatEvent, StackNode};
use libdat::sim::harness::{addr_book, prestabilized_dat};
use libdat::sim::SimNet;
use rand::SeedableRng;

const BITS: u8 = 32;

fn build(
    n: usize,
    scheme: RoutingScheme,
    mode: AggregationMode,
    seed: u64,
) -> (SimNet<StackNode>, StaticRing, libdat::chord::Id) {
    let space = IdSpace::new(BITS);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 60_000,
        fix_fingers_ms: 60_000,
        check_pred_ms: 60_000,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, ccfg, dcfg, seed);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let mut key = libdat::chord::Id(0);
    for (i, &id) in ring.ids().iter().enumerate() {
        let node = net.node_mut(book[&id]).unwrap();
        key = node.register("cpu-usage", mode);
        node.set_local(key, i as f64); // values 0..n-1
    }
    (net, ring, key)
}

fn last_report(
    net: &mut SimNet<StackNode>,
    addr: libdat::chord::NodeAddr,
    key: libdat::chord::Id,
) -> Option<libdat::core::AggPartial> {
    // One node can be the rendezvous root for several attributes at once —
    // filter by key.
    net.node_mut(addr)
        .unwrap()
        .take_events()
        .into_iter()
        .rev()
        .find_map(|e| match e {
            DatEvent::Report {
                key: k, partial, ..
            } if k == key => Some(partial),
            _ => None,
        })
}

#[test]
fn continuous_balanced_aggregates_every_node() {
    let n = 128;
    let (mut net, ring, key) = build(n, RoutingScheme::Balanced, AggregationMode::Continuous, 1);
    let book = addr_book(&ring);
    let root = book[&ring.successor(key)];
    // Height ≤ ~log2(n) epochs for full propagation; run a few more.
    net.run_for(15_000);
    let p = last_report(&mut net, root, key).expect("root reports");
    assert_eq!(p.count as usize, n);
    // sum of 0..n-1
    let want = (n * (n - 1) / 2) as f64;
    assert_eq!(p.finalize(AggFunc::Sum), want);
    assert_eq!(p.finalize(AggFunc::Min), 0.0);
    assert_eq!(p.finalize(AggFunc::Max), (n - 1) as f64);
    assert!((p.finalize(AggFunc::Avg) - want / n as f64).abs() < 1e-9);
}

#[test]
fn continuous_basic_also_aggregates_fully() {
    let n = 96;
    let (mut net, ring, key) = build(n, RoutingScheme::Greedy, AggregationMode::Continuous, 2);
    let book = addr_book(&ring);
    let root = book[&ring.successor(key)];
    net.run_for(15_000);
    let p = last_report(&mut net, root, key).expect("root reports");
    assert_eq!(p.count as usize, n);
}

#[test]
fn centralized_baseline_reaches_same_totals() {
    let n = 64;
    let (mut net, ring, key) = build(n, RoutingScheme::Greedy, AggregationMode::Centralized, 3);
    let book = addr_book(&ring);
    let root = book[&ring.successor(key)];
    net.run_for(10_000);
    let p = last_report(&mut net, root, key).expect("root reports");
    assert_eq!(p.count as usize, n);
    assert_eq!(p.finalize(AggFunc::Sum), (n * (n - 1) / 2) as f64);
}

#[test]
fn on_demand_query_from_any_node() {
    let n = 100;
    let (mut net, ring, key) = build(n, RoutingScheme::Balanced, AggregationMode::Continuous, 4);
    let book = addr_book(&ring);
    // Ask from three different non-root nodes.
    for idx in [0usize, n / 2, n - 1] {
        let asker = book[&ring.ids()[idx]];
        let reqid = net.with_node(asker, |node| node.query(key)).unwrap();
        net.run_for(5_000);
        let done = net
            .node_mut(asker)
            .unwrap()
            .take_events()
            .into_iter()
            .find_map(|e| match e {
                DatEvent::QueryDone {
                    reqid: r, partial, ..
                } if r == reqid => Some(partial),
                _ => None,
            })
            .expect("query completes");
        assert_eq!(done.count as usize, n, "asker idx {idx}");
        assert_eq!(done.finalize(AggFunc::Sum), (n * (n - 1) / 2) as f64);
    }
}

#[test]
fn multiple_trees_coexist() {
    // Several attributes aggregate simultaneously over distinct roots.
    let space = IdSpace::new(BITS);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    let ring = StaticRing::build(space, 64, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 60_000,
        fix_fingers_ms: 60_000,
        check_pred_ms: 60_000,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, ccfg, dcfg, 5);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let attrs = ["cpu-usage", "memory-free", "disk-free"];
    let mut keys = Vec::new();
    for &id in ring.ids() {
        let node = net.node_mut(book[&id]).unwrap();
        keys.clear();
        for (ai, attr) in attrs.iter().enumerate() {
            let k = node.register(attr, AggregationMode::Continuous);
            node.set_local(k, (ai + 1) as f64);
            keys.push(k);
        }
    }
    // Distinct rendezvous keys (SHA-1 of distinct names).
    assert_ne!(keys[0], keys[1]);
    assert_ne!(keys[1], keys[2]);
    net.run_for(15_000);
    // Drain each root once (several keys may share a root node) and keep
    // the latest report per key.
    let mut reports: std::collections::HashMap<libdat::chord::Id, libdat::core::AggPartial> =
        std::collections::HashMap::new();
    let roots: std::collections::HashSet<_> =
        keys.iter().map(|k| book[&ring.successor(*k)]).collect();
    for root in roots {
        for e in net.node_mut(root).unwrap().take_events() {
            if let DatEvent::Report { key, partial, .. } = e {
                reports.insert(key, partial);
            }
        }
    }
    for (ai, &k) in keys.iter().enumerate() {
        let p = reports
            .get(&k)
            .unwrap_or_else(|| panic!("no report for {}", attrs[ai]));
        assert_eq!(p.count, 64, "{}", attrs[ai]);
        assert_eq!(p.finalize(AggFunc::Sum), 64.0 * (ai + 1) as f64);
    }
}

#[test]
fn histogram_digests_flow_through_the_tree() {
    let space = IdSpace::new(BITS);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
    let ring = StaticRing::build(space, 50, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 60_000,
        fix_fingers_ms: 60_000,
        check_pred_ms: 60_000,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, ccfg, dcfg, 6);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let mut key = libdat::chord::Id(0);
    for (i, &id) in ring.ids().iter().enumerate() {
        let node = net.node_mut(book[&id]).unwrap();
        key = node.register_with_histogram(
            "cpu-usage",
            AggregationMode::Continuous,
            Some((0.0, 100.0, 10)),
        );
        // Half the fleet idle (~10%), half loaded (~90%).
        node.set_local(key, if i % 2 == 0 { 10.0 } else { 90.0 });
    }
    net.run_for(12_000);
    let root = book[&ring.successor(key)];
    let p = last_report(&mut net, root, key).expect("report");
    let h = p.histogram.as_ref().expect("histogram digest present");
    assert_eq!(h.total(), 50);
    assert_eq!(h.buckets[1], 25); // 10% bucket
    assert_eq!(h.buckets[9], 25); // 90% bucket
                                  // Quantiles from the digest.
    assert!(h.quantile(0.25) < 30.0);
    assert!(h.quantile(0.75) > 70.0);
}

#[test]
fn distinct_count_sketch_flows_through_the_tree() {
    // Every node reports its site; the root's sketch estimates the number
    // of distinct sites Grid-wide (idempotent merge: duplicate delivery
    // under churn cannot inflate it).
    let space = IdSpace::new(BITS);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
    let ring = StaticRing::build(space, 120, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 60_000,
        fix_fingers_ms: 60_000,
        check_pred_ms: 60_000,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, ccfg, dcfg, 77);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let mut key = libdat::chord::Id(0);
    for (i, &id) in ring.ids().iter().enumerate() {
        let node = net.node_mut(book[&id]).unwrap();
        key = node.register_with_distinct("cpu-usage", AggregationMode::Continuous, 12);
        node.set_local(key, 1.0);
        // 120 nodes spread over 17 distinct sites.
        node.observe_local_item(key, format!("site-{:02}", i % 17).as_bytes());
    }
    net.run_for(10_000);
    let root = book[&ring.successor(key)];
    let p = last_report(&mut net, root, key).expect("report");
    assert_eq!(p.count, 120);
    let est = p.distinct_estimate();
    assert!(
        (15.0..=19.0).contains(&est),
        "distinct-site estimate {est} (true: 17)"
    );
}
