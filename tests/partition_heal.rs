//! Integration: deterministic fault injection end to end — a 256-node DAT
//! ring split 3:1 for 60 virtual seconds must re-unify after the partition
//! heals, the continuous aggregation must recover to ≤1% relative error,
//! and two runs with the same seed must produce byte-identical fault
//! schedules and final statistics.

use libdat::chord::{ChordConfig, Id, IdPolicy, IdSpace, NodeAddr, RoutingScheme, StaticRing};
use libdat::core::{
    AggFunc, AggPartial, AggregationMode, Completeness, DatConfig, DatEvent, StackNode,
};
use libdat::sim::harness::{addr_book, prestabilized_dat, ring_converged};
use libdat::sim::{FaultPlan, SimNet};
use rand::SeedableRng;

const N: usize = 256;
const PARTITION_AT: u64 = 20_000;
const HEAL_AT: u64 = 80_000; // 60 s partition, per the experiment design
const END_AT: u64 = 230_000;

/// Every 4th ring position (64 of 256 nodes) forms the minority side.
fn minority(n: usize) -> Vec<NodeAddr> {
    (0..n).step_by(4).map(|i| NodeAddr(i as u64)).collect()
}

fn plan(n: usize) -> FaultPlan {
    FaultPlan::new()
        .partition_at(PARTITION_AT, minority(n))
        .heal_at(HEAL_AT)
}

struct Outcome {
    digest: u64,
    events: u64,
    traffic: Vec<(u64, u64)>,
    converged: bool,
    pre_count: u64,
    pre_completeness: Completeness,
    mid_count: u64,
    mid_completeness: Completeness,
    final_count: u64,
    final_completeness: Completeness,
    final_sum_bits: u64,
    /// First time (virtual ms) after the heal with full coverage.
    recovered_at: Option<u64>,
}

fn last_report(
    net: &mut SimNet<StackNode>,
    root: NodeAddr,
    key: Id,
) -> Option<(AggPartial, Completeness)> {
    net.node_mut(root)
        .unwrap()
        .take_events()
        .into_iter()
        .rev()
        .find_map(|e| match e {
            DatEvent::Report {
                key: k,
                partial,
                completeness,
                ..
            } if k == key => Some((partial, completeness)),
            _ => None,
        })
}

/// Run the full partition/heal scenario and fingerprint everything
/// observable about it.
fn run(seed: u64) -> Outcome {
    let space = IdSpace::new(32);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let ring = StaticRing::build(space, N, IdPolicy::Probed, &mut rng);
    // Live maintenance timers: evictions, fallen-peer probes and finger
    // repair must all run for the ring to tear and re-knit. (The frozen
    // 60 s timers used by the pure aggregation tests would mask the fault.)
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 500,
        fix_fingers_ms: 500,
        check_pred_ms: 1_000,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, ccfg, dcfg, seed);
    net.set_record_upcalls(false);
    let fp = plan(N);
    let digest = fp.digest();
    net.set_fault_plan(fp);

    let book = addr_book(&ring);
    let mut key = Id(0);
    for (i, &id) in ring.ids().iter().enumerate() {
        let node = net.node_mut(book[&id]).unwrap();
        key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, i as f64); // ground truth: sum of 0..n-1
    }
    let root = book[&ring.successor(key)];

    // Phase 1: healthy ring, full propagation before the partition fires.
    net.run_for(PARTITION_AT - 1_000);
    let (pre, pre_c) = last_report(&mut net, root, key).expect("pre-partition report");

    // Phase 2: ride through the partition; sample just before it heals.
    net.run_for(HEAL_AT - 1_000 - net.now().as_millis());
    let (mid, mid_c) = last_report(&mut net, root, key).expect("mid-partition report");

    // Phase 3: heal; drive epoch by epoch so the first full-coverage
    // report timestamps the completeness recovery.
    let mut recovered_at = None;
    let mut last = None;
    while net.now().as_millis() < END_AT {
        net.run_for(1_000);
        if let Some((p, c)) = last_report(&mut net, root, key) {
            if recovered_at.is_none() && c.contributors >= N as u64 {
                recovered_at = Some(net.now().as_millis());
            }
            last = Some((p, c));
        }
    }
    let (fin, fin_c) = last.expect("post-heal report");

    let traffic = net
        .addrs()
        .iter()
        .map(|&a| {
            let s = net.link_stats(a);
            (s.sent, s.delivered)
        })
        .collect();
    Outcome {
        digest,
        events: net.events_processed(),
        traffic,
        converged: ring_converged(&net, ring.ids()),
        pre_count: pre.count,
        pre_completeness: pre_c,
        mid_count: mid.count,
        mid_completeness: mid_c,
        final_count: fin.count,
        final_completeness: fin_c,
        final_sum_bits: fin.finalize(AggFunc::Sum).to_bits(),
        recovered_at,
    }
}

#[test]
fn partition_heals_ring_reunifies_and_aggregation_recovers() {
    let o = run(0xda7);
    let want = (N * (N - 1) / 2) as f64;

    // Before the fault the continuous aggregation covers every node, and
    // the completeness accounting agrees: the `d0` hint makes `expected`
    // exact, so the ratio is exactly 1.0.
    assert_eq!(o.pre_count as usize, N, "pre-partition coverage");
    assert_eq!(o.pre_completeness.contributors as usize, N);
    assert!(
        (o.pre_completeness.ratio - 1.0).abs() < 1e-9,
        "pre-partition completeness {:.3}",
        o.pre_completeness.ratio
    );
    // During the partition the root's tree visibly degrades: at least the
    // far side's contributions expire out of the soft state, and the
    // report *says so* via completeness < 1 instead of silently shifting.
    assert!(
        o.mid_count < N as u64,
        "partition must shrink coverage (got {})",
        o.mid_count
    );
    assert!(
        o.mid_completeness.ratio < 1.0,
        "mid-partition completeness must drop (got {:.3})",
        o.mid_completeness.ratio
    );
    assert_eq!(
        o.mid_completeness.contributors, o.mid_count,
        "each node contributes exactly one sample here, so contributors \
         must track the observation count"
    );

    // After healing the successor ring is exactly the ideal ring again...
    assert!(o.converged, "ring must re-unify after heal");
    // ...and the continuous aggregate is back within 1% of ground truth.
    let sum = f64::from_bits(o.final_sum_bits);
    let rel = (sum - want).abs() / want;
    assert!(
        rel <= 0.01,
        "post-heal sum {sum} vs {want} (rel err {rel:.4})"
    );
    let count_rel = (o.final_count as f64 - N as f64).abs() / N as f64;
    assert!(
        count_rel <= 0.01,
        "post-heal count {} vs {N}",
        o.final_count
    );
    // Completeness is back to exactly 1.0, within the promised bound:
    // soft-state expiry plus one cascade through the tree height after
    // the successor ring has re-knit (the chord-layer fallen-peer probes
    // take a bounded number of maintenance rounds; see DESIGN.md §10).
    assert!(
        (o.final_completeness.ratio - 1.0).abs() < 1e-9,
        "post-heal completeness {:.3}",
        o.final_completeness.ratio
    );
    let recovered_at = o.recovered_at.expect("completeness recovered");
    let ttl_plus_height = DatConfig::default().child_ttl_epochs + (N as f64).log2().ceil() as u64;
    let reknit_ms = 40_000; // fallen-peer probing across the healed cut
    assert!(
        recovered_at <= HEAL_AT + reknit_ms + ttl_plus_height * 1_000,
        "completeness took {} ms past the heal (bound {} ms)",
        recovered_at - HEAL_AT,
        reknit_ms + ttl_plus_height * 1_000
    );
}

#[test]
fn same_seed_replays_identical_fault_schedule_and_stats() {
    let a = run(0x5eed);
    let b = run(0x5eed);
    assert_eq!(a.digest, b.digest, "fault-plan digests differ");
    assert_eq!(a.events, b.events, "event counts differ");
    assert_eq!(a.traffic, b.traffic, "per-node traffic differs");
    assert_eq!(a.converged, b.converged);
    assert_eq!(
        (a.pre_count, a.mid_count, a.final_count, a.final_sum_bits),
        (b.pre_count, b.mid_count, b.final_count, b.final_sum_bits),
        "aggregation outcomes differ",
    );
    assert_eq!(a.recovered_at, b.recovered_at, "recovery times differ");
    assert_eq!(
        (a.mid_completeness, a.final_completeness),
        (b.mid_completeness, b.final_completeness),
        "completeness accounting differs",
    );
}
