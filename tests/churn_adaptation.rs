//! Integration: implicit DAT trees adapt to churn with no tree repair.

use libdat::chord::{
    hash_to_id, ChordConfig, IdPolicy, IdSpace, NodeAddr, RoutingScheme, StaticRing,
};
use libdat::core::{AggregationMode, DatConfig, DatEvent, DatProtocol, StackNode};
use libdat::sim::harness::{addr_book, prestabilized_dat};
use rand::SeedableRng;

const BITS: u8 = 32;

fn chord_cfg(space: IdSpace) -> ChordConfig {
    ChordConfig {
        space,
        stabilize_ms: 1_000,
        fix_fingers_ms: 500,
        check_pred_ms: 1_500,
        req_timeout_ms: 2_500,
        ..ChordConfig::default()
    }
}

#[test]
fn coverage_recovers_after_graceful_leaves() {
    let space = IdSpace::new(BITS);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(21);
    let ring = StaticRing::build(space, 64, IdPolicy::Probed, &mut rng);
    let key = hash_to_id(space, b"cpu-usage");
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, chord_cfg(space), dcfg, 21);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let root_addr = book[&ring.successor(key)];
    for &id in ring.ids() {
        let node = net.node_mut(book[&id]).unwrap();
        let k = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(k, 1.0);
    }
    net.run_for(10_000);
    // Ten graceful departures.
    let victims: Vec<NodeAddr> = net
        .addrs()
        .into_iter()
        .filter(|&a| a != root_addr)
        .take(10)
        .collect();
    for v in victims {
        net.with_node(v, |n| ((), n.leave()));
        net.run_for(1_000);
    }
    net.run_for(20_000);
    let (p, c) = net
        .node_mut(root_addr)
        .unwrap()
        .take_events()
        .into_iter()
        .rev()
        .find_map(|e| match e {
            DatEvent::Report {
                partial,
                completeness,
                ..
            } => Some((partial, completeness)),
            _ => None,
        })
        .expect("root keeps reporting");
    // 54 live contributors expected (departed nodes expire from soft state).
    assert!(
        (50..=54).contains(&(p.count as usize)),
        "coverage after leaves: {}",
        p.count
    );
    // Completeness accounting tracks the shrunken ring: one contributor
    // per live sample. `expected` comes from the root's *local* gap
    // density (no global view), and the departures here cluster near the
    // root, so the estimate can land a consistent-hashing factor off —
    // the ratio stays within that spread rather than collapsing or
    // exploding.
    assert_eq!(c.contributors, p.count, "one contributor per sample");
    assert!(
        (0.5..=2.0).contains(&c.ratio),
        "post-leave completeness {:.3}",
        c.ratio
    );
    assert!(
        (16..=80).contains(&(c.expected as usize)),
        "ring-size estimate {} after 10 of 64 leave",
        c.expected
    );
}

#[test]
fn coverage_recovers_after_crashes() {
    let space = IdSpace::new(BITS);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(22);
    let ring = StaticRing::build(space, 64, IdPolicy::Probed, &mut rng);
    let key = hash_to_id(space, b"cpu-usage");
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, chord_cfg(space), dcfg, 22);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let root_addr = book[&ring.successor(key)];
    for &id in ring.ids() {
        let node = net.node_mut(book[&id]).unwrap();
        let k = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(k, 1.0);
    }
    net.run_for(8_000);
    // Crash 8 nodes simultaneously — peers must detect via timeouts.
    let victims: Vec<NodeAddr> = net
        .addrs()
        .into_iter()
        .filter(|&a| a != root_addr)
        .take(8)
        .collect();
    for v in victims {
        net.crash(v);
    }
    net.run_for(40_000);
    let (p, c) = net
        .node_mut(root_addr)
        .unwrap()
        .take_events()
        .into_iter()
        .rev()
        .find_map(|e| match e {
            DatEvent::Report {
                partial,
                completeness,
                ..
            } => Some((partial, completeness)),
            _ => None,
        })
        .expect("root reports after crashes");
    assert!(
        (52..=56).contains(&(p.count as usize)),
        "coverage after crashes: {} (want ~56)",
        p.count
    );
    // Crashed nodes fall out of both the sample and the contributor
    // accounting — never double-counted, never resurrected.
    assert_eq!(c.contributors, p.count, "one contributor per sample");
    assert!(
        c.contributors <= 56,
        "contributors {} exceed the live ring",
        c.contributors
    );
    // Reports stay fresh: the oldest constituent sample is bounded by the
    // soft-state TTL.
    assert!(
        c.staleness_ms <= DatConfig::default().child_ttl_epochs * 1_000 + 1_000,
        "staleness {} ms",
        c.staleness_ms
    );
}

#[test]
fn live_joiners_enter_the_tree() {
    let space = IdSpace::new(BITS);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(23);
    let ring = StaticRing::build(space, 32, IdPolicy::Probed, &mut rng);
    let key = hash_to_id(space, b"cpu-usage");
    let ccfg = chord_cfg(space);
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, ccfg, dcfg, 23);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let root_addr = book[&ring.successor(key)];
    for &id in ring.ids() {
        let node = net.node_mut(book[&id]).unwrap();
        let k = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(k, 1.0);
    }
    net.run_for(5_000);
    // Eight live joins through the root.
    for j in 0..8u64 {
        let id = space.random(&mut rng);
        let addr = NodeAddr(1000 + j);
        let bootstrap = net.node(root_addr).unwrap().me();
        let mut node = StackNode::new(ccfg, id, addr).with_app(DatProtocol::new(dcfg));
        let k = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(k, 1.0);
        let outs = node.start_join(bootstrap);
        net.add_node(node);
        net.apply(addr, outs);
        net.run_for(2_000);
    }
    net.run_for(25_000);
    let (p, c) = net
        .node_mut(root_addr)
        .unwrap()
        .take_events()
        .into_iter()
        .rev()
        .find_map(|e| match e {
            DatEvent::Report {
                partial,
                completeness,
                ..
            } => Some((partial, completeness)),
            _ => None,
        })
        .expect("report");
    assert_eq!(p.count, 40, "all 32 + 8 joiners must contribute");
    assert_eq!(c.contributors, 40, "every joiner is accounted once");
}

#[test]
fn root_handoff_when_root_leaves() {
    // When the rendezvous root departs, its successor becomes the new root
    // and reports resume there.
    let space = IdSpace::new(BITS);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(24);
    let ring = StaticRing::build(space, 48, IdPolicy::Probed, &mut rng);
    let key = hash_to_id(space, b"cpu-usage");
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, chord_cfg(space), dcfg, 24);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let old_root_id = ring.successor(key);
    let old_root = book[&old_root_id];
    // The next live owner of the key after the old root departs.
    let new_root_id = ring.successor(space.add(old_root_id, 1));
    let new_root = book[&new_root_id];
    for &id in ring.ids() {
        let node = net.node_mut(book[&id]).unwrap();
        let k = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(k, 2.0);
    }
    net.run_for(8_000);
    net.with_node(old_root, |n| ((), n.leave()));
    net.run_for(25_000);
    let (p, c) = net
        .node_mut(new_root)
        .unwrap()
        .take_events()
        .into_iter()
        .rev()
        .find_map(|e| match e {
            DatEvent::Report {
                partial,
                completeness,
                ..
            } => Some((partial, completeness)),
            _ => None,
        })
        .expect("new root must take over reporting");
    assert!(
        p.count as usize >= 45,
        "new root aggregates the ring: {}",
        p.count
    );
    // The report fence names the failed-over root, so a consumer can see
    // who is speaking for the key now.
    assert_eq!(c.root, new_root_id, "fence carries the new root's id");
}
