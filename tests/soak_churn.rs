//! Churn soak: simulated hours of randomized faults against a 256-node
//! continuous aggregation, checking the self-healing invariants end to
//! end (see `dat_sim::soak`).
//!
//! The schedule composes crash bursts, partitions, flaky links and
//! duplication bursts, plus one mid-epoch crash of the acting root to
//! exercise warm failover. Each run is fully determined by its seed; a
//! failing seed is printed in the assertion message so the run can be
//! replayed bit-for-bit.
//!
//! Extra seeds can be soaked via `SOAK_SEEDS=2,9,17 cargo test --test
//! soak_churn` (the CI smoke keeps the default single-seed matrix).

use dat_sim::{run_soak, SoakConfig, SoakOutcome};

/// Seeds to soak: the fixed default, extended by `SOAK_SEEDS` (comma- or
/// space-separated integers) for longer local/CI campaigns.
fn seed_matrix() -> Vec<u64> {
    let mut seeds = vec![1];
    if let Ok(extra) = std::env::var("SOAK_SEEDS") {
        for tok in extra.split(|c: char| !c.is_ascii_digit()) {
            if let Ok(s) = tok.parse::<u64>() {
                if !seeds.contains(&s) {
                    seeds.push(s);
                }
            }
        }
    }
    seeds
}

fn soak_one(seed: u64) -> SoakOutcome {
    let cfg = SoakConfig {
        nodes: 256,
        space_bits: 32,
        seed,
        epoch_ms: 10_000,
        warmup_ms: 120_000,
        // Two simulated hours of faults + fault-free tail.
        churn_ms: 3_600_000,
        quiesce_ms: 3_600_000,
        episodes: 12,
        crash_root: true,
    };
    let out = run_soak(&cfg);
    eprintln!(
        "soak seed {seed}: digest {:#018x}, {} events, {} reports, \
         min ratio {:.3} during churn, recovered in {:?} epochs \
         (bound {}), failover {:?} ms / {:?} contributors",
        out.digest,
        out.events_processed,
        out.log.len(),
        out.min_ratio_during_churn,
        out.recovery_epochs,
        out.recovery_bound_epochs,
        out.failover_delay_ms,
        out.failover_contributors,
    );
    out
}

#[test]
fn soak_two_hours_of_churn_self_heals() {
    for seed in seed_matrix() {
        let out = soak_one(seed);

        // Every invariant breach embeds the seed, so the replay handle is
        // in the failure output.
        assert!(
            out.violations.is_empty(),
            "replay with seed {seed}: {:#?}",
            out.violations
        );

        // The schedule actually degraded the aggregate — a soak that never
        // dents completeness proves nothing.
        assert!(
            out.min_ratio_during_churn < 1.0,
            "seed {seed}: churn never degraded completeness"
        );

        // Completeness returned to 1.0 within the recovery bound after the
        // fault schedule drained, and the final report is exact.
        let recovered = out
            .recovery_epochs
            .unwrap_or_else(|| panic!("seed {seed}: completeness never recovered"));
        assert!(
            recovered <= out.recovery_bound_epochs,
            "seed {seed}: recovery took {recovered} epochs, bound {}",
            out.recovery_bound_epochs
        );
        assert_eq!(out.final_contributors, 256, "seed {seed}");
        assert!((out.final_ratio - 1.0).abs() < 1e-9, "seed {seed}");

        // Warm failover: the acting root was crashed mid-epoch, yet some
        // node reported within ~one epoch (at most one epoch of reports
        // lost; the half-epoch drain quantization adds slack), and its
        // first report already carried most of the grid — a replica
        // takeover, not a cold rebuild.
        let delay = out
            .failover_delay_ms
            .unwrap_or_else(|| panic!("seed {seed}: no report after the root crash"));
        assert!(
            delay <= 2 * 10_000,
            "seed {seed}: failover took {delay} ms — more than one epoch of reports lost"
        );
        let contributors = out.failover_contributors.unwrap_or(0);
        assert!(
            contributors as f64 >= 0.9 * 256.0,
            "seed {seed}: first post-crash report covered only {contributors}/256 nodes"
        );
    }
}
