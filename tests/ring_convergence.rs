//! Integration: live Chord protocol forms correct rings.

use libdat::chord::{ChordConfig, IdSpace, NodeStatus};
use libdat::sim::harness::{finger_convergence, ring_converged, spawn_live_ring};
use libdat::sim::LatencyModel;

fn cfg() -> ChordConfig {
    ChordConfig {
        space: IdSpace::new(32),
        ..ChordConfig::default()
    }
}

#[test]
fn thirty_two_nodes_converge() {
    let (net, ids) = spawn_live_ring(32, cfg(), 7, 2_000, 60_000);
    assert_eq!(ids.len(), 32, "every join must complete");
    assert!(ring_converged(&net, &ids), "successor ring must close");
    let fc = finger_convergence(&net, &ids);
    assert!(fc > 0.95, "fingers converged: {fc}");
}

#[test]
fn probing_join_produces_tighter_gaps() {
    let probing_cfg = ChordConfig {
        probe_on_join: true,
        ..cfg()
    };
    let (net_p, ids_p) = spawn_live_ring(48, probing_cfg, 11, 2_500, 60_000);
    assert!(ring_converged(&net_p, &ids_p));
    let (net_r, ids_r) = spawn_live_ring(48, cfg(), 11, 2_500, 60_000);
    assert!(ring_converged(&net_r, &ids_r));
    let stats_p = libdat::chord::probing::gap_stats(IdSpace::new(32), &ids_p);
    let stats_r = libdat::chord::probing::gap_stats(IdSpace::new(32), &ids_r);
    assert!(
        stats_p.ratio < stats_r.ratio,
        "probed gap ratio {} should beat random {}",
        stats_p.ratio,
        stats_r.ratio
    );
}

#[test]
fn ring_survives_random_latency() {
    let mut seeded = cfg();
    seeded.req_timeout_ms = 4_000;
    let (mut net, ids) = spawn_live_ring(16, seeded, 3, 3_000, 40_000);
    net.set_latency(LatencyModel::Uniform { lo: 5, hi: 120 });
    net.run_for(60_000);
    assert!(ring_converged(&net, &ids));
}

#[test]
fn lookups_resolve_to_correct_owners_after_live_join() {
    let (mut net, ids) = spawn_live_ring(24, cfg(), 5, 2_000, 60_000);
    assert!(ring_converged(&net, &ids));
    let ring = libdat::chord::StaticRing::from_ids(IdSpace::new(32), ids.clone());
    net.take_upcalls();
    // Issue lookups from several nodes for several keys.
    let addrs = net.addrs();
    let mut expected = Vec::new();
    for (i, &from) in addrs.iter().take(6).enumerate() {
        let key = libdat::chord::Id((i as u64 + 1) * 0x1234_5678);
        let req = net.with_node(from, |n| n.lookup(key)).unwrap();
        expected.push((req, ring.successor(key)));
    }
    net.run_for(20_000);
    let ups = net.take_upcalls();
    for (req, owner) in expected {
        let got = ups
            .iter()
            .find_map(|u| match &u.upcall {
                libdat::chord::Upcall::LookupDone { req: r, owner, .. } if *r == req => {
                    Some(owner.id)
                }
                _ => None,
            })
            .unwrap_or_else(|| panic!("lookup {req} did not complete"));
        assert_eq!(got, owner);
    }
}

#[test]
fn all_nodes_active_after_spawn() {
    let (net, ids) = spawn_live_ring(12, cfg(), 9, 2_000, 30_000);
    assert_eq!(ids.len(), 12);
    for (_, node) in net.iter_nodes() {
        assert_eq!(node.status(), NodeStatus::Active);
    }
}
