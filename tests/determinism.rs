//! Integration: full-stack determinism — a seed fully determines every
//! simulation outcome (the property all experiment reproducibility rests
//! on), and different seeds genuinely differ.

use libdat::chord::{ChordConfig, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use libdat::core::{AggregationMode, DatConfig, DatEvent, DatProtocol, StackNode};
use libdat::sim::harness::addr_book;
use libdat::sim::{LatencyModel, LossModel, SchedulerKind, SimNet};
use rand::SeedableRng;

/// Run a lossy, jittery aggregation network and produce a fingerprint of
/// everything observable: events processed, per-node traffic, root reports.
type Fingerprint = (u64, u64, Vec<(u64, u64)>, Vec<(u64, u64)>);

fn fingerprint(seed: u64) -> Fingerprint {
    fingerprint_on(seed, SchedulerKind::Wheel)
}

fn fingerprint_on(seed: u64, scheduler: SchedulerKind) -> Fingerprint {
    let space = IdSpace::new(32);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let ring = StaticRing::build(space, 96, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 2_000,
        fix_fingers_ms: 1_000,
        check_pred_ms: 2_000,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    // Same construction as `prestabilized_dat`, but on an explicit
    // scheduler backend so the wheel/heap parity test below can drive the
    // identical workload through both.
    let mut net: SimNet<StackNode> = SimNet::with_scheduler(seed, scheduler);
    {
        let book = addr_book(&ring);
        for &id in ring.ids() {
            let addr = book[&id];
            let mut node = StackNode::new(ccfg, id, addr).with_app(DatProtocol::new(dcfg));
            let table = ring.table_of_with(id, ccfg.succ_list_len, &|id| book[&id]);
            let outs = node.start_with_table(table);
            net.add_node(node);
            net.apply(addr, outs);
        }
    }
    net.set_latency(LatencyModel::Uniform { lo: 2, hi: 40 });
    net.set_loss(LossModel::new(0.02));
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let mut key = libdat::chord::Id(0);
    for (i, &id) in ring.ids().iter().enumerate() {
        let node = net.node_mut(book[&id]).unwrap();
        key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, (i * 3) as f64);
    }
    net.run_for(20_000);
    let traffic: Vec<(u64, u64)> = net
        .addrs()
        .iter()
        .map(|&a| {
            let s = net.link_stats(a);
            (s.sent, s.delivered)
        })
        .collect();
    let root = book[&ring.successor(key)];
    let reports: Vec<(u64, u64)> = net
        .node_mut(root)
        .unwrap()
        .take_events()
        .into_iter()
        .filter_map(|e| match e {
            DatEvent::Report { epoch, partial, .. } => Some((epoch, partial.count)),
            _ => None,
        })
        .collect();
    (net.events_processed(), net.dropped, traffic, reports)
}

#[test]
fn same_seed_reproduces_everything() {
    let a = fingerprint(0xDEAD);
    let b = fingerprint(0xDEAD);
    assert_eq!(a.0, b.0, "events processed");
    assert_eq!(a.1, b.1, "messages dropped");
    assert_eq!(a.2, b.2, "per-node traffic");
    assert_eq!(a.3, b.3, "root reports");
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    // Different rings, latencies and losses: traffic cannot coincide.
    assert_ne!(a.2, b.2, "distinct seeds must produce distinct traffic");
}

#[test]
fn wheel_and_heap_schedulers_are_schedule_identical() {
    // The timer wheel is a drop-in for the heap: the same seed must
    // produce the exact same fingerprint — event counts, every node's
    // traffic, every root report — on both backends. This is the
    // guarantee that lets the wheel be the default without invalidating
    // any recorded digest.
    let w = fingerprint_on(0xBEEF, SchedulerKind::Wheel);
    let h = fingerprint_on(0xBEEF, SchedulerKind::Heap);
    assert_eq!(w.0, h.0, "events processed");
    assert_eq!(w.1, h.1, "messages dropped");
    assert_eq!(w.2, h.2, "per-node traffic");
    assert_eq!(w.3, h.3, "root reports");
}

#[test]
fn sharded_merge_is_schedule_identical_to_wheel() {
    // The sharded backend's K-way `(at, seq)` merge must be a drop-in for
    // the wheel under the full protocol stack — same fingerprint for any
    // lane count, including lane counts that don't divide the workload
    // evenly. This is the merge-rule half of the multi-core determinism
    // contract, proven pop-for-pop without any threading in play.
    let w = fingerprint_on(0xBEEF, SchedulerKind::Wheel);
    for shards in [1u8, 2, 4, 8] {
        let s = fingerprint_on(0xBEEF, SchedulerKind::Sharded { shards });
        assert_eq!(w, s, "{shards}-lane merge diverged from the wheel");
    }
}

#[test]
fn sharded_engine_digest_is_shard_count_invariant() {
    // The threaded engine half of the contract: the same seeded scale
    // workload (real ChordNode maintenance) must produce a byte-identical
    // digest whether it runs on 1 worker thread or 8.
    use libdat::sim::{run_scale, ScaleConfig};
    let cfg = |shards| ScaleConfig {
        n: 192,
        virtual_ms: 5_000,
        shards,
        ..ScaleConfig::default()
    };
    let base = run_scale(cfg(1));
    assert!(base.events > 0, "workload generated no events");
    assert_eq!(base.clamped, 0, "conservative window violated");
    for s in [2usize, 4, 8] {
        let r = run_scale(cfg(s));
        assert_eq!(
            r.digest, base.digest,
            "{s}-shard digest {:016x} diverged from 1-shard {:016x}",
            r.digest, base.digest
        );
        assert_eq!(r.events, base.events, "{s}-shard event count diverged");
        assert_eq!(r.clamped, 0);
    }
}
