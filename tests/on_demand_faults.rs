//! Integration: on-demand aggregation under faults — lost branches resolve
//! via the per-node window timeout; queries during churn still answer.

use libdat::chord::{
    hash_to_id, ChordConfig, IdPolicy, IdSpace, NodeAddr, RoutingScheme, StaticRing,
};
use libdat::core::{AggFunc, AggregationMode, DatConfig, DatEvent, StackNode};
use libdat::sim::harness::{addr_book, prestabilized_dat};
use libdat::sim::{LossModel, SimNet};
use rand::SeedableRng;

const BITS: u8 = 32;

fn build(n: usize, seed: u64) -> (SimNet<StackNode>, StaticRing, libdat::chord::Id) {
    let space = IdSpace::new(BITS);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 2_000,
        fix_fingers_ms: 1_000,
        check_pred_ms: 2_000,
        req_timeout_ms: 2_500,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        query_window_ms: 800,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, ccfg, dcfg, seed);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let mut key = libdat::chord::Id(0);
    for &id in ring.ids() {
        let node = net.node_mut(book[&id]).unwrap();
        key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, 2.0);
    }
    (net, ring, key)
}

fn query_result(
    net: &mut SimNet<StackNode>,
    asker: NodeAddr,
    key: libdat::chord::Id,
    run_ms: u64,
) -> Option<libdat::core::AggPartial> {
    query_with_retries(net, asker, key, run_ms, 1)
}

/// Like a real client: the `Request` hop to the root is fire-and-forget, so
/// retry when no result arrives (meanwhile the failure detector evicts the
/// dead hop that swallowed the previous attempt).
fn query_with_retries(
    net: &mut SimNet<StackNode>,
    asker: NodeAddr,
    key: libdat::chord::Id,
    run_ms: u64,
    attempts: u32,
) -> Option<libdat::core::AggPartial> {
    for _ in 0..attempts {
        let reqid = net.with_node(asker, |node| node.query(key)).unwrap();
        net.run_for(run_ms);
        let found = net
            .node_mut(asker)
            .unwrap()
            .take_events()
            .into_iter()
            .find_map(|e| match e {
                DatEvent::QueryDone {
                    reqid: r, partial, ..
                } if r == reqid => Some(partial),
                _ => None,
            });
        if found.is_some() {
            return found;
        }
    }
    None
}

#[test]
fn query_with_crashed_branch_returns_partial_answer() {
    let n = 80;
    let (mut net, ring, key) = build(n, 41);
    let book = addr_book(&ring);
    let root_addr = book[&ring.successor(key)];
    net.run_for(3_000);
    // Crash a handful of nodes without letting failure detection catch up:
    // the fan-out loses those branches and the window timeout must close
    // the query with a partial (but substantial) answer.
    let victims: Vec<NodeAddr> = net
        .addrs()
        .into_iter()
        .filter(|&a| a != root_addr && a != NodeAddr(0))
        .take(6)
        .collect();
    for v in &victims {
        net.crash(*v);
    }
    let p = query_with_retries(&mut net, NodeAddr(0), key, 8_000, 4)
        .expect("query must complete despite crashed branches");
    let live = n - victims.len();
    assert!(
        (p.count as usize) <= live,
        "cannot count more than the living: {} > {live}",
        p.count
    );
    assert!(
        (p.count as usize) >= live * 6 / 10,
        "window timeout should preserve most branches: {} of {live}",
        p.count
    );
}

#[test]
fn query_under_packet_loss_still_completes() {
    let (mut net, ring, key) = build(60, 42);
    let book = addr_book(&ring);
    let _ = book;
    let _ = ring;
    net.run_for(3_000);
    net.set_loss(LossModel::new(0.02));
    // A lost Query near the top of the fan-out drops a whole subtree, so
    // single-shot coverage is heavy-tailed; a client retry recovers it.
    let mut best = 0u64;
    for _ in 0..3 {
        if let Some(p) = query_with_retries(&mut net, NodeAddr(3), key, 10_000, 2) {
            assert_eq!(p.finalize(AggFunc::Avg), 2.0);
            best = best.max(p.count);
            if best >= 54 {
                break;
            }
        }
    }
    assert!(best >= 40, "best coverage under 2% loss: {best} of 60");
}

#[test]
fn concurrent_queries_do_not_interfere() {
    let n = 64;
    let (mut net, ring, key) = build(n, 43);
    let book = addr_book(&ring);
    net.run_for(3_000);
    // Three nodes ask at the same time; each must get the full answer with
    // its own request id.
    let askers = [
        book[&ring.ids()[1]],
        book[&ring.ids()[20]],
        book[&ring.ids()[40]],
    ];
    let reqids: Vec<u64> = askers
        .iter()
        .map(|&a| net.with_node(a, |node| node.query(key)).unwrap())
        .collect();
    net.run_for(8_000);
    for (&asker, &reqid) in askers.iter().zip(&reqids) {
        let p = net
            .node_mut(asker)
            .unwrap()
            .take_events()
            .into_iter()
            .find_map(|e| match e {
                DatEvent::QueryDone {
                    reqid: r, partial, ..
                } if r == reqid => Some(partial),
                _ => None,
            })
            .expect("each concurrent query completes");
        assert_eq!(p.count as usize, n);
        assert_eq!(p.finalize(AggFunc::Sum), 2.0 * n as f64);
    }
}

#[test]
fn repeated_queries_reuse_nothing_stale() {
    let (mut net, ring, key) = build(40, 44);
    let book = addr_book(&ring);
    let asker = book[&ring.ids()[5]];
    net.run_for(2_000);
    let p1 = query_result(&mut net, asker, key, 6_000).expect("first query");
    // Change every node's local value; a second query must see fresh data.
    for addr in net.addrs() {
        net.node_mut(addr).unwrap().set_local(key, 9.0);
    }
    let p2 = query_result(&mut net, asker, key, 6_000).expect("second query");
    assert_eq!(p1.finalize(AggFunc::Avg), 2.0);
    assert_eq!(p2.finalize(AggFunc::Avg), 9.0);
    assert_eq!(p2.count, 40);
}

#[test]
fn unregistered_nodes_contribute_identity() {
    // Nodes that never registered the aggregation respond with the
    // identity partial: the query completes and counts only registrants.
    let space = IdSpace::new(BITS);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(45);
    let ring = StaticRing::build(space, 30, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        query_window_ms: 800,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, ccfg, dcfg, 45);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let key = hash_to_id(space, b"cpu-usage");
    // Only every other node registers.
    let mut registered = 0;
    for (i, &id) in ring.ids().iter().enumerate() {
        if i % 2 == 0 {
            let node = net.node_mut(book[&id]).unwrap();
            let k = node.register("cpu-usage", AggregationMode::Continuous);
            node.set_local(k, 5.0);
            registered += 1;
        }
    }
    net.run_for(2_000);
    let asker = book[&ring.ids()[0]];
    let p = query_result(&mut net, asker, key, 6_000).expect("query completes");
    assert_eq!(p.count as usize, registered);
    assert_eq!(p.finalize(AggFunc::Avg), 5.0);
}
