//! Wire-corruption soak: sustained byte-level frame damage — a noise
//! floor of bit flips on tree uplinks, a garbage jam on the biggest
//! subtree's uplink, and a poisoning burst on a ring-neighbor link —
//! against a continuous aggregation (see `dat_sim::corrupt`).
//!
//! Scored invariants: no panics, zero silently-wrong root reports
//! (every node feeds the same constant, so the root sum must equal
//! `contributors × value` exactly), completeness dips and fully heals,
//! detection surfaces in `bad_frames_total`, and the poisoned peer is
//! quarantined and later released.
//!
//! Each run is fully determined by its seed; a failing seed is printed in
//! the assertion message so the run can be replayed bit-for-bit. Extra
//! seeds via `CORRUPT_SEEDS=9,17 cargo test --test corruption_soak`.

use dat_sim::{run_corrupt, CorruptConfig, CorruptOutcome};

/// Seeds to soak: three fixed defaults (the acceptance floor), extended
/// by `CORRUPT_SEEDS` (comma- or space-separated integers) for longer
/// local/CI campaigns.
fn seed_matrix() -> Vec<u64> {
    let mut seeds = vec![1, 2, 3];
    if let Ok(extra) = std::env::var("CORRUPT_SEEDS") {
        for tok in extra.split(|c: char| !c.is_ascii_digit()) {
            if let Ok(s) = tok.parse::<u64>() {
                if !seeds.contains(&s) {
                    seeds.push(s);
                }
            }
        }
    }
    seeds
}

fn corrupt_one(seed: u64) -> CorruptOutcome {
    let cfg = CorruptConfig {
        seed,
        ..CorruptConfig::default()
    };
    let out = run_corrupt(&cfg);
    eprintln!(
        "corrupt seed {seed}: digest {:#018x}, {} events, {} reports, \
         injected {} (rejected {} / passed {}), min ratio {:.3} during faults, \
         final ratio {:.3}, bad frames {} / scoring trips {} / quarantines {} / rejoins {}",
        out.digest,
        out.events_processed,
        out.log.len(),
        out.injected,
        out.rejected,
        out.passed,
        out.min_ratio_during_faults,
        out.final_ratio,
        out.fleet_bad_frames,
        out.fleet_bad_frame_suspects,
        out.fleet_quarantines,
        out.fleet_rejoins,
    );
    out
}

#[test]
fn corruption_is_detected_contained_and_healed() {
    for seed in seed_matrix() {
        let out = corrupt_one(seed);

        // Every invariant breach embeds the seed, so the replay handle is
        // in the failure output. The scored invariants cover: report
        // exactness (no silently-wrong answers), total detection
        // accounting, visible degradation, post-fault healing, and the
        // containment pipeline (bad-frame scoring → suspicion →
        // quarantine → rejoin) with valid Prometheus exposition.
        assert!(
            out.violations.is_empty(),
            "replay with seed {seed}: {:#?}",
            out.violations
        );

        // Belt-and-braces on the headline numbers the outcome carries.
        assert!(out.injected > 0, "seed {seed}: nothing was injected");
        assert!(
            out.rejected > 0,
            "seed {seed}: the checksum rejected nothing"
        );
        assert!(
            out.min_ratio_during_faults < 1.0,
            "seed {seed}: the jam never dented completeness"
        );
        assert!(
            (out.final_ratio - 1.0).abs() < 1e-9,
            "seed {seed}: final ratio {:.3} — never healed",
            out.final_ratio
        );
        assert!(
            out.fleet_quarantines > 0 && out.fleet_rejoins > 0,
            "seed {seed}: quarantine fired {} times, released {} times",
            out.fleet_quarantines,
            out.fleet_rejoins
        );
    }
}

/// The same seed must replay the same attack byte for byte: identical
/// fault digest, identical mutation tallies, identical report stream.
#[test]
fn corruption_soak_replays_bit_for_bit() {
    let cfg = CorruptConfig {
        seed: 2,
        nodes: 16,
        warmup_ms: 30_000,
        episode_ms: 30_000,
        quiesce_ms: 60_000,
        ..CorruptConfig::default()
    };
    let a = run_corrupt(&cfg);
    let b = run_corrupt(&cfg);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(
        (a.injected, a.rejected, a.passed),
        (b.injected, b.rejected, b.passed)
    );
    assert_eq!(a.log.len(), b.log.len());
}
