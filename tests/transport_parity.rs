//! Integration: transport parity — the identical 8-node scenario (live
//! joins, continuous DAT aggregation, an on-demand query, MAAN register +
//! range discovery, all on the same `StackNode`s) yields the same answers
//! whether the stack runs over the discrete-event simulator, over real
//! loopback UDP driven by the blocking thread-per-node reactor, or over
//! the async tokio host. This is the paper's §5.1 claim ("both RPC-based
//! and simulator-based setups … have the consistent results") for the
//! whole protocol stack, not just the DAT — three-way, since the repo now
//! carries three `Actor` hosts.

use std::time::{Duration, Instant};

use libdat::chord::{
    ChordConfig, HealthConfig, Id, IdSpace, NodeAddr, NodeStatus, Output, SuspicionLevel,
};
use libdat::cluster::ClusterHost;
use libdat::core::{
    AggFunc, AggregationMode, DatConfig, DatEvent, DatProtocol, StackNode, DAT_PROTO,
};
use libdat::maan::{MaanEvent, MaanProtocol, MaanStack, Resource};
use libdat::monitor::grid_schemas;
use libdat::obs::{fnv1a, Event, EventKind};
use libdat::rpc::RpcCluster;
use libdat::sim::{CorruptMode, FaultPlan, SimNet};
use rand::{Rng, SeedableRng};

const N: usize = 8;

/// The slice of host API the parity scenario needs, so the same UDP leg
/// runs unchanged over the blocking reactor and the tokio host. Both real
/// transports expose the identical surface — that sameness is itself part
/// of the parity claim.
trait UdpHost: Sized {
    /// Human label for assertion messages.
    const NAME: &'static str;
    fn launch(nodes: Vec<StackNode>) -> std::io::Result<Self>;
    fn call<R, F>(&self, addr: NodeAddr, f: F) -> Option<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut StackNode) -> (R, Vec<Output>) + Send + 'static;
    fn cast<F>(&self, addr: NodeAddr, f: F)
    where
        F: FnOnce(&mut StackNode) -> Vec<Output> + Send + 'static;
    fn send_raw(&self, from: NodeAddr, to: NodeAddr, bytes: &[u8]) -> std::io::Result<()>;
    /// `(decode_errors, sum over per-kind counters)` — the two must agree.
    fn decode_error_counts(&self) -> (u64, u64);
    fn stop(self);
}

impl UdpHost for RpcCluster<StackNode> {
    const NAME: &'static str = "threads";
    fn launch(nodes: Vec<StackNode>) -> std::io::Result<Self> {
        RpcCluster::launch(nodes)
    }
    fn call<R, F>(&self, addr: NodeAddr, f: F) -> Option<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut StackNode) -> (R, Vec<Output>) + Send + 'static,
    {
        RpcCluster::call(self, addr, f)
    }
    fn cast<F>(&self, addr: NodeAddr, f: F)
    where
        F: FnOnce(&mut StackNode) -> Vec<Output> + Send + 'static,
    {
        RpcCluster::cast(self, addr, f)
    }
    fn send_raw(&self, from: NodeAddr, to: NodeAddr, bytes: &[u8]) -> std::io::Result<()> {
        RpcCluster::send_raw(self, from, to, bytes)
    }
    fn decode_error_counts(&self) -> (u64, u64) {
        let stats = self.stats();
        (
            stats.decode_errors,
            stats.decode_errors_by_kind.iter().sum(),
        )
    }
    fn stop(self) {
        self.shutdown();
    }
}

impl UdpHost for ClusterHost<StackNode> {
    const NAME: &'static str = "tokio";
    fn launch(nodes: Vec<StackNode>) -> std::io::Result<Self> {
        ClusterHost::launch(nodes)
    }
    fn call<R, F>(&self, addr: NodeAddr, f: F) -> Option<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut StackNode) -> (R, Vec<Output>) + Send + 'static,
    {
        ClusterHost::call(self, addr, f)
    }
    fn cast<F>(&self, addr: NodeAddr, f: F)
    where
        F: FnOnce(&mut StackNode) -> Vec<Output> + Send + 'static,
    {
        ClusterHost::cast(self, addr, f)
    }
    fn send_raw(&self, from: NodeAddr, to: NodeAddr, bytes: &[u8]) -> std::io::Result<()> {
        ClusterHost::send_raw(self, from, to, bytes)
    }
    fn decode_error_counts(&self) -> (u64, u64) {
        let stats = self.stats();
        (
            stats.decode_errors,
            stats.decode_error_kinds().iter().map(|(_, c)| c).sum(),
        )
    }
    fn stop(self) {
        self.shutdown();
    }
}

fn chord_cfg() -> ChordConfig {
    ChordConfig {
        space: IdSpace::new(40),
        stabilize_ms: 100,
        fix_fingers_ms: 50,
        check_pred_ms: 300,
        req_timeout_ms: 1_000,
        probe_on_join: false,
        ..ChordConfig::default()
    }
}

fn dat_cfg() -> DatConfig {
    DatConfig {
        epoch_ms: 300,
        query_window_ms: 400,
        ..DatConfig::default()
    }
}

/// The scenario's nodes, identical for both transports: node `i` holds
/// cpu-usage `10·i` and advertises a machine with cpu-speed `i` GHz.
fn build_nodes() -> (Vec<StackNode>, Id) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0xBEEF);
    let mut nodes = Vec::with_capacity(N);
    for i in 0..N {
        let id = Id(rng.random());
        let mut node = StackNode::new(chord_cfg(), id, NodeAddr(i as u64))
            .with_app(DatProtocol::new(dat_cfg()))
            .with_app(MaanProtocol::new(grid_schemas()));
        let key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, (i * 10) as f64);
        // The query's trace events must survive until we snapshot them —
        // widen the DAT ring well past the continuous-epoch chatter.
        node.app_mut::<DatProtocol>()
            .metrics_mut()
            .tracer_mut()
            .set_capacity(4096);
        nodes.push(node);
    }
    let key = libdat::chord::hash_to_id(chord_cfg().space, b"cpu-usage");
    (nodes, key)
}

fn resource(i: usize) -> Resource {
    Resource::new(&format!("grid://node-{i}")).with("cpu-speed", i as f64)
}

/// What both transports must agree on.
#[derive(Debug, PartialEq)]
struct Answers {
    dat_count: u64,
    dat_sum: f64,
    discovered: Vec<String>,
    /// Order-insensitive digest of the on-demand query's causal trace.
    query_digest: u64,
    /// Canonical per-node health-plane + inbox-shed bytes (sorted by node
    /// id): both transports must agree on every neighbor's suspicion level
    /// and on every shed counter, byte for byte.
    health_shed: Vec<Vec<u8>>,
}

/// Canonical health/shed snapshot for one node: its id, then for every
/// routed neighbor (predecessor + successor list, sorted, deduped) the
/// neighbor's id and coarse suspicion level, then the engine's shed
/// counters. Raw phi values differ across transports (wall-clock vs
/// virtual timing), so only the coarse level is encoded — and in this
/// benign scenario it must be Healthy everywhere with zero sheds; the
/// parity claim is that the failure detector and the inbox accounting
/// reach the identical state over the simulator and over real UDP.
fn health_shed_snapshot(node: &StackNode) -> (u64, Vec<u8>) {
    let chord = node.chord();
    let mut peers: Vec<Id> = chord
        .table()
        .successor_list()
        .iter()
        .map(|r| r.id)
        .collect();
    if let Some(p) = chord.table().predecessor() {
        peers.push(p.id);
    }
    peers.sort_unstable();
    peers.dedup();
    let me = node.me().id.0;
    let mut buf = me.to_le_bytes().to_vec();
    for p in peers {
        buf.extend_from_slice(&p.0.to_le_bytes());
        buf.push(match chord.health().peek(p) {
            SuspicionLevel::Healthy => 0,
            SuspicionLevel::Suspect => 1,
            SuspicionLevel::Quarantined => 2,
        });
    }
    buf.extend_from_slice(&node.shed_count(DAT_PROTO).to_le_bytes());
    buf.extend_from_slice(&node.stats_shed_count().to_le_bytes());
    (me, buf)
}

/// Digest the query's receive-side trace: which node received which kind
/// of query-path message, as a set. `reqid` is each transport's own trace
/// id for the query, so it filters but is NOT hashed (the two transports
/// allocate reqids independently); `from` and multiplicity are also
/// excluded, since UDP may duplicate datagrams where the simulator never
/// does. What's left — the set of `(node, kind)` pairs the query touched —
/// is exactly the causal footprint both transports must share.
fn query_digest(reqid: u64, per_node: &[(u64, Vec<Event>)]) -> u64 {
    let mut set = std::collections::BTreeSet::new();
    for (me, events) in per_node {
        for e in events {
            if e.trace_id != reqid {
                continue;
            }
            if let EventKind::Recv { kind, .. } = &e.kind {
                if matches!(*kind, "dat_query" | "dat_request" | "dat_result") {
                    set.insert((*me, *kind));
                }
            }
        }
    }
    assert!(
        set.len() > 2,
        "query trace touched only {} (node, kind) pairs: {set:?}",
        set.len()
    );
    set.iter().fold(0u64, |acc, (me, kind)| {
        let mut buf = me.to_le_bytes().to_vec();
        buf.extend_from_slice(kind.as_bytes());
        acc.wrapping_add(fnv1a(&buf))
    })
}

fn run_in_simulator() -> Answers {
    let (mut nodes, key) = build_nodes();
    let mut net: SimNet<StackNode> = SimNet::new(7);
    let bootstrap = nodes[0].me();
    let outs = nodes[0].start_create();
    let mut queued = vec![(NodeAddr(0), outs)];
    for (i, node) in nodes.iter_mut().enumerate().skip(1) {
        queued.push((NodeAddr(i as u64), node.start_join(bootstrap)));
    }
    for node in nodes {
        net.add_node(node);
    }
    for (addr, outs) in queued {
        net.apply(addr, outs);
    }
    net.run_for(20_000); // joins + stabilization + DAT warm-up

    // Every node advertises its machine.
    for i in 0..N {
        let res = resource(i);
        net.with_node(NodeAddr(i as u64), |n| ((), n.maan_register(&res)));
    }
    net.run_for(5_000);

    // On-demand aggregate query from node 3.
    let asker = NodeAddr(3);
    let reqid = net.with_node(asker, |n| n.query(key)).unwrap();
    net.run_for(5_000);
    let partial = net
        .node_mut(asker)
        .unwrap()
        .take_events()
        .into_iter()
        .find_map(|e| match e {
            DatEvent::QueryDone {
                reqid: r, partial, ..
            } if r == reqid => Some(partial),
            _ => None,
        })
        .expect("sim query completes");

    // Snapshot every node's DAT trace right away, before later traffic
    // ages the rings.
    let traces: Vec<(u64, Vec<Event>)> = net
        .addrs()
        .iter()
        .map(|&a| {
            let n = net.node_mut(a).unwrap();
            let me = n.me().id.0;
            let evs = n
                .app_mut::<DatProtocol>()
                .metrics_mut()
                .tracer()
                .events()
                .cloned()
                .collect();
            (me, evs)
        })
        .collect();
    let query_digest = query_digest(reqid, &traces);

    // MAAN discovery from node 5: machines with 2..=5 GHz.
    let qid = net
        .with_node(NodeAddr(5), |n| n.maan_range_query("cpu-speed", 2.0, 5.0))
        .unwrap();
    net.run_for(5_000);
    let mut discovered: Vec<String> = net
        .node_mut(NodeAddr(5))
        .unwrap()
        .take_maan_events()
        .into_iter()
        .find_map(|e| match e {
            MaanEvent::QueryDone { qid: q, hits } if q == qid => Some(hits),
            _ => None,
        })
        .expect("sim discovery completes")
        .into_iter()
        .map(|r| r.uri)
        .collect();
    discovered.sort();

    let mut health_shed: Vec<(u64, Vec<u8>)> = net
        .addrs()
        .iter()
        .map(|&a| health_shed_snapshot(net.node(a).expect("sim node alive")))
        .collect();
    health_shed.sort();

    Answers {
        dat_count: partial.count,
        dat_sum: partial.finalize(AggFunc::Sum),
        discovered,
        query_digest,
        health_shed: health_shed.into_iter().map(|(_, b)| b).collect(),
    }
}

/// Wait for every node to be active with a closed successor ring.
fn wait_udp_ring<H: UdpHost>(cluster: &H) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let mut infos = Vec::new();
        for i in 0..N {
            if let Some(v) = cluster.call(NodeAddr(i as u64), |node| {
                (
                    (
                        node.status(),
                        node.me().id,
                        node.chord().table().successor().map(|s| s.id),
                    ),
                    vec![],
                )
            }) {
                infos.push(v);
            }
        }
        if infos.len() == N && infos.iter().all(|(s, _, _)| *s == NodeStatus::Active) {
            let mut ids: Vec<Id> = infos.iter().map(|(_, id, _)| *id).collect();
            ids.sort_unstable();
            let ring_ok = infos.iter().all(|(_, id, succ)| {
                let pos = ids.iter().position(|x| x == id).unwrap();
                *succ == Some(ids[(pos + 1) % N])
            });
            if ring_ok {
                break;
            }
        }
        assert!(Instant::now() < deadline, "UDP ring did not converge");
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn run_over_udp<H: UdpHost>() -> Answers {
    let (nodes, key) = build_nodes();
    let cluster = H::launch(nodes).expect("bind loopback sockets");
    let bootstrap = cluster
        .call(NodeAddr(0), |node| (node.me(), node.start_create()))
        .unwrap();
    for i in 1..N {
        cluster.cast(NodeAddr(i as u64), move |node| node.start_join(bootstrap));
        std::thread::sleep(Duration::from_millis(50));
    }
    wait_udp_ring(&cluster);

    for i in 0..N {
        let res = resource(i);
        cluster.cast(NodeAddr(i as u64), move |node| node.maan_register(&res));
    }
    std::thread::sleep(Duration::from_millis(800)); // registrations + DAT warm-up

    let asker = NodeAddr(3);
    let reqid = cluster.call(asker, move |node| node.query(key)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let partial = loop {
        let found = cluster
            .call(asker, |node| (node.take_events(), vec![]))
            .unwrap_or_default()
            .into_iter()
            .find_map(|e| match e {
                DatEvent::QueryDone {
                    reqid: r, partial, ..
                } if r == reqid => Some(partial),
                _ => None,
            });
        if let Some(p) = found {
            break p;
        }
        assert!(Instant::now() < deadline, "UDP on-demand query timed out");
        std::thread::sleep(Duration::from_millis(50));
    };

    // Snapshot the DAT traces immediately, mirroring the sim run.
    let mut traces: Vec<(u64, Vec<Event>)> = Vec::with_capacity(N);
    for i in 0..N {
        let snap = cluster
            .call(NodeAddr(i as u64), |node| {
                let me = node.me().id.0;
                let evs: Vec<Event> = node
                    .app_mut::<DatProtocol>()
                    .metrics_mut()
                    .tracer()
                    .events()
                    .cloned()
                    .collect();
                ((me, evs), vec![])
            })
            .expect("trace snapshot");
        traces.push(snap);
    }
    let query_digest = query_digest(reqid, &traces);

    let qid = cluster
        .call(NodeAddr(5), |node| {
            node.maan_range_query("cpu-speed", 2.0, 5.0)
        })
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut discovered = loop {
        let found = cluster
            .call(NodeAddr(5), |node| (node.take_maan_events(), vec![]))
            .unwrap_or_default()
            .into_iter()
            .find_map(|e| match e {
                MaanEvent::QueryDone { qid: q, hits } if q == qid => Some(hits),
                _ => None,
            });
        if let Some(hits) = found {
            break hits.into_iter().map(|r| r.uri).collect::<Vec<_>>();
        }
        assert!(Instant::now() < deadline, "UDP discovery timed out");
        std::thread::sleep(Duration::from_millis(50));
    };
    discovered.sort();

    let mut health_shed: Vec<(u64, Vec<u8>)> = Vec::with_capacity(N);
    for i in 0..N {
        let snap = cluster
            .call(NodeAddr(i as u64), |node| {
                (health_shed_snapshot(node), vec![])
            })
            .expect("health snapshot");
        health_shed.push(snap);
    }
    health_shed.sort();

    let (decode_errors, _) = cluster.decode_error_counts();
    assert_eq!(decode_errors, 0, "{} leg saw decode errors", H::NAME);
    cluster.stop();
    Answers {
        dat_count: partial.count,
        dat_sum: partial.finalize(AggFunc::Sum),
        discovered,
        query_digest,
        health_shed: health_shed.into_iter().map(|(_, b)| b).collect(),
    }
}

/// Coarse containment verdict both transports must reach after the same
/// hostile-wire episode: one peer whose frames keep arriving damaged.
/// Exact counter values differ (wall-clock vs virtual timing drive
/// different traffic volumes), so the parity claim is the *state machine's
/// trajectory*: damage detected → source suspected → flapping quarantined →
/// quarantine served and released → overlay answers exactly again.
#[derive(Debug, PartialEq)]
struct HostileVerdict {
    /// The victim counted undecodable frames (`bad_frames_total`).
    detected: bool,
    /// Bad-frame scoring escalated the source to the failure detector.
    suspected: bool,
    /// The flapping source was quarantined at least once.
    quarantined: bool,
    /// The quarantine was later served and released.
    rejoined: bool,
    /// After the episode the victim again trusts the attacker.
    attacker_finally_healthy: bool,
    /// Contributors to a post-episode on-demand aggregate: the overlay
    /// must answer exactly (all `N` nodes) once the wire is clean.
    query_count: u64,
}

/// Short quarantine so the release leg fits a wall-clock UDP test.
fn hostile_health_cfg() -> HealthConfig {
    HealthConfig {
        quarantine_ms: 2_000,
        flap_window_ms: 60_000,
        flap_threshold: 3,
        ..HealthConfig::default()
    }
}

fn hostile_verdict(node: &StackNode, attacker: Id, query_count: u64) -> HostileVerdict {
    let health = node.chord().health();
    HostileVerdict {
        detected: node.bad_frames_total() > 0,
        suspected: node.bad_frame_suspects() > 0,
        quarantined: health.quarantines >= 1,
        rejoined: health.rejoins >= 1,
        attacker_finally_healthy: health.peek(attacker) == SuspicionLevel::Healthy,
        query_count,
    }
}

fn hostile_in_simulator() -> HostileVerdict {
    let (mut nodes, key) = build_nodes();
    for n in &mut nodes {
        n.set_health_config(hostile_health_cfg());
    }
    let mut net: SimNet<StackNode> = SimNet::new(11);
    let bootstrap = nodes[0].me();
    let outs = nodes[0].start_create();
    let mut queued = vec![(NodeAddr(0), outs)];
    for (i, node) in nodes.iter_mut().enumerate().skip(1) {
        queued.push((NodeAddr(i as u64), node.start_join(bootstrap)));
    }
    for node in nodes {
        net.add_node(node);
    }
    for (addr, outs) in queued {
        net.apply(addr, outs);
    }
    net.run_for(20_000); // joins + stabilization + DAT warm-up

    let victim = NodeAddr(0);
    let attacker = net
        .node(victim)
        .and_then(|n| n.chord().table().successor())
        .expect("victim has a successor");
    // 90% of the successor's frames arrive as garbage for 15 s: enough
    // survivors keep heartbeats trickling, so the victim sees the
    // Suspect↔recover flapping that the detector turns into quarantine.
    net.set_fault_plan(FaultPlan::new().corrupt_link_at(
        21_000,
        attacker.addr,
        victim,
        0.9,
        CorruptMode::Garbage,
        15_000,
    ));
    net.run_for(31_000); // episode + quarantine expiry + clean recovery

    let reqid = net.with_node(victim, |n| n.query(key)).expect("sim query");
    let mut count = 0;
    for _ in 0..3 {
        net.run_for(5_000);
        let done = net
            .node_mut(victim)
            .expect("victim alive")
            .take_events()
            .into_iter()
            .find_map(|e| match e {
                DatEvent::QueryDone {
                    reqid: r, partial, ..
                } if r == reqid => Some(partial.count),
                _ => None,
            });
        if let Some(c) = done {
            count = c;
            break;
        }
    }
    assert!(net.corruption.injected > 0, "sim episode injected nothing");
    assert!(net.corruption.rejected > 0, "sim checksum rejected nothing");
    hostile_verdict(net.node(victim).expect("victim alive"), attacker.id, count)
}

fn hostile_over_udp<H: UdpHost>() -> HostileVerdict {
    let (mut nodes, key) = build_nodes();
    for n in &mut nodes {
        n.set_health_config(hostile_health_cfg());
    }
    let cluster = H::launch(nodes).expect("bind loopback sockets");
    let bootstrap = cluster
        .call(NodeAddr(0), |node| (node.me(), node.start_create()))
        .unwrap();
    for i in 1..N {
        cluster.cast(NodeAddr(i as u64), move |node| node.start_join(bootstrap));
        std::thread::sleep(Duration::from_millis(50));
    }
    wait_udp_ring(&cluster);

    let victim = NodeAddr(0);
    let attacker = cluster
        .call(victim, |node| (node.chord().table().successor(), vec![]))
        .unwrap()
        .expect("victim has a successor");

    // Damage bursts from the attacker's own socket, each wide enough to
    // cross the scoring threshold (one Suspect episode). The attacker's
    // genuine heartbeats between bursts recover it — and that flapping
    // cadence is exactly what the detector quarantines.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let quarantines = cluster
            .call(victim, |n| (n.chord().health().quarantines, vec![]))
            .unwrap();
        if quarantines >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "UDP quarantine never fired");
        for _ in 0..4 {
            cluster
                .send_raw(attacker.addr, victim, b"\xFFdamaged beyond recognition")
                .unwrap();
        }
        std::thread::sleep(Duration::from_millis(500));
    }

    // Attack over. The quarantine must be served and released on the
    // strength of the attacker's now-clean traffic alone.
    let attacker_id = attacker.id;
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (rejoins, level) = cluster
            .call(victim, move |n| {
                (
                    (
                        n.chord().health().rejoins,
                        n.chord().health().peek(attacker_id),
                    ),
                    vec![],
                )
            })
            .unwrap();
        if rejoins >= 1 && level == SuspicionLevel::Healthy {
            break;
        }
        assert!(Instant::now() < deadline, "quarantined peer never rejoined");
        std::thread::sleep(Duration::from_millis(100));
    }
    std::thread::sleep(Duration::from_millis(2_000)); // ring re-stabilizes

    // Post-episode exactness: retry until the on-demand aggregate counts
    // every node again (eventual healing is the claim on a wall clock).
    let deadline = Instant::now() + Duration::from_secs(20);
    let count = loop {
        let reqid = cluster
            .call(victim, move |node| node.query(key))
            .expect("UDP query");
        let inner = Instant::now() + Duration::from_secs(10);
        let done = loop {
            let found = cluster
                .call(victim, |node| (node.take_events(), vec![]))
                .unwrap_or_default()
                .into_iter()
                .find_map(|e| match e {
                    DatEvent::QueryDone {
                        reqid: r, partial, ..
                    } if r == reqid => Some(partial.count),
                    _ => None,
                });
            if let Some(c) = found {
                break c;
            }
            assert!(Instant::now() < inner, "UDP post-episode query timed out");
            std::thread::sleep(Duration::from_millis(50));
        };
        if done == N as u64 || Instant::now() >= deadline {
            break done;
        }
        std::thread::sleep(Duration::from_millis(500));
    };

    let (decode_errors, by_kind_sum) = cluster.decode_error_counts();
    assert!(decode_errors > 0, "no damage ever reached the wire");
    assert_eq!(
        decode_errors,
        by_kind_sum,
        "{} leg: per-kind classification leaks",
        H::NAME
    );
    let verdict = cluster
        .call(victim, move |n| {
            // Transport decode failures must surface in the node's own
            // metric export (the same text StatsReply ships).
            let prom = n.render_prometheus();
            assert!(
                prom.contains("bad_frames_total{kind=\"bad_magic\"}"),
                "bad_frames_total missing from the victim's exposition"
            );
            (hostile_verdict(n, attacker_id, count), vec![])
        })
        .expect("verdict snapshot");
    cluster.stop();
    verdict
}

/// §5.1 parity under fire: the identical hostile-wire episode (a ring
/// neighbor whose frames arrive damaged) must drive the identical
/// containment trajectory over the simulator, the blocking UDP reactor,
/// and the tokio host.
#[test]
fn hostile_wire_containment_agrees_across_transports() {
    let sim = hostile_in_simulator();
    let threads = hostile_over_udp::<RpcCluster<StackNode>>();
    assert_eq!(
        sim, threads,
        "simulator and blocking UDP reactor disagree on containment"
    );
    let tokio = hostile_over_udp::<ClusterHost<StackNode>>();
    assert_eq!(
        sim, tokio,
        "simulator and tokio host disagree on containment"
    );
    assert!(sim.detected, "damage went uncounted");
    assert!(sim.suspected, "scoring never escalated the source");
    assert!(sim.quarantined, "the flapping source was never quarantined");
    assert!(sim.rejoined, "the quarantine was never released");
    assert!(sim.attacker_finally_healthy, "trust was never restored");
    assert_eq!(sim.query_count, N as u64, "post-episode answer not exact");
}

#[test]
fn simulator_and_udp_cluster_agree() {
    let sim = run_in_simulator();
    let udp = run_over_udp::<RpcCluster<StackNode>>();
    // All transports ran two protocols on the same nodes and must agree
    // on every answer.
    assert_eq!(sim.dat_count as usize, N);
    assert_eq!(sim.dat_sum, (0..N).map(|i| (i * 10) as f64).sum::<f64>());
    assert_eq!(
        sim.discovered,
        vec![
            "grid://node-2",
            "grid://node-3",
            "grid://node-4",
            "grid://node-5"
        ]
    );
    // Benign scenario: the agreed health state must be the all-healthy
    // one — no neighbor suspected over either transport, nothing shed.
    assert_eq!(sim.health_shed.len(), N);
    for buf in &sim.health_shed {
        let (peers, sheds) = buf[8..].split_at(buf.len() - 8 - 16);
        assert!(
            peers.chunks(9).all(|c| c[8] == 0),
            "spurious suspicion in snapshot {buf:?}"
        );
        assert!(
            sheds.iter().all(|b| *b == 0),
            "spurious shed in snapshot {buf:?}"
        );
    }
    assert_eq!(sim, udp, "simulator and blocking UDP reactor disagree");
    let tokio = run_over_udp::<ClusterHost<StackNode>>();
    assert_eq!(sim, tokio, "simulator and tokio host disagree");
}
