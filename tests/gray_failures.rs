//! Gray-failure soak: slow parents, half-open links, overload bursts and
//! flapping peers against a continuous aggregation, checking that the
//! health plane — phi-accrual suspicion, proactive re-parenting, flap
//! quarantine, bounded inboxes — keeps reports flowing end to end (see
//! `dat_sim::gray`).
//!
//! Each run is fully determined by its seed; a failing seed is printed in
//! the assertion message so the run can be replayed bit-for-bit. Extra
//! seeds via `GRAY_SEEDS=2,9,17 cargo test --test gray_failures`.

use dat_sim::{run_gray, GrayConfig, GrayOutcome};

/// Seeds to soak: the fixed default, extended by `GRAY_SEEDS` (comma- or
/// space-separated integers) for longer local/CI campaigns.
fn seed_matrix() -> Vec<u64> {
    let mut seeds = vec![1];
    if let Ok(extra) = std::env::var("GRAY_SEEDS") {
        for tok in extra.split(|c: char| !c.is_ascii_digit()) {
            if let Ok(s) = tok.parse::<u64>() {
                if !seeds.contains(&s) {
                    seeds.push(s);
                }
            }
        }
    }
    seeds
}

fn gray_one(seed: u64) -> GrayOutcome {
    let cfg = GrayConfig {
        seed,
        ..GrayConfig::default()
    };
    let out = run_gray(&cfg);
    eprintln!(
        "gray seed {seed}: digest {:#018x}, {} events, {} reports, \
         max gap {} ms, min ratio {:.3} during faults, final ratio {:.3}, \
         suspects {} / quarantines {} / rejoins {} / reparents {} / sheds {}",
        out.digest,
        out.events_processed,
        out.log.len(),
        out.max_report_gap_ms,
        out.min_ratio_during_faults,
        out.final_ratio,
        out.fleet_suspects,
        out.fleet_quarantines,
        out.fleet_rejoins,
        out.fleet_proactive_reparents,
        out.fleet_sheds,
    );
    out
}

#[test]
fn gray_failures_degrade_but_never_stall() {
    for seed in seed_matrix() {
        let out = gray_one(seed);

        // Every invariant breach embeds the seed, so the replay handle is
        // in the failure output. The scored invariants cover: the report
        // gap bound (epoch + 2×RTO), visible-but-bounded degradation,
        // post-fault healing, the full suspicion pipeline firing
        // (suspects → proactive re-parents → quarantine → rejoin) and
        // overload shedding with valid Prometheus exposition.
        assert!(
            out.violations.is_empty(),
            "replay with seed {seed}: {:#?}",
            out.violations
        );

        // Belt-and-braces on the headline numbers the outcome carries.
        assert!(
            out.min_ratio_during_faults < 1.0,
            "seed {seed}: the gray faults never dented completeness"
        );
        assert!(
            (out.final_ratio - 1.0).abs() < 1e-9,
            "seed {seed}: final ratio {:.3} — never healed",
            out.final_ratio
        );
        assert!(out.fleet_proactive_reparents >= 1, "seed {seed}");
        assert!(out.fleet_sheds >= 1, "seed {seed}");
    }
}
