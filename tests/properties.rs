//! Property-based tests over the core invariants.
//!
//! Written as seeded randomized loops over the workspace's deterministic
//! `SmallRng` rather than a property-testing framework (the offline build
//! has no registry access for proptest). Each test fixes its own seed, so
//! every run explores the identical case set — a failure is reproducible
//! by reading the loop index out of the assertion message.

use libdat::chord::{
    ceil_log2_ratio, finger_limit, hash_to_id, Id, IdPolicy, IdSpace, RoutingScheme, StaticRing,
};
use libdat::core::{AggFunc, AggPartial, DatMsg, DatTree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

fn arb_ring(rng: &mut SmallRng, max_nodes: usize) -> StaticRing {
    let n = rng.random_range(2usize..=max_nodes);
    let policy = match rng.random_range(0u32..3) {
        0 => IdPolicy::Random,
        1 => IdPolicy::Even,
        _ => IdPolicy::Probed,
    };
    let seed: u64 = rng.random();
    let mut ring_rng = SmallRng::seed_from_u64(seed);
    StaticRing::build(IdSpace::new(24), n, policy, &mut ring_rng)
}

#[test]
fn trees_are_always_valid() {
    let mut rng = SmallRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let ring = arb_ring(&mut rng, 200);
        let key = Id(rng.random::<u64>() & ring.space().mask());
        let scheme = if rng.random::<bool>() {
            RoutingScheme::Balanced
        } else {
            RoutingScheme::Greedy
        };
        let tree = DatTree::build(&ring, key, scheme);
        // Single root = successor(key), n-1 edges, acyclic, depths consistent.
        assert_eq!(tree.root(), ring.successor(key), "case {case}");
        assert!(tree.check_invariants().is_ok(), "case {case}");
    }
}

#[test]
fn balanced_branching_bounded_on_even_rings() {
    // §3.5's max-branching-2 bound assumes the rendezvous key is on the
    // even node grid (all distances multiples of d0) — pick a node id.
    let mut rng = SmallRng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let pow = rng.random_range(1u32..9);
        let n = 1usize << pow;
        let space = IdSpace::new(24);
        let mut ring_rng = SmallRng::seed_from_u64(1);
        let ring = StaticRing::build(space, n, IdPolicy::Even, &mut ring_rng);
        let key = ring.ids()[rng.random::<u64>() as usize % n];
        let tree = DatTree::build(&ring, key, RoutingScheme::Balanced);
        for &v in ring.ids() {
            assert!(
                tree.branching(v) <= 2,
                "case {case}: node {} has {} children",
                v,
                tree.branching(v)
            );
        }
        assert!(tree.height() <= pow, "case {case}");
    }
}

#[test]
fn balanced_branching_within_three_for_offgrid_keys() {
    // Off-grid keys shift every distance by a sub-d0 constant; the
    // ceil-log boundaries can each move one node across, so the bound
    // relaxes to 3 (still a constant, which is all Fig. 7a needs).
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for case in 0..CASES {
        let pow = rng.random_range(1u32..9);
        let n = 1usize << pow;
        let space = IdSpace::new(24);
        let mut ring_rng = SmallRng::seed_from_u64(1);
        let ring = StaticRing::build(space, n, IdPolicy::Even, &mut ring_rng);
        let key = Id(rng.random::<u64>() & space.mask());
        let tree = DatTree::build(&ring, key, RoutingScheme::Balanced);
        for &v in ring.ids() {
            assert!(
                tree.branching(v) <= 3,
                "case {case}: node {} has {} children",
                v,
                tree.branching(v)
            );
        }
        assert!(tree.height() <= pow + 1, "case {case}");
    }
}

#[test]
fn route_lengths_are_logarithmic() {
    let mut rng = SmallRng::seed_from_u64(0xD1CE);
    for case in 0..CASES / 2 {
        let ring = arb_ring(&mut rng, 256);
        let key = Id(rng.random::<u64>() & ring.space().mask());
        for &from in ring.ids().iter().step_by(17) {
            let route = ring.finger_route(from, key);
            // Greedy halves the remaining arc each hop: ≤ b hops, and for
            // n nodes, ≤ ~2 log2 n with high probability. Use a generous
            // deterministic bound: bits of the space.
            assert!(
                route.len() <= ring.space().bits() as usize + 1,
                "case {case}"
            );
            assert_eq!(*route.last().unwrap(), ring.successor(key), "case {case}");
        }
    }
}

#[test]
fn partial_merge_is_commutative_and_associative() {
    let mut rng = SmallRng::seed_from_u64(0xE66);
    for case in 0..CASES {
        let len = rng.random_range(1usize..40);
        let xs: Vec<f64> = (0..len).map(|_| rng.random_range(-1e6..1e6)).collect();
        let k = rng.random_range(0usize..40).min(xs.len());
        let mut a = AggPartial::identity();
        xs[..k].iter().for_each(|&x| a.absorb(x));
        let mut b = AggPartial::identity();
        xs[k..].iter().for_each(|&x| b.absorb(x));
        // commutativity
        let ab = a.clone().merged(&b);
        let ba = b.clone().merged(&a);
        assert_eq!(ab.count, ba.count, "case {case}");
        assert!(
            (ab.sum - ba.sum).abs() <= 1e-6 * ab.sum.abs().max(1.0),
            "case {case}"
        );
        assert_eq!(ab.min, ba.min, "case {case}");
        assert_eq!(ab.max, ba.max, "case {case}");
        // identity
        let with_id = ab.clone().merged(&AggPartial::identity());
        assert_eq!(with_id, ab.clone(), "case {case}");
        // tree-merge equals flat aggregation
        let mut flat = AggPartial::identity();
        xs.iter().for_each(|&x| flat.absorb(x));
        assert_eq!(ab.count, flat.count, "case {case}");
        assert_eq!(
            ab.finalize(AggFunc::Min),
            flat.finalize(AggFunc::Min),
            "case {case}"
        );
        assert_eq!(
            ab.finalize(AggFunc::Max),
            flat.finalize(AggFunc::Max),
            "case {case}"
        );
        assert!(
            (ab.finalize(AggFunc::Sum) - flat.finalize(AggFunc::Sum)).abs()
                <= 1e-6 * flat.sum.abs().max(1.0),
            "case {case}"
        );
    }
}

#[test]
fn contributor_merge_is_commutative_and_associative() {
    // The completeness accounting rides on `merge`: contributors add,
    // ages take max (with `merge_aged` shifting the other side first).
    // Both must keep merge commutative and associative, or tree order
    // would change what the root reports.
    let mut rng = SmallRng::seed_from_u64(0xACC0);
    let arb = |rng: &mut SmallRng| {
        let mut p = AggPartial::identity();
        for _ in 0..rng.random_range(0usize..4) {
            p.absorb(rng.random_range(-1e3..1e3));
        }
        p.contributors = rng.random_range(0u64..1000);
        p.age_epochs = rng.random_range(0u64..50);
        p
    };
    for case in 0..CASES * 2 {
        let (a, b, c) = (arb(&mut rng), arb(&mut rng), arb(&mut rng));
        let ab = a.clone().merged(&b);
        let ba = b.clone().merged(&a);
        assert_eq!(ab.contributors, ba.contributors, "case {case}");
        assert_eq!(ab.age_epochs, ba.age_epochs, "case {case}");
        let ab_c = ab.merged(&c);
        let bc = b.clone().merged(&c);
        let a_bc = a.clone().merged(&bc);
        assert_eq!(ab_c.contributors, a_bc.contributors, "case {case}");
        assert_eq!(ab_c.age_epochs, a_bc.age_epochs, "case {case}");
        // Identity is neutral for the new fields too.
        let with_id = a.clone().merged(&AggPartial::identity());
        assert_eq!(with_id.contributors, a.contributors, "case {case}");
        assert_eq!(with_id.age_epochs, a.age_epochs, "case {case}");
        // merge_aged shifts only the other side's age, never contributors,
        // and max-aging is idempotent: re-aging by 0 changes nothing.
        let extra = rng.random_range(0u64..10);
        let mut aged = a.clone();
        aged.merge_aged(&b, extra);
        assert_eq!(
            aged.contributors,
            ab_c.contributors - c.contributors,
            "case {case}"
        );
        assert_eq!(
            aged.age_epochs,
            a.age_epochs.max(b.age_epochs + extra),
            "case {case}"
        );
        let mut again = aged.clone();
        again.merge_aged(&AggPartial::identity(), extra);
        assert_eq!(again, aged, "case {case}: re-aging the identity is a no-op");
    }
}

#[test]
fn duplicate_delivery_never_inflates_contributors() {
    // The transport replays every datagram with high probability for the
    // whole run; the continuous DAT's per-source soft-state slots must
    // dedup, so the root's contributor count never exceeds the ring size.
    use libdat::chord::{ChordConfig, NodeAddr};
    use libdat::core::{AggregationMode, DatConfig, DatEvent, StackNode};
    use libdat::sim::harness::{addr_book, prestabilized_dat};
    use libdat::sim::{FaultPlan, SimNet};

    let n = 32usize;
    let space = IdSpace::new(24);
    let mut rng = SmallRng::seed_from_u64(0xD0D0);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net: SimNet<StackNode> = prestabilized_dat(&ring, ccfg, dcfg, 0xD0D0);
    net.set_record_upcalls(false);
    net.set_fault_plan(FaultPlan::new().duplication_at(0, 0.75));
    let book = addr_book(&ring);
    let mut key = Id(0);
    for &id in ring.ids() {
        let node = net.node_mut(book[&id]).unwrap();
        key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, 1.0);
    }
    let root: NodeAddr = book[&ring.successor(key)];
    net.run_for(30_000);
    let reports: Vec<_> = net
        .node_mut(root)
        .unwrap()
        .take_events()
        .into_iter()
        .filter_map(|e| match e {
            DatEvent::Report {
                key: k,
                partial,
                completeness,
                ..
            } if k == key => Some((partial, completeness)),
            _ => None,
        })
        .collect();
    assert!(reports.len() >= 10, "duplication must not stall reporting");
    for (i, (p, c)) in reports.iter().enumerate() {
        assert!(
            c.contributors <= n as u64,
            "report {i}: {} contributors on a {n}-node ring — duplicates inflated \
             the accounting",
            c.contributors
        );
        assert_eq!(c.contributors, p.count, "report {i}: one sample per node");
    }
    // Steady state still reaches full coverage (duplicates are dropped,
    // not the originals).
    let last = &reports[reports.len() - 1];
    assert_eq!(
        last.1.contributors, n as u64,
        "full coverage under duplication"
    );
}

#[test]
fn dat_codec_roundtrips() {
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    for case in 0..CASES {
        let key: u64 = rng.random();
        let epoch: u64 = rng.random();
        let count = rng.random_range(0u64..1000);
        let sum = f64::from_bits(rng.random::<u64>());
        let id2: u64 = rng.random();
        let mut partial = AggPartial::identity();
        partial.count = count;
        partial.sum = sum;
        let sender = libdat::chord::NodeRef::new(Id(id2), libdat::chord::NodeAddr(id2 ^ 7));
        let msg = DatMsg::Update {
            key: Id(key),
            epoch,
            partial,
            sender,
        };
        let decoded = DatMsg::decode(&msg.encode()).unwrap();
        match (&msg, &decoded) {
            (DatMsg::Update { partial: p1, .. }, DatMsg::Update { partial: p2, .. }) => {
                assert_eq!(p1.count, p2.count, "case {case}");
                assert!(
                    p1.sum == p2.sum || (p1.sum.is_nan() && p2.sum.is_nan()),
                    "case {case}"
                );
            }
            _ => panic!("case {case}: variant changed"),
        }
    }
}

#[test]
fn dat_codec_never_panics_on_garbage() {
    let mut rng = SmallRng::seed_from_u64(0xBAD);
    for _ in 0..CASES * 4 {
        let len = rng.random_range(0usize..200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random::<u8>()).collect();
        let _ = DatMsg::decode(&bytes); // must return Err, never panic
    }
}

#[test]
fn udp_codec_never_panics_on_garbage() {
    let mut rng = SmallRng::seed_from_u64(0xDAB);
    for _ in 0..CASES * 4 {
        let len = rng.random_range(0usize..200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random::<u8>()).collect();
        let _ = libdat::rpc::decode(&bytes);
    }
}

#[test]
fn finger_limit_exact_integer_semantics() {
    let mut rng = SmallRng::seed_from_u64(0x1234);
    for case in 0..CASES * 4 {
        let x = rng.random_range(0u64..u64::MAX / 4);
        let d0 = rng.random_range(1u64..1u64 << 40);
        let g = finger_limit(x, d0);
        // Defining inequality: minimal g with 3·2^g >= x + 2·d0.
        let target = x as u128 + 2 * d0 as u128;
        assert!(
            3u128.checked_shl(g).map(|v| v >= target).unwrap_or(true),
            "case {case}"
        );
        if g > 0 {
            assert!(3u128 << (g - 1) < target, "case {case}");
        }
    }
}

#[test]
fn ceil_log2_ratio_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0x4321);
    for case in 0..CASES * 4 {
        // Bias half the cases toward small denominators to hit large ratios.
        let num = 1 + (rng.random::<u64>() as u128) * (rng.random_range(1u64..1 << 16) as u128);
        let den = rng.random_range(1u64..1 << 40) as u128;
        let k = ceil_log2_ratio(num, den);
        assert!(
            den.checked_shl(k).map(|v| v >= num).unwrap_or(true),
            "case {case}"
        );
        if k > 0 {
            assert!(den << (k - 1) < num, "case {case}");
        }
    }
}

#[test]
fn id_space_distance_triangle() {
    let mut rng = SmallRng::seed_from_u64(0x5678);
    for case in 0..CASES * 4 {
        let bits = rng.random_range(1u32..=64) as u8;
        let s = IdSpace::new(bits);
        let (a, b, c) = (s.id(rng.random()), s.id(rng.random()), s.id(rng.random()));
        // Walking a→b→c covers the same arc as a→c modulo full turns.
        let d1 = s.dist_cw(a, b) as u128 + s.dist_cw(b, c) as u128;
        let d2 = s.dist_cw(a, c) as u128;
        assert_eq!(d1 % s.size(), d2 % s.size(), "case {case}");
    }
}

#[test]
fn hash_to_id_is_stable_and_in_range() {
    let charset = b"abcdefghijklmnopqrstuvwxyz-";
    let mut rng = SmallRng::seed_from_u64(0x9ABC);
    for case in 0..CASES * 2 {
        let bits = rng.random_range(1u32..=64) as u8;
        let len = rng.random_range(1usize..=32);
        let name: Vec<u8> = (0..len)
            .map(|_| charset[rng.random_range(0usize..charset.len())])
            .collect();
        let s = IdSpace::new(bits);
        let h1 = hash_to_id(s, &name);
        let h2 = hash_to_id(s, &name);
        assert_eq!(h1, h2, "case {case}");
        if bits < 64 {
            assert!((h1.raw() as u128) < s.size(), "case {case}");
        }
    }
}

#[test]
fn probed_rings_beat_random_gap_ratio() {
    let mut rng = SmallRng::seed_from_u64(0xDEF0);
    for case in 0..CASES / 2 {
        let n = rng.random_range(32usize..200);
        let seed: u64 = rng.random();
        let space = IdSpace::new(40);
        let mut ring_rng = SmallRng::seed_from_u64(seed);
        let probed = StaticRing::build(space, n, IdPolicy::Probed, &mut ring_rng);
        assert!(
            probed.gap_ratio() <= 16.0,
            "case {case}: ratio {}",
            probed.gap_ratio()
        );
    }
}
