//! Property-based tests over the core invariants (proptest).

use libdat::chord::{
    ceil_log2_ratio, finger_limit, hash_to_id, Id, IdPolicy, IdSpace, RoutingScheme, StaticRing,
};
use libdat::core::{AggFunc, AggPartial, DatMsg, DatTree};
use proptest::prelude::*;

fn arb_ring(max_nodes: usize) -> impl Strategy<Value = StaticRing> {
    (2usize..=max_nodes, any::<u64>(), 0u8..3).prop_map(|(n, seed, policy)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let policy = match policy {
            0 => IdPolicy::Random,
            1 => IdPolicy::Even,
            _ => IdPolicy::Probed,
        };
        StaticRing::build(IdSpace::new(24), n, policy, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trees_are_always_valid(ring in arb_ring(200), key: u64, balanced: bool) {
        let key = Id(key & ring.space().mask());
        let scheme = if balanced { RoutingScheme::Balanced } else { RoutingScheme::Greedy };
        let tree = DatTree::build(&ring, key, scheme);
        // Single root = successor(key), n-1 edges, acyclic, depths consistent.
        prop_assert_eq!(tree.root(), ring.successor(key));
        prop_assert!(tree.check_invariants().is_ok());
    }

    #[test]
    fn balanced_branching_bounded_on_even_rings(
        pow in 1u32..9, key_idx: u64
    ) {
        // §3.5's max-branching-2 bound assumes the rendezvous key is on the
        // even node grid (all distances multiples of d0) — pick a node id.
        use rand::SeedableRng;
        let n = 1usize << pow;
        let space = IdSpace::new(24);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let ring = StaticRing::build(space, n, IdPolicy::Even, &mut rng);
        let key = ring.ids()[(key_idx as usize) % n];
        let tree = DatTree::build(&ring, key, RoutingScheme::Balanced);
        for &v in ring.ids() {
            prop_assert!(tree.branching(v) <= 2, "node {} has {} children", v, tree.branching(v));
        }
        prop_assert!(tree.height() <= pow);
    }

    #[test]
    fn balanced_branching_within_three_for_offgrid_keys(
        pow in 1u32..9, key: u64
    ) {
        // Off-grid keys shift every distance by a sub-d0 constant; the
        // ceil-log boundaries can each move one node across, so the bound
        // relaxes to 3 (still a constant, which is all Fig. 7a needs).
        use rand::SeedableRng;
        let n = 1usize << pow;
        let space = IdSpace::new(24);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let ring = StaticRing::build(space, n, IdPolicy::Even, &mut rng);
        let key = Id(key & space.mask());
        let tree = DatTree::build(&ring, key, RoutingScheme::Balanced);
        for &v in ring.ids() {
            prop_assert!(tree.branching(v) <= 3, "node {} has {} children", v, tree.branching(v));
        }
        prop_assert!(tree.height() <= pow + 1);
    }

    #[test]
    fn route_lengths_are_logarithmic(ring in arb_ring(256), key: u64) {
        let key = Id(key & ring.space().mask());
        for &from in ring.ids().iter().step_by(17) {
            let route = ring.finger_route(from, key);
            // Greedy halves the remaining arc each hop: ≤ b hops, and for
            // n nodes, ≤ ~2 log2 n with high probability. Use a generous
            // deterministic bound: bits of the space.
            prop_assert!(route.len() <= ring.space().bits() as usize + 1);
            prop_assert_eq!(*route.last().unwrap(), ring.successor(key));
        }
    }

    #[test]
    fn partial_merge_is_commutative_and_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 1..40),
        split in 0usize..40,
    ) {
        let k = split.min(xs.len());
        let mut a = AggPartial::identity();
        xs[..k].iter().for_each(|&x| a.absorb(x));
        let mut b = AggPartial::identity();
        xs[k..].iter().for_each(|&x| b.absorb(x));
        // commutativity
        let ab = a.clone().merged(&b);
        let ba = b.clone().merged(&a);
        prop_assert_eq!(ab.count, ba.count);
        prop_assert!((ab.sum - ba.sum).abs() <= 1e-6 * ab.sum.abs().max(1.0));
        prop_assert_eq!(ab.min, ba.min);
        prop_assert_eq!(ab.max, ba.max);
        // identity
        let with_id = ab.clone().merged(&AggPartial::identity());
        prop_assert_eq!(with_id, ab.clone());
        // tree-merge equals flat aggregation
        let mut flat = AggPartial::identity();
        xs.iter().for_each(|&x| flat.absorb(x));
        prop_assert_eq!(ab.count, flat.count);
        prop_assert_eq!(ab.finalize(AggFunc::Min), flat.finalize(AggFunc::Min));
        prop_assert_eq!(ab.finalize(AggFunc::Max), flat.finalize(AggFunc::Max));
        prop_assert!((ab.finalize(AggFunc::Sum) - flat.finalize(AggFunc::Sum)).abs()
            <= 1e-6 * flat.sum.abs().max(1.0));
    }

    #[test]
    fn dat_codec_roundtrips(
        key: u64, epoch: u64, count in 0u64..1000, sum: f64, id2: u64
    ) {
        let mut partial = AggPartial::identity();
        partial.count = count;
        partial.sum = sum;
        let sender = libdat::chord::NodeRef::new(Id(id2), libdat::chord::NodeAddr(id2 ^ 7));
        let msg = DatMsg::Update { key: Id(key), epoch, partial, sender };
        let decoded = DatMsg::decode(&msg.encode()).unwrap();
        match (&msg, &decoded) {
            (DatMsg::Update { partial: p1, .. }, DatMsg::Update { partial: p2, .. }) => {
                prop_assert_eq!(p1.count, p2.count);
                prop_assert!(p1.sum == p2.sum || (p1.sum.is_nan() && p2.sum.is_nan()));
            }
            _ => prop_assert!(false, "variant changed"),
        }
    }

    #[test]
    fn dat_codec_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = DatMsg::decode(&bytes); // must return Err, never panic
    }

    #[test]
    fn udp_codec_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = libdat::rpc::decode(&bytes);
    }

    #[test]
    fn finger_limit_exact_integer_semantics(x in 0u64..u64::MAX / 4, d0 in 1u64..1u64 << 40) {
        let g = finger_limit(x, d0);
        // Defining inequality: minimal g with 3·2^g >= x + 2·d0.
        let target = x as u128 + 2 * d0 as u128;
        prop_assert!(3u128.checked_shl(g).map(|v| v >= target).unwrap_or(true));
        if g > 0 {
            prop_assert!(3u128 << (g - 1) < target);
        }
    }

    #[test]
    fn ceil_log2_ratio_is_exact(num in 1u128..1u128 << 80, den in 1u128..1u128 << 40) {
        let k = ceil_log2_ratio(num, den);
        prop_assert!(den.checked_shl(k).map(|v| v >= num).unwrap_or(true));
        if k > 0 {
            prop_assert!(den << (k - 1) < num);
        }
    }

    #[test]
    fn id_space_distance_triangle(a: u64, b: u64, c: u64, bits in 1u8..=64) {
        let s = IdSpace::new(bits);
        let (a, b, c) = (s.id(a), s.id(b), s.id(c));
        // Walking a→b→c covers the same arc as a→c modulo full turns.
        let d1 = s.dist_cw(a, b) as u128 + s.dist_cw(b, c) as u128;
        let d2 = s.dist_cw(a, c) as u128;
        prop_assert_eq!(d1 % s.size(), d2 % s.size());
    }

    #[test]
    fn hash_to_id_is_stable_and_in_range(name in "[a-z-]{1,32}", bits in 1u8..=64) {
        let s = IdSpace::new(bits);
        let h1 = hash_to_id(s, name.as_bytes());
        let h2 = hash_to_id(s, name.as_bytes());
        prop_assert_eq!(h1, h2);
        if bits < 64 {
            prop_assert!((h1.raw() as u128) < s.size());
        }
    }

    #[test]
    fn probed_rings_beat_random_gap_ratio(n in 32usize..200, seed: u64) {
        use rand::SeedableRng;
        let space = IdSpace::new(40);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let probed = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
        prop_assert!(probed.gap_ratio() <= 16.0, "ratio {}", probed.gap_ratio());
    }
}
