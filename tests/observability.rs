//! Integration: the observability subsystem end to end.
//!
//! * A 512-node continuous epoch reassembles — from nothing but the
//!   per-node event rings — into a causal leaf→root trace whose
//!   contributor set matches the root's own `Completeness` accounting.
//! * Identically-seeded runs produce identical event streams and trace
//!   digests (the property that makes traces assertable in CI).
//! * The fleet Prometheus snapshot is served over the wire by the stats
//!   request/reply pair, on the simulator and over loopback UDP alike.

use std::time::{Duration, Instant};

use libdat::chord::{
    ChordConfig, Id, IdPolicy, IdSpace, NodeAddr, NodeStatus, RoutingScheme, StaticRing, Upcall,
};
use libdat::core::{AggregationMode, DatConfig, DatEvent, DatProtocol, StackNode};
use libdat::obs::{digest_events, mix64, trace_id_for, validate_prometheus, EpochTrace};
use libdat::rpc::RpcCluster;
use libdat::sim::harness::{addr_book, prestabilized_dat};
use libdat::sim::{fleet_events, SimNet};
use rand::SeedableRng;

fn quiet_chord(space: IdSpace) -> ChordConfig {
    ChordConfig {
        space,
        stabilize_ms: 60_000,
        fix_fingers_ms: 60_000,
        check_pred_ms: 60_000,
        ..ChordConfig::default()
    }
}

/// Build a prestabilized continuous-DAT net where every node holds a local
/// sample, run it for `run_ms`, and return it with the rendezvous key.
fn continuous_net(n: usize, seed: u64, run_ms: u64) -> (SimNet<StackNode>, StaticRing, Id) {
    let space = IdSpace::new(32);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, quiet_chord(space), dcfg, seed);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let mut key = Id(0);
    for (i, &id) in ring.ids().iter().enumerate() {
        let node = net.node_mut(book[&id]).unwrap();
        key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, i as f64);
    }
    net.run_for(run_ms);
    (net, ring, key)
}

#[test]
fn epoch_trace_reassembles_512_node_aggregation() {
    let (mut net, ring, key) = continuous_net(512, 0x0B5, 6_000);
    let book = addr_book(&ring);
    let root_addr = book[&ring.successor(key)];

    // The root's newest report is the ground truth the trace must match.
    let (epoch, partial, completeness) = net
        .node_mut(root_addr)
        .unwrap()
        .take_events()
        .into_iter()
        .rev()
        .find_map(|e| match e {
            DatEvent::Report {
                key: k,
                epoch,
                partial,
                completeness,
            } if k == key => Some((epoch, partial, completeness)),
            _ => None,
        })
        .expect("512-node continuous aggregation reports");
    assert_eq!(completeness.contributors, 512, "full coverage, lossless");

    // The causal id is computable by anyone — no coordination, no lookup.
    let tid = trace_id_for(key.0, epoch);
    assert_eq!(
        partial.trace_id, tid,
        "the wire partial carries the epoch's causal id"
    );

    // Reassemble the epoch leaf→root from the fleet's event rings alone.
    let fleet = fleet_events(&net);
    let trace = EpochTrace::assemble(tid, &fleet);
    assert_eq!(trace.root, Some(ring.successor(key).0));
    assert_eq!(
        trace.contributors().len() as u64,
        completeness.contributors,
        "trace contributors == report's completeness accounting"
    );
    // Balanced DATs stay logarithmically shallow at 512 nodes.
    let depth = trace.depth();
    assert!((2..=24).contains(&depth), "implausible depth {depth}");

    // Both renderers cover the whole tree.
    let ascii = trace.render_ascii();
    assert!(ascii.lines().count() > 512, "one line per node plus header");
    let dot = trace.render_dot();
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("doublecircle"), "root is marked");
    assert_eq!(dot.matches(" -> ").count(), 511, "one edge per non-root");
}

#[test]
fn trace_digests_are_deterministic_across_runs() {
    let run = |seed: u64| {
        let (mut net, ring, key) = continuous_net(48, seed, 5_000);
        let book = addr_book(&ring);
        let epoch = net
            .node_mut(book[&ring.successor(key)])
            .unwrap()
            .take_events()
            .into_iter()
            .rev()
            .find_map(|e| match e {
                DatEvent::Report { key: k, epoch, .. } if k == key => Some(epoch),
                _ => None,
            })
            .expect("root reports");
        let fleet = fleet_events(&net);
        // Node-aware, order-insensitive digest of the whole fleet stream,
        // plus the assembled trace of the newest epoch.
        let fleet_digest = fleet.iter().fold(0u64, |acc, (node, e)| {
            acc.wrapping_add(mix64(*node).wrapping_add(e.content_hash()))
        });
        let trace = EpochTrace::assemble(trace_id_for(key.0, epoch), &fleet);
        (fleet, fleet_digest, trace.digest(), trace.edges.len())
    };
    let (fleet_a, digest_a, trace_a, edges_a) = run(0xD15);
    let (fleet_b, digest_b, trace_b, edges_b) = run(0xD15);
    assert_eq!(fleet_a.len(), fleet_b.len());
    // Same seed ⇒ the same causal content, compared as a multiset: the
    // digest (and the per-event hashes it sums) ignores wall clock and
    // delivery order, which may legitimately differ between two in-process
    // runs, but not which events happened.
    let multiset = |fleet: &[(u64, libdat::obs::Event)]| {
        let mut hs: Vec<u64> = fleet
            .iter()
            .map(|(n, e)| mix64(*n).wrapping_add(e.content_hash()))
            .collect();
        hs.sort_unstable();
        hs
    };
    assert_eq!(
        multiset(&fleet_a),
        multiset(&fleet_b),
        "same seed, same causal events"
    );
    assert_eq!(digest_a, digest_b);
    assert_eq!((trace_a, edges_a), (trace_b, edges_b));
    assert!(edges_a > 0, "the digested trace is not empty");
    // Order insensitivity: reversing the stream digests identically.
    let rev: Vec<_> = fleet_a.iter().rev().map(|(_, e)| e).collect();
    assert_eq!(
        digest_events(rev.into_iter()),
        digest_events(fleet_a.iter().map(|(_, e)| e))
    );
    // A different seed produces a different stream.
    let (_, digest_c, _, _) = run(0xD16);
    assert_ne!(digest_a, digest_c, "digest distinguishes different runs");
}

#[test]
fn stats_are_served_over_the_simulated_wire() {
    let (mut net, ring, _key) = continuous_net(16, 0x57A7, 3_000);
    net.set_record_upcalls(true);
    let book = addr_book(&ring);
    let asker = book[&ring.ids()[0]];
    let target = net.node(book[&ring.ids()[8]]).unwrap().me();
    let req = net
        .with_node(asker, |n| n.request_stats(target))
        .expect("asker alive");
    net.run_for(1_000);
    let text = net
        .take_upcalls()
        .into_iter()
        .find_map(|u| match u.upcall {
            Upcall::StatsReceived { req: r, text, .. } if r == req => Some(text),
            _ => None,
        })
        .expect("stats reply arrives");
    let text = String::from_utf8(text.to_vec()).expect("exposition is utf-8");
    let samples = validate_prometheus(&text).expect("remote dump parses");
    assert!(samples > 10, "a live node serves a non-trivial dump");
    assert!(text.contains("layer=\"chord\""));
    assert!(text.contains("layer=\"dat\""));
}

#[test]
fn stats_are_served_over_udp() {
    const N: usize = 3;
    let cfg = ChordConfig {
        space: IdSpace::new(40),
        stabilize_ms: 100,
        fix_fingers_ms: 50,
        check_pred_ms: 300,
        req_timeout_ms: 1_000,
        probe_on_join: false,
        ..ChordConfig::default()
    };
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0x57A8);
    let mut nodes = Vec::with_capacity(N);
    for i in 0..N {
        use rand::Rng;
        let mut node = StackNode::new(cfg, Id(rng.random()), NodeAddr(i as u64)).with_app(
            DatProtocol::new(DatConfig {
                epoch_ms: 300,
                ..DatConfig::default()
            }),
        );
        let key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, i as f64);
        nodes.push(node);
    }
    let cluster = RpcCluster::launch(nodes).expect("bind loopback sockets");
    let bootstrap = cluster
        .call(NodeAddr(0), |node| (node.me(), node.start_create()))
        .unwrap();
    for i in 1..N {
        cluster.cast(NodeAddr(i as u64), move |node| node.start_join(bootstrap));
        std::thread::sleep(Duration::from_millis(50));
    }
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let active = (0..N)
            .filter_map(|i| cluster.call(NodeAddr(i as u64), |n| (n.status(), vec![])))
            .filter(|s| *s == NodeStatus::Active)
            .count();
        if active == N {
            break;
        }
        assert!(Instant::now() < deadline, "UDP ring did not converge");
        std::thread::sleep(Duration::from_millis(100));
    }
    std::thread::sleep(Duration::from_millis(500)); // a few DAT epochs

    let target = cluster.call(NodeAddr(1), |n| (n.me(), vec![])).unwrap();
    let req = cluster
        .call(NodeAddr(0), move |n| n.request_stats(target))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let text = loop {
        let found = cluster
            .drain_upcalls()
            .into_iter()
            .find_map(|(a, u)| match u {
                Upcall::StatsReceived { req: r, text, .. } if a == NodeAddr(0) && r == req => {
                    Some(text)
                }
                _ => None,
            });
        if let Some(t) = found {
            break t;
        }
        assert!(Instant::now() < deadline, "UDP stats reply timed out");
        std::thread::sleep(Duration::from_millis(50));
    };
    cluster.shutdown();
    let text = String::from_utf8(text.to_vec()).expect("exposition is utf-8");
    let samples = validate_prometheus(&text).expect("UDP-served dump parses");
    assert!(samples > 10);
    assert!(text.contains("layer=\"dat\""));
}
