//! Integration: the P-GMA monitoring stack tracks ground truth (Fig. 9
//! shape) and discovery answers stay consistent with monitored state.

use libdat::monitor::{
    ConstantSensor, CpuTrace, DiscoveryService, GridMonitorSim, MonitorConfig, RandomWalkSensor,
    TraceConfig, TraceSensor,
};

#[test]
fn trace_aggregation_clusters_on_diagonal() {
    let trace = CpuTrace::generate(TraceConfig {
        duration_s: 1200,
        ..TraceConfig::default()
    });
    let cfg = MonitorConfig {
        nodes: 128,
        epoch_ms: 10_000,
        ..MonitorConfig::default()
    };
    let mut sim = GridMonitorSim::new(cfg, "cpu-usage", |_| {
        Box::new(TraceSensor::new("cpu-usage", trace.clone(), 0, 1.0))
    });
    sim.run_epochs(120);
    let acc = sim.accuracy();
    assert!(acc.reported_epochs >= 100, "{acc:?}");
    assert!(acc.mape < 3.0, "{acc:?}");
    assert!(acc.coverage > 0.99, "{acc:?}");
    // Scatter stays near the diagonal point-by-point too.
    for r in sim.records().iter().skip(10) {
        if let Some(v) = r.reported_total {
            let ape = ((v - r.actual_total) / r.actual_total).abs();
            assert!(ape < 0.15, "epoch {}: {} vs {}", r.epoch, v, r.actual_total);
        }
    }
}

#[test]
fn heterogeneous_sensors_aggregate_to_true_mean() {
    // Different constants per node: the global average must be exact.
    let cfg = MonitorConfig {
        nodes: 60,
        epoch_ms: 1_000,
        ..MonitorConfig::default()
    };
    let mut sim = GridMonitorSim::new(cfg, "cpu-usage", |i| {
        Box::new(ConstantSensor::new("cpu-usage", i as f64))
    });
    sim.run_epochs(15);
    let r = sim
        .records()
        .iter()
        .rev()
        .find(|r| r.reported_count == Some(60))
        .expect("full report");
    let want_total: f64 = (0..60).map(|i| i as f64).sum();
    assert_eq!(r.reported_total.unwrap(), want_total);
    assert!((r.reported_avg.unwrap() - want_total / 60.0).abs() < 1e-9);
}

#[test]
fn random_walk_metrics_stay_in_domain() {
    let cfg = MonitorConfig {
        nodes: 40,
        epoch_ms: 2_000,
        ..MonitorConfig::default()
    };
    let mut sim = GridMonitorSim::new(cfg, "memory-free", |i| {
        Box::new(RandomWalkSensor::new(
            "memory-free",
            32.0,
            0.0,
            64.0,
            2.0,
            i as u64,
        ))
    });
    sim.run_epochs(30);
    for r in sim.records() {
        assert!(r.actual_avg >= 0.0 && r.actual_avg <= 64.0);
        if let Some(avg) = r.reported_avg {
            assert!((0.0..=64.0).contains(&avg), "avg {avg} out of domain");
        }
    }
}

#[test]
fn discovery_consistency_with_advertised_state() {
    use libdat::chord::{IdPolicy, IdSpace, StaticRing};
    use libdat::maan::{MaanNetwork, Predicate, Resource};
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(31);
    let ring = StaticRing::build(IdSpace::new(32), 64, IdPolicy::Probed, &mut rng);
    let mut svc =
        DiscoveryService::new(MaanNetwork::new(ring, DiscoveryService::standard_schemas()));
    let origin = svc.maan().ring().ids()[0];
    // Advertise machines mirroring a monitored fleet.
    let usages: Vec<f64> = (0..40).map(|i| (i * 97 % 101) as f64).collect();
    for (i, &u) in usages.iter().enumerate() {
        let r = Resource::new(&format!("grid://m{i}"))
            .with("cpu-usage", u)
            .with("cpu-speed", 2.0)
            .with("os", "linux");
        svc.advertise(origin, &r);
    }
    // Every usage band returns exactly the machines in that band.
    for (lo, hi) in [(0.0, 25.0), (25.0, 75.0), (75.0, 100.0)] {
        let (hits, _) = svc.find(origin, &[Predicate::range("cpu-usage", lo, hi)]);
        let want = usages.iter().filter(|&&u| u >= lo && u <= hi).count();
        assert_eq!(hits.len(), want, "band [{lo},{hi}]");
    }
}
