//! Thread-parking waker: the primitive under `block_on`, `blocking_send`
//! and `blocking_recv`.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Wakes a parked thread. The `notified` flag closes the race between a
/// wake landing just before the thread parks.
struct ThreadParker {
    thread: Thread,
    notified: AtomicBool,
}

impl Wake for ThreadParker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.notified.store(true, Ordering::SeqCst);
        self.thread.unpark();
    }
}

/// Drive `future` to completion on the calling thread, parking between
/// polls. Usable from any thread, inside or outside a runtime.
pub(crate) fn block_on<F: Future>(future: F) -> F::Output {
    let parker = Arc::new(ThreadParker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&parker));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        if let Poll::Ready(out) = Pin::new(&mut future).as_mut().poll(&mut cx) {
            return out;
        }
        while !parker.notified.swap(false, Ordering::SeqCst) {
            std::thread::park();
        }
    }
}
