//! Async networking: a readiness-driven [`UdpSocket`].

use std::future::poll_fn;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::task::Poll;

use crate::reactor::{Direction, IoState, ReactorShared};

/// A UDP socket usable from async tasks. All methods take `&self`, so one
/// socket wrapped in an `Arc` can serve a reader task and a writer task
/// concurrently — the pattern the cluster host uses.
pub struct UdpSocket {
    io: std::net::UdpSocket,
    state: Arc<IoState>,
    reactor: Arc<ReactorShared>,
}

impl UdpSocket {
    /// Adopt a std socket into the current runtime's reactor. The socket
    /// is switched to nonblocking mode. Must be called inside a runtime
    /// context.
    pub fn from_std(io: std::net::UdpSocket) -> io::Result<UdpSocket> {
        io.set_nonblocking(true)?;
        let reactor = crate::runtime::Handle::current().reactor();
        let state = reactor.register(io.as_raw_fd())?;
        Ok(UdpSocket { io, state, reactor })
    }

    /// Bind a new UDP socket on `addr` inside the current runtime.
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
        UdpSocket::from_std(std::net::UdpSocket::bind(addr)?)
    }

    /// The local address the socket is bound to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.io.local_addr()
    }

    /// Receive one datagram, waiting for readability if necessary.
    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        poll_fn(|cx| match self.io.recv_from(buf) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                self.reactor.wait(&self.state, Direction::Read, cx.waker());
                Poll::Pending
            }
            r => Poll::Ready(r),
        })
        .await
    }

    /// Send one datagram to `target`, waiting for writability if the
    /// kernel send buffer is full.
    pub async fn send_to(&self, buf: &[u8], target: SocketAddr) -> io::Result<usize> {
        poll_fn(|cx| match self.io.send_to(buf, target) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                self.reactor.wait(&self.state, Direction::Write, cx.waker());
                Poll::Pending
            }
            r => Poll::Ready(r),
        })
        .await
    }
}

impl Drop for UdpSocket {
    fn drop(&mut self) {
        self.reactor.deregister(&self.state);
    }
}
