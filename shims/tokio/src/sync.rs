//! Synchronization primitives: bounded multi-producer single-consumer
//! channels.

/// Bounded mpsc channels (subset of `tokio::sync::mpsc`).
pub mod mpsc {
    use std::collections::VecDeque;
    use std::future::poll_fn;
    use std::sync::{Arc, Mutex};
    use std::task::{Poll, Waker};

    /// Channel errors.
    pub mod error {
        /// The receiver was dropped or closed; the value comes back.
        #[derive(Debug, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "channel closed")
            }
        }

        impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

        /// Why a [`super::Sender::try_send`] could not enqueue.
        #[derive(Debug, PartialEq, Eq)]
        pub enum TrySendError<T> {
            /// The channel is at capacity; the value comes back. This is
            /// the shed path — callers count and drop.
            Full(T),
            /// The receiver was dropped or closed; the value comes back.
            Closed(T),
        }

        impl<T> std::fmt::Display for TrySendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self {
                    TrySendError::Full(_) => write!(f, "no available capacity"),
                    TrySendError::Closed(_) => write!(f, "channel closed"),
                }
            }
        }

        impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

        /// Why a [`super::Receiver::try_recv`] returned no value.
        #[derive(Debug, PartialEq, Eq, Clone, Copy)]
        pub enum TryRecvError {
            /// The channel is currently empty.
            Empty,
            /// Every sender dropped (or the receiver closed) and the
            /// queue is drained.
            Disconnected,
        }
    }

    use error::{SendError, TryRecvError, TrySendError};

    struct State<T> {
        queue: VecDeque<T>,
        recv_waker: Option<Waker>,
        send_wakers: VecDeque<Waker>,
        senders: usize,
        rx_alive: bool,
    }

    struct Chan<T> {
        cap: usize,
        state: Mutex<State<T>>,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// The sending half; clonable, every clone feeds the same receiver.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; single consumer.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Create a bounded channel holding at most `cap` in-flight values.
    ///
    /// # Panics
    /// If `cap` is zero (matching tokio).
    pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "mpsc bounded channel requires buffer > 0");
        let chan = Arc::new(Chan {
            cap,
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap.min(1024)),
                recv_waker: None,
                send_wakers: VecDeque::new(),
                senders: 1,
                rx_alive: true,
            }),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.chan.lock();
            s.senders -= 1;
            if s.senders == 0 {
                if let Some(w) = s.recv_waker.take() {
                    w.wake();
                }
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue without waiting: `Full` when at capacity (the caller
        /// sheds), `Closed` when the receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut s = self.chan.lock();
            if !s.rx_alive {
                return Err(TrySendError::Closed(value));
            }
            if s.queue.len() >= self.chan.cap {
                return Err(TrySendError::Full(value));
            }
            s.queue.push_back(value);
            if let Some(w) = s.recv_waker.take() {
                w.wake();
            }
            Ok(())
        }

        /// Enqueue, asynchronously waiting for capacity (backpressure).
        pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut value = Some(value);
            poll_fn(|cx| {
                let mut s = self.chan.lock();
                if !s.rx_alive {
                    let v = value.take().expect("send future polled after completion");
                    return Poll::Ready(Err(SendError(v)));
                }
                if s.queue.len() < self.chan.cap {
                    let v = value.take().expect("send future polled after completion");
                    s.queue.push_back(v);
                    if let Some(w) = s.recv_waker.take() {
                        w.wake();
                    }
                    return Poll::Ready(Ok(()));
                }
                s.send_wakers.push_back(cx.waker().clone());
                Poll::Pending
            })
            .await
        }

        /// Enqueue from synchronous (non-runtime) code, blocking the
        /// calling thread for capacity.
        pub fn blocking_send(&self, value: T) -> Result<(), SendError<T>> {
            crate::park::block_on(self.send(value))
        }

        /// `true` once the receiver has been dropped or closed.
        pub fn is_closed(&self) -> bool {
            !self.chan.lock().rx_alive
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, asynchronously waiting for a value; `None` once every
        /// sender dropped (or the receiver closed) and the queue drained.
        pub async fn recv(&mut self) -> Option<T> {
            poll_fn(|cx| {
                let mut s = self.chan.lock();
                if let Some(v) = s.queue.pop_front() {
                    if let Some(w) = s.send_wakers.pop_front() {
                        w.wake();
                    }
                    return Poll::Ready(Some(v));
                }
                if s.senders == 0 || !s.rx_alive {
                    return Poll::Ready(None);
                }
                s.recv_waker = Some(cx.waker().clone());
                Poll::Pending
            })
            .await
        }

        /// Dequeue without waiting.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            let mut s = self.chan.lock();
            if let Some(v) = s.queue.pop_front() {
                if let Some(w) = s.send_wakers.pop_front() {
                    w.wake();
                }
                return Ok(v);
            }
            if s.senders == 0 || !s.rx_alive {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeue from synchronous (non-runtime) code, blocking the
        /// calling thread.
        pub fn blocking_recv(&mut self) -> Option<T> {
            crate::park::block_on(self.recv())
        }

        /// Close the receiving half: further sends fail with `Closed`,
        /// already-buffered values still drain through `recv`.
        pub fn close(&mut self) {
            let mut s = self.chan.lock();
            s.rx_alive = false;
            for w in s.send_wakers.drain(..) {
                w.wake();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.close();
        }
    }
}
