//! Timers: `sleep` and `timeout`, serviced by one timer thread per
//! runtime holding a deadline min-heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Timer errors.
pub mod error {
    /// The future given to [`super::timeout`] did not complete in time.
    #[derive(Debug, PartialEq, Eq)]
    pub struct Elapsed(pub(crate) ());

    impl std::fmt::Display for Elapsed {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "deadline has elapsed")
        }
    }

    impl std::error::Error for Elapsed {}
}

struct SleepState {
    fired: bool,
    waker: Option<Waker>,
}

struct TimerEntry {
    deadline: Instant,
    seq: u64,
    state: Arc<Mutex<SleepState>>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline, self.seq) == (other.deadline, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// Deadline heap shared between `Sleep` futures and the timer thread.
pub(crate) struct TimerShared {
    heap: Mutex<BinaryHeap<Reverse<TimerEntry>>>,
    condvar: Condvar,
    shutdown: AtomicBool,
    seq: AtomicU64,
}

impl TimerShared {
    pub(crate) fn new() -> Arc<TimerShared> {
        Arc::new(TimerShared {
            heap: Mutex::new(BinaryHeap::new()),
            condvar: Condvar::new(),
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
        })
    }

    fn register(&self, deadline: Instant, state: Arc<Mutex<SleepState>>) {
        let entry = TimerEntry {
            deadline,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            state,
        };
        let mut heap = self.heap.lock().unwrap_or_else(|e| e.into_inner());
        heap.push(Reverse(entry));
        // The new deadline may be the earliest; re-evaluate the wait.
        self.condvar.notify_one();
    }

    /// Ask the timer thread to exit on its next wakeup.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.condvar.notify_all();
    }

    /// Timer loop: fire due entries, sleep until the next deadline.
    pub(crate) fn run_driver(&self) {
        let mut heap = self.heap.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let now = Instant::now();
            while heap.peek().is_some_and(|Reverse(e)| e.deadline <= now) {
                if let Some(Reverse(entry)) = heap.pop() {
                    let mut s = entry.state.lock().unwrap_or_else(|e| e.into_inner());
                    s.fired = true;
                    if let Some(w) = s.waker.take() {
                        w.wake();
                    }
                }
            }
            let wait = heap
                .peek()
                .map(|Reverse(e)| e.deadline.saturating_duration_since(now))
                .unwrap_or(Duration::from_secs(1));
            let (guard, _) = self
                .condvar
                .wait_timeout(heap, wait)
                .unwrap_or_else(|e| e.into_inner());
            heap = guard;
        }
    }
}

/// Future returned by [`sleep`]; completes when its deadline passes.
pub struct Sleep {
    deadline: Instant,
    state: Arc<Mutex<SleepState>>,
    registered: bool,
    timer: Arc<TimerShared>,
}

impl Sleep {
    /// The instant this sleep completes at.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let me = self.get_mut();
        if Instant::now() >= me.deadline {
            return Poll::Ready(());
        }
        {
            let mut s = me.state.lock().unwrap_or_else(|e| e.into_inner());
            if s.fired {
                return Poll::Ready(());
            }
            s.waker = Some(cx.waker().clone());
        }
        if !me.registered {
            me.registered = true;
            me.timer.register(me.deadline, Arc::clone(&me.state));
        }
        Poll::Pending
    }
}

/// Sleep for `duration`. Must be called inside a runtime context.
pub fn sleep(duration: Duration) -> Sleep {
    sleep_until(Instant::now() + duration)
}

/// Sleep until `deadline`. Must be called inside a runtime context.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep {
        deadline,
        state: Arc::new(Mutex::new(SleepState {
            fired: false,
            waker: None,
        })),
        registered: false,
        timer: crate::runtime::Handle::current().timer(),
    }
}

/// Future returned by [`timeout`].
pub struct Timeout<F: Future> {
    future: Pin<Box<F>>,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, error::Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        if let Poll::Ready(out) = me.future.as_mut().poll(cx) {
            return Poll::Ready(Ok(out));
        }
        match Pin::new(&mut me.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(error::Elapsed(()))),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Run `future` with a deadline `duration` from now; `Err(Elapsed)` if the
/// deadline wins. The inner future is polled first, so a result that is
/// already available beats a simultaneous timeout.
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout {
        future: Box::pin(future),
        sleep: sleep(duration),
    }
}
