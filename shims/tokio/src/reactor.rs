//! I/O readiness reactor: one epoll(7) instance and one dispatcher thread
//! per runtime.
//!
//! Sockets register once at creation with no interest armed. A task that
//! hits `WouldBlock` stores its waker and arms the socket's current
//! interest set with `EPOLLONESHOT`; the dispatcher wakes the stored
//! waker(s) and re-arms whatever interest remains. Level-triggered
//! semantics close the arm/readiness race: if the socket became ready
//! between the failed syscall and the arm, epoll reports it immediately.
//!
//! This module owns the crate's only `unsafe` code — four libc calls
//! (`epoll_create1` / `epoll_ctl` / `epoll_wait` / `close`) declared by
//! hand because the build environment has no `libc` crate; the symbols
//! resolve from the C library `std` already links.

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::Waker;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLONESHOT: u32 = 1 << 30;
const EPOLL_CLOEXEC: i32 = 0x80000;

// The kernel ABI packs the struct on x86-64 (12 bytes); other arches use
// natural alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Readiness interest one registered fd currently waits on.
#[derive(Default)]
struct Interest {
    read: Option<Waker>,
    write: Option<Waker>,
}

/// Per-socket registration shared between the socket and the dispatcher.
pub(crate) struct IoState {
    fd: RawFd,
    interest: Mutex<Interest>,
}

/// Direction a task wants to wait for.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    Read,
    Write,
}

/// The reactor: epoll fd plus the registration table.
pub(crate) struct ReactorShared {
    epfd: RawFd,
    regs: Mutex<HashMap<u64, Arc<IoState>>>,
    shutdown: AtomicBool,
}

impl ReactorShared {
    pub(crate) fn new() -> io::Result<Arc<ReactorShared>> {
        // SAFETY: plain syscall, no pointers involved.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Arc::new(ReactorShared {
            epfd,
            regs: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        }))
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: fd as u64,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Register a socket with the reactor (no interest armed yet).
    pub(crate) fn register(&self, fd: RawFd) -> io::Result<Arc<IoState>> {
        self.ctl(EPOLL_CTL_ADD, fd, EPOLLONESHOT)?;
        let state = Arc::new(IoState {
            fd,
            interest: Mutex::new(Interest::default()),
        });
        self.regs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(fd as u64, Arc::clone(&state));
        Ok(state)
    }

    /// Remove a socket from the reactor (called on socket drop, before the
    /// fd itself closes).
    pub(crate) fn deregister(&self, state: &IoState) {
        self.regs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(state.fd as u64));
        let _ = self.ctl(EPOLL_CTL_DEL, state.fd, 0);
    }

    /// Park `waker` until `state`'s fd is ready in `dir`. The waker is
    /// stored and the combined interest re-armed under one lock, so a
    /// concurrent dispatch cannot observe a half-armed registration.
    pub(crate) fn wait(&self, state: &IoState, dir: Direction, waker: &Waker) {
        let mut interest = state.interest.lock().unwrap_or_else(|e| e.into_inner());
        match dir {
            Direction::Read => interest.read = Some(waker.clone()),
            Direction::Write => interest.write = Some(waker.clone()),
        }
        self.arm_locked(state.fd, &interest);
    }

    fn arm_locked(&self, fd: RawFd, interest: &Interest) {
        let mut events = EPOLLONESHOT;
        if interest.read.is_some() {
            events |= EPOLLIN;
        }
        if interest.write.is_some() {
            events |= EPOLLOUT;
        }
        // A failed re-arm (e.g. fd racing a close) is recovered by the
        // caller's next WouldBlock round trip, not escalated here.
        let _ = self.ctl(EPOLL_CTL_MOD, fd, events);
    }

    /// Ask the dispatcher thread to exit on its next wakeup.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Dispatcher loop: wait for readiness, wake parked tasks, re-arm any
    /// remaining interest.
    pub(crate) fn run_dispatcher(&self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; 256];
        while !self.shutdown.load(Ordering::SeqCst) {
            // SAFETY: `events` is a live, writable buffer of the declared
            // capacity; the kernel fills at most `maxevents` entries.
            let n = unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, 100) };
            if n < 0 {
                // EINTR — retry; anything else would repeat, so still retry
                // after the poll-timeout backoff built into epoll_wait.
                continue;
            }
            for ev in events.iter().take(n as usize) {
                let (bits, token) = (ev.events, ev.data);
                let state = {
                    let regs = self.regs.lock().unwrap_or_else(|e| e.into_inner());
                    regs.get(&token).cloned()
                };
                let Some(state) = state else { continue };
                let mut interest = state.interest.lock().unwrap_or_else(|e| e.into_inner());
                let err = bits & (EPOLLERR | EPOLLHUP) != 0;
                if err || bits & EPOLLIN != 0 {
                    if let Some(w) = interest.read.take() {
                        w.wake();
                    }
                }
                if err || bits & EPOLLOUT != 0 {
                    if let Some(w) = interest.write.take() {
                        w.wake();
                    }
                }
                if interest.read.is_some() || interest.write.is_some() {
                    self.arm_locked(state.fd, &interest);
                }
            }
        }
    }
}

impl Drop for ReactorShared {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this struct and closed exactly once.
        unsafe { close(self.epfd) };
    }
}
