//! Offline drop-in subset of the `tokio` 1.x API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of tokio it actually uses — enough to host
//! one async task per cluster node over real UDP sockets:
//!
//! * [`runtime`] — a multi-threaded work queue (`Builder`, `Runtime`,
//!   `Handle`) built on `std::thread` workers and the `std::task::Wake`
//!   trait; `block_on` parks the calling thread.
//! * [`task`] — `spawn` / `JoinHandle` / `yield_now`.
//! * [`net`] — an async [`net::UdpSocket`] over a nonblocking std socket,
//!   readiness-driven by one epoll(7) reactor thread per runtime
//!   (level-triggered + `EPOLLONESHOT`, re-armed only while a task waits).
//! * [`sync`] — bounded [`sync::mpsc`] channels with `try_send` (the shed
//!   path), async `send`/`recv` (the backpressure path) and
//!   `blocking_send`/`blocking_recv` for non-async control planes.
//! * [`time`] — `sleep` / `timeout` serviced by one timer thread per
//!   runtime holding a deadline min-heap.
//!
//! Semantics intentionally match tokio where the workspace can observe
//! them: channel closure wakes senders and receivers, dropped runtimes
//! stop their worker/reactor/timer threads, a panicking task resolves its
//! `JoinHandle` with a [`task::JoinError`] instead of killing the worker.
//! The only `unsafe` is the epoll FFI in the reactor module.

#![warn(missing_docs)]

mod executor;
pub mod net;
mod park;
mod reactor;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;
