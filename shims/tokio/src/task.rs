//! Task handles: `spawn`, `JoinHandle`, `yield_now`.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Shared slot the spawned task resolves and the handle awaits.
pub(crate) struct JoinState<T> {
    pub(crate) result: Option<T>,
    pub(crate) finished: bool,
    pub(crate) waker: Option<Waker>,
}

impl<T> JoinState<T> {
    pub(crate) fn new() -> Self {
        JoinState {
            result: None,
            finished: false,
            waker: None,
        }
    }
}

/// The task was cancelled or panicked before producing a value.
#[derive(Debug)]
pub struct JoinError(());

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task failed (panicked or cancelled)")
    }
}

impl std::error::Error for JoinError {}

/// An owned permission to await a spawned task's output.
///
/// Unlike tokio's, dropping this handle never detaches mid-flight state
/// the workspace relies on — the task keeps running either way.
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    pub(crate) fn new(state: Arc<Mutex<JoinState<T>>>) -> Self {
        JoinHandle { state }
    }

    /// `true` once the task has completed (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .finished
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.finished {
            return Poll::Ready(s.result.take().ok_or(JoinError(())));
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Spawn a future onto the current runtime. Panics outside a runtime
/// context, like tokio's free function.
pub fn spawn<T, F>(future: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: Future<Output = T> + Send + 'static,
{
    crate::runtime::Handle::current().spawn(future)
}

/// Yield back to the scheduler once, letting other ready tasks run.
pub async fn yield_now() {
    struct YieldNow(bool);
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldNow(false).await
}
