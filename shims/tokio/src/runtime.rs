//! The runtime: `Builder`, `Runtime`, `Handle` and the thread-local
//! context that `spawn` / `sleep` / socket registration resolve through.

use std::cell::RefCell;
use std::future::Future;
use std::io;
use std::sync::Arc;
use std::thread::JoinHandle as ThreadHandle;

use crate::executor::{self, Shared};
use crate::reactor::ReactorShared;
use crate::task::JoinHandle;
use crate::time::TimerShared;

thread_local! {
    static CONTEXT: RefCell<Option<Handle>> = const { RefCell::new(None) };
}

/// A cheaply clonable reference to a runtime, valid for spawning and for
/// resolving the timer/reactor from library code.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
    timer: Arc<TimerShared>,
    reactor: Arc<ReactorShared>,
}

impl Handle {
    /// The handle of the runtime the current thread runs inside.
    ///
    /// # Panics
    /// Outside a runtime context, like tokio's.
    pub fn current() -> Handle {
        CONTEXT
            .with(|cx| cx.borrow().clone())
            .unwrap_or_else(|| panic!("must be called from the context of a Tokio 1.x runtime"))
    }

    /// Spawn a future onto this runtime.
    pub fn spawn<T, F>(&self, future: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        executor::spawn_on(&self.shared, future)
    }

    /// Run a future to completion on the calling thread, servicing the
    /// runtime context so the future can spawn/sleep/do I/O.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        let _guard = ContextGuard::enter(self.clone());
        crate::park::block_on(future)
    }

    pub(crate) fn timer(&self) -> Arc<TimerShared> {
        Arc::clone(&self.timer)
    }

    pub(crate) fn reactor(&self) -> Arc<ReactorShared> {
        Arc::clone(&self.reactor)
    }
}

/// Restores the previous thread-local context on drop, so nested
/// `block_on` scopes unwind correctly.
struct ContextGuard {
    previous: Option<Handle>,
}

impl ContextGuard {
    fn enter(handle: Handle) -> ContextGuard {
        let previous = CONTEXT.with(|cx| cx.borrow_mut().replace(handle));
        ContextGuard { previous }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CONTEXT.with(|cx| *cx.borrow_mut() = previous);
    }
}

/// Builds a [`Runtime`] (subset of tokio's multi-thread builder).
pub struct Builder {
    worker_threads: Option<usize>,
    thread_name: String,
}

impl Builder {
    /// A builder for a multi-threaded runtime (the only flavor shipped).
    pub fn new_multi_thread() -> Builder {
        Builder {
            worker_threads: None,
            thread_name: "tokio-worker".to_string(),
        }
    }

    /// Number of worker threads; defaults to available parallelism.
    pub fn worker_threads(&mut self, n: usize) -> &mut Builder {
        self.worker_threads = Some(n.max(1));
        self
    }

    /// Base name for worker threads.
    pub fn thread_name(&mut self, name: impl Into<String>) -> &mut Builder {
        self.thread_name = name.into();
        self
    }

    /// Accepted for API compatibility; I/O and timers are always enabled.
    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    /// Spawn the worker, timer and reactor threads.
    pub fn build(&mut self) -> io::Result<Runtime> {
        let workers = self.worker_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let shared = Shared::new();
        let timer = TimerShared::new();
        let reactor = ReactorShared::new()?;
        let handle = Handle {
            shared: Arc::clone(&shared),
            timer: Arc::clone(&timer),
            reactor: Arc::clone(&reactor),
        };
        let mut threads = Vec::with_capacity(workers + 2);
        for i in 0..workers {
            let worker_handle = handle.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{}-{i}", self.thread_name))
                    .spawn(move || {
                        let _guard = ContextGuard::enter(worker_handle.clone());
                        worker_handle.shared.run_worker();
                    })?,
            );
        }
        {
            let timer = Arc::clone(&timer);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{}-timer", self.thread_name))
                    .spawn(move || timer.run_driver())?,
            );
        }
        {
            let reactor = Arc::clone(&reactor);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{}-reactor", self.thread_name))
                    .spawn(move || reactor.run_dispatcher())?,
            );
        }
        Ok(Runtime { handle, threads })
    }
}

/// A running executor: worker threads plus the timer and reactor drivers.
/// Dropping the runtime stops all of them (pending tasks are cancelled;
/// their `JoinHandle`s resolve with `JoinError`).
pub struct Runtime {
    handle: Handle,
    threads: Vec<ThreadHandle<()>>,
}

impl Runtime {
    /// A multi-thread runtime with default settings.
    pub fn new() -> io::Result<Runtime> {
        Builder::new_multi_thread().build()
    }

    /// This runtime's clonable handle.
    pub fn handle(&self) -> &Handle {
        &self.handle
    }

    /// Spawn a future onto the runtime.
    pub fn spawn<T, F>(&self, future: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        self.handle.spawn(future)
    }

    /// Run a future to completion on the calling thread.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        self.handle.block_on(future)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.handle.shared.begin_shutdown();
        self.handle.timer.begin_shutdown();
        self.handle.reactor.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
