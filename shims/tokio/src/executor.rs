//! The task executor: a shared run queue drained by worker threads.
//!
//! Tasks are `Arc`s implementing [`std::task::Wake`]; waking pushes the
//! task back on the queue exactly once (an atomic `queued` flag dedupes
//! concurrent wakes). A panicking task is caught, its future dropped, and
//! the drop of its completion guard resolves the `JoinHandle` with a
//! `JoinError` — the worker thread survives.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::task::{JoinHandle, JoinState};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// State shared by every worker thread of one runtime.
pub(crate) struct Shared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    condvar: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    pub(crate) fn new() -> Arc<Shared> {
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            condvar: Condvar::new(),
            shutdown: AtomicBool::new(false),
        })
    }

    fn push(&self, task: Arc<Task>) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(task);
        self.condvar.notify_one();
    }

    /// Signal workers to exit and wake them all; pending tasks are dropped
    /// (their `JoinHandle`s resolve with `JoinError`).
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.clear();
        self.condvar.notify_all();
    }

    /// Worker loop: pop and poll tasks until shutdown.
    pub(crate) fn run_worker(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    q = self.condvar.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            task.poll();
        }
    }
}

/// One spawned task: its future plus requeue bookkeeping.
struct Task {
    shared: Arc<Shared>,
    future: Mutex<Option<BoxFuture>>,
    /// `true` while the task sits in the run queue (or is about to be
    /// pushed); wakes while set are coalesced.
    queued: AtomicBool,
}

impl Task {
    fn poll(self: Arc<Self>) {
        // Clear before polling so a wake that lands mid-poll re-queues.
        self.queued.store(false, Ordering::SeqCst);
        let mut slot = self.future.lock().unwrap_or_else(|e| e.into_inner());
        let Some(fut) = slot.as_mut() else {
            return; // already completed by an earlier poll
        };
        let waker = Waker::from(Arc::clone(&self));
        let mut cx = Context::from_waker(&waker);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        match result {
            Ok(Poll::Pending) => {}
            // Completed or panicked: drop the future either way. On panic
            // the completion guard inside resolves the JoinHandle with an
            // error as it unwinds/drops.
            Ok(Poll::Ready(())) | Err(_) => *slot = None,
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if !self.queued.swap(true, Ordering::SeqCst) {
            let shared = Arc::clone(&self.shared);
            shared.push(self);
        }
    }

    fn wake_by_ref(self: &Arc<Self>) {
        Arc::clone(self).wake();
    }
}

/// Resolves the paired [`JoinHandle`] when the task finishes — including
/// by panic or cancellation, via `Drop`.
struct Completion<T> {
    state: Arc<Mutex<JoinState<T>>>,
    done: bool,
}

impl<T> Completion<T> {
    fn finish(&mut self, value: Option<T>) {
        if self.done {
            return;
        }
        self.done = true;
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.result = value;
        s.finished = true;
        if let Some(w) = s.waker.take() {
            w.wake();
        }
    }
}

impl<T> Drop for Completion<T> {
    fn drop(&mut self) {
        self.finish(None);
    }
}

/// Spawn `future` onto `shared`, returning its join handle.
pub(crate) fn spawn_on<T, F>(shared: &Arc<Shared>, future: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: Future<Output = T> + Send + 'static,
{
    let state = Arc::new(Mutex::new(JoinState::new()));
    let mut completion = Completion {
        state: Arc::clone(&state),
        done: false,
    };
    let wrapped = async move {
        let out = future.await;
        completion.finish(Some(out));
    };
    let task = Arc::new(Task {
        shared: Arc::clone(shared),
        future: Mutex::new(Some(Box::pin(wrapped))),
        queued: AtomicBool::new(true),
    });
    shared.push(Arc::clone(&task));
    JoinHandle::new(state)
}
