//! Behavioral smoke tests for the tokio shim: the executor, timers,
//! channels and UDP sockets the cluster host depends on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tokio::sync::mpsc::error::TrySendError;

fn rt(workers: usize) -> tokio::runtime::Runtime {
    tokio::runtime::Builder::new_multi_thread()
        .worker_threads(workers)
        .enable_all()
        .build()
        .expect("build runtime")
}

#[test]
fn block_on_returns_value() {
    let rt = rt(1);
    assert_eq!(rt.block_on(async { 2 + 3 }), 5);
}

#[test]
fn spawn_fan_out_and_join() {
    let rt = rt(2);
    let hit = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..256)
        .map(|i| {
            let hit = Arc::clone(&hit);
            rt.spawn(async move {
                tokio::task::yield_now().await;
                hit.fetch_add(1, Ordering::Relaxed);
                i
            })
        })
        .collect();
    let sum: usize = rt.block_on(async {
        let mut sum = 0;
        for h in handles {
            sum += h.await.expect("task completes");
        }
        sum
    });
    assert_eq!(sum, (0..256).sum::<usize>());
    assert_eq!(hit.load(Ordering::Relaxed), 256);
}

#[test]
fn panicking_task_resolves_join_error_and_spares_the_worker() {
    let rt = rt(1);
    let bad = rt.spawn(async { panic!("task panic must not kill the worker") });
    let err = rt.block_on(bad);
    assert!(err.is_err(), "panicked task must yield JoinError");
    // The single worker must still serve new tasks.
    let ok = rt.spawn(async { 42 });
    assert_eq!(rt.block_on(ok).expect("worker survived"), 42);
}

#[test]
fn sleep_waits_and_timeout_fires() {
    let rt = rt(1);
    let t0 = Instant::now();
    rt.block_on(async { tokio::time::sleep(Duration::from_millis(50)).await });
    assert!(t0.elapsed() >= Duration::from_millis(50));

    let out = rt.block_on(async {
        tokio::time::timeout(Duration::from_millis(40), std::future::pending::<()>()).await
    });
    assert!(out.is_err(), "pending future must time out");

    let out =
        rt.block_on(async { tokio::time::timeout(Duration::from_millis(200), async { 7 }).await });
    assert_eq!(out.expect("fast future beats the deadline"), 7);
}

#[test]
fn mpsc_backpressure_sheds_and_resumes() {
    let rt = rt(1);
    let (tx, mut rx) = tokio::sync::mpsc::channel::<u32>(2);
    tx.try_send(1).expect("slot 1");
    tx.try_send(2).expect("slot 2");
    match tx.try_send(3) {
        Err(TrySendError::Full(v)) => assert_eq!(v, 3),
        other => panic!("expected Full, got {other:?}"),
    }
    // An async send parks on the full channel and resumes once the
    // receiver drains a slot.
    let tx2 = tx.clone();
    let sender = rt.spawn(async move { tx2.send(4).await.is_ok() });
    std::thread::sleep(Duration::from_millis(30));
    assert!(!sender.is_finished(), "send must wait while full");
    let drained = rt.block_on(async {
        let a = rx.recv().await;
        let b = rx.recv().await;
        let c = rx.recv().await;
        (a, b, c)
    });
    assert_eq!(drained, (Some(1), Some(2), Some(4)));
    assert!(rt.block_on(sender).expect("sender completes"));
    // Dropping every sender ends the stream.
    drop(tx);
    assert_eq!(rx.blocking_recv(), None);
}

#[test]
fn mpsc_close_fails_senders_but_drains_buffer() {
    let (tx, mut rx) = tokio::sync::mpsc::channel::<u32>(4);
    tx.try_send(9).expect("buffered before close");
    rx.close();
    match tx.try_send(10) {
        Err(TrySendError::Closed(v)) => assert_eq!(v, 10),
        other => panic!("expected Closed, got {other:?}"),
    }
    assert!(tx.is_closed());
    assert_eq!(rx.blocking_recv(), Some(9), "buffered value still drains");
    assert_eq!(rx.blocking_recv(), None);
}

#[test]
fn udp_round_trip_and_concurrent_reader_writer() {
    let rt = rt(2);
    rt.block_on(async {
        let a = tokio::net::UdpSocket::bind("127.0.0.1:0")
            .await
            .expect("bind a");
        let b = Arc::new(
            tokio::net::UdpSocket::bind("127.0.0.1:0")
                .await
                .expect("bind b"),
        );
        let addr_a = a.local_addr().expect("addr a");
        let addr_b = b.local_addr().expect("addr b");

        // Reader task parks on an empty socket (exercises the reactor
        // arm/dispatch path, not just the nonblocking fast path).
        let b_reader = Arc::clone(&b);
        let reader = tokio::spawn(async move {
            let mut buf = [0u8; 64];
            let (n, from) = b_reader.recv_from(&mut buf).await.expect("recv");
            (buf[..n].to_vec(), from)
        });
        tokio::time::sleep(Duration::from_millis(30)).await;
        a.send_to(b"ping", addr_b).await.expect("send ping");
        let (got, from) = reader.await.expect("reader joins");
        assert_eq!(got, b"ping");
        assert_eq!(from, addr_a);

        // And the writer half of the same Arc'd socket still works.
        b.send_to(b"pong", addr_a).await.expect("send pong");
        let mut buf = [0u8; 64];
        let (n, from) = a.recv_from(&mut buf).await.expect("recv pong");
        assert_eq!(&buf[..n], b"pong");
        assert_eq!(from, addr_b);
    });
}

#[test]
fn many_sockets_many_tasks() {
    // A miniature of the cluster layout: 64 sockets, one echo task each,
    // all driven through one reactor.
    let rt = rt(2);
    rt.block_on(async {
        let mut sockets = Vec::new();
        for _ in 0..64 {
            sockets.push(Arc::new(
                tokio::net::UdpSocket::bind("127.0.0.1:0")
                    .await
                    .expect("bind"),
            ));
        }
        let addrs: Vec<_> = sockets
            .iter()
            .map(|s| s.local_addr().expect("addr"))
            .collect();
        let echoes: Vec<_> = sockets
            .iter()
            .map(|s| {
                let s = Arc::clone(s);
                tokio::spawn(async move {
                    let mut buf = [0u8; 32];
                    let (n, from) = s.recv_from(&mut buf).await.expect("echo recv");
                    s.send_to(&buf[..n], from).await.expect("echo send");
                })
            })
            .collect();
        let probe = tokio::net::UdpSocket::bind("127.0.0.1:0")
            .await
            .expect("probe");
        for (i, addr) in addrs.iter().enumerate() {
            probe
                .send_to(format!("m{i}").as_bytes(), *addr)
                .await
                .expect("probe send");
        }
        let mut seen = 0;
        let mut buf = [0u8; 32];
        while seen < 64 {
            let (n, _) = tokio::time::timeout(Duration::from_secs(5), probe.recv_from(&mut buf))
                .await
                .expect("echoes arrive in time")
                .expect("probe recv");
            assert!(n > 0);
            seen += 1;
        }
        for e in echoes {
            e.await.expect("echo task joins");
        }
    });
}

#[test]
fn handle_spawn_from_inside_a_task() {
    let rt = rt(2);
    let out = rt.block_on(async {
        let inner = tokio::spawn(async { tokio::spawn(async { 11 }).await.expect("nested") });
        inner.await.expect("outer")
    });
    assert_eq!(out, 11);
}
