//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the minimal surface it actually uses: the [`Rng`] /
//! [`SeedableRng`] traits and a deterministic [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64). Determinism is load-bearing —
//! simulator runs must replay identically for a given seed — so the
//! generator is fully specified here rather than delegated to an external
//! crate that could change algorithms between versions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the single primitive every derived
/// sampling method builds on.
pub trait RngCore {
    /// Produce the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a uniformly random value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Return `true` with probability `p` (clamped into `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types that can be drawn uniformly from an [`RngCore`].
pub trait Standard {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn uniformly from (subset of
/// `rand::distr::uniform`).
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw one value inside the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= 1 << 64);
    // Rejection-free multiply-shift (Lemire); bias is < 2^-64 per draw,
    // immaterial for simulation workloads while keeping draws O(1).
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u128 + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    };
}

int_range!(u64);
int_range!(usize);
int_range!(u32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Build a generator from OS entropy. The offline shim derives the seed
    /// from the system clock — adequate for examples, never used by tests.
    fn from_os_rng() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ seeded through
    /// SplitMix64 (the reference seeding procedure).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's "secure" generator is the same deterministic core.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.random_range(5u64..10);
            assert!((5..10).contains(&a));
            let b = rng.random_range(5u64..=10);
            assert!((5..=10).contains(&b));
            let c = rng.random_range(0usize..3);
            assert!(c < 3);
            let d = rng.random_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }
}
