//! Offline drop-in subset of the `bytes` 1.x API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice the wire codec uses: [`BytesMut`] as a
//! growable write buffer ([`BufMut`]) and [`Bytes`] as a consuming read
//! cursor ([`Buf`]). Both are plain `Vec<u8>`-backed — no refcounted
//! slab sharing — which matches the codec's one-shot encode/decode usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Read cursor over a byte buffer (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Expose the unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Consume exactly `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain, matching upstream.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Append-only write buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer for encoding.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    v: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { v: Vec::new() }
    }

    /// Empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            v: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Copy the written bytes into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.v.clone()
    }

    /// Convert into an immutable read buffer.
    pub fn freeze(self) -> Bytes {
        Bytes { v: self.v, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.v.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.v
    }
}

/// Immutable byte buffer consumed from the front while decoding.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    v: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Build a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            v: data.to_vec(),
            pos: 0,
        }
    }

    /// Bytes left to consume (alias of [`Buf::remaining`]).
    pub fn len(&self) -> usize {
        self.v.len() - self.pos
    }

    /// Whether the buffer is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.v.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.v[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.pos += n;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { v, pos: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_slice(b"xyz");
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        let _ = r.get_u32_le();
    }
}
