//! Offline drop-in subset of the `crossbeam` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of crossbeam it actually uses: MPMC-flavored
//! channels. These are layered over `std::sync::mpsc`, which covers the
//! workspace's usage (every receiver has a single owner thread).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message available.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel. Cloneable; all clones feed the same
    /// receiver.
    pub struct Sender<T>(Flavor<T>);

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking if the channel is bounded and full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Flavor::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Block until a message arrives, the timeout elapses, or every
        /// sender disconnects.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Return a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Create a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// Create a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_multi_producer() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            tx.send(9).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![7, 9]);
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
