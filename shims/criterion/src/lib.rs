//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the bench surface its `benches/` use: groups,
//! parameterized ids, throughput annotation, and `Bencher::iter`. Instead
//! of criterion's statistical engine this shim times a fixed batch with
//! `std::time::Instant` and prints a one-line mean per benchmark — enough
//! to compare runs by eye and to keep every bench target compiling and
//! runnable without the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function label plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with both a function label and a parameter value.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render the id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the bench closure; call [`Bencher::iter`] with the hot loop.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `f` over a fixed batch of iterations (after a short warm-up).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.samples.min(3) {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("bench {id:<40} (closure never called iter)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>10.1} elem/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!("bench {:<40} {:>12.3} µs/iter{}", id, per_iter * 1e6, rate);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotate per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(&mut self, id: I, mut f: F) {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&full, self.throughput);
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T: ?Sized, F>(&mut self, id: I, input: &T, mut f: F)
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&full, self.throughput);
    }

    /// End the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b);
        b.report(id, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.effective_samples(),
            throughput: None,
        }
    }
}

/// Declare a bench group function running each target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran >= 20);
    }

    #[test]
    fn group_api_shape() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
