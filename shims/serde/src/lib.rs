//! Offline stand-in for `serde`.
//!
//! The workspace uses serde only as inert `#[derive(serde::Serialize,
//! serde::Deserialize)]` annotations — all wire encoding is hand-written
//! (see `crates/core/src/codec.rs` and `crates/rpc/src/codec.rs`), so no
//! code ever calls serde's traits. With no network access to crates.io,
//! this crate supplies derive macros of the same names that expand to
//! nothing, keeping the annotations compiling (and keeping the door open
//! to swap in real serde when the build environment has registry access).

use proc_macro::TokenStream;

/// Inert stand-in for `serde::Serialize`. Expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert stand-in for `serde::Deserialize`. Expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
