//! Offline drop-in subset of the `parking_lot` 0.12 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice it uses: a [`Mutex`] whose `lock()` returns
//! the guard directly (no poison `Result`). Layered over `std::sync::Mutex`;
//! a poisoned lock is recovered rather than propagated, matching
//! parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard releasing the [`Mutex`] on drop.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never carry poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared read access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until exclusive write access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
