//! Causal epoch traces: reassemble one aggregation epoch leaf→root from
//! fleet-wide event buffers and render it as ascii or dot.

use std::collections::{BTreeMap, BTreeSet};

use crate::trace::{digest_events, Event, EventKind};

/// One child→parent aggregation edge observed in an epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEdge {
    /// The node that sent its merged partial upward.
    pub child: u64,
    /// The parent it sent to.
    pub parent: u64,
    /// Host clock of the send.
    pub at_ms: u64,
}

/// The tree-shaped trace of one aggregation epoch, reassembled from the
/// `Send{kind:"dat_update"}` events all nodes recorded under the epoch's
/// causal trace id, plus the root's `Report` event.
#[derive(Clone, Debug)]
pub struct EpochTrace {
    /// The causal id this trace was filtered by.
    pub trace_id: u64,
    /// The reporting root, when a `Report` event was found.
    pub root: Option<u64>,
    /// Child→parent edges, sorted by child id.
    pub edges: Vec<TraceEdge>,
    /// Every event carrying the trace id, as `(node, event)` pairs.
    pub events: Vec<(u64, Event)>,
}

impl EpochTrace {
    /// Filter `fleet` (pairs of node id and event) down to `trace_id` and
    /// assemble the epoch tree.
    pub fn assemble(trace_id: u64, fleet: &[(u64, Event)]) -> EpochTrace {
        let mut edges = Vec::new();
        let mut root = None;
        let mut events = Vec::new();
        for (node, e) in fleet.iter().filter(|(_, e)| e.trace_id == trace_id) {
            match &e.kind {
                EventKind::Send { kind, to } if *kind == "dat_update" => edges.push(TraceEdge {
                    child: *node,
                    parent: *to,
                    at_ms: e.at_ms,
                }),
                EventKind::Report { .. } => root = Some(*node),
                _ => {}
            }
            events.push((*node, e.clone()));
        }
        edges.sort_by_key(|e| (e.child, e.parent));
        edges.dedup_by_key(|e| e.child);
        EpochTrace {
            trace_id,
            root,
            edges,
            events,
        }
    }

    /// Every node that contributed to the epoch: all senders plus the
    /// root. On a converged ring this equals the report's
    /// `Completeness.contributors`.
    pub fn contributors(&self) -> BTreeSet<u64> {
        let mut set: BTreeSet<u64> = self.edges.iter().map(|e| e.child).collect();
        if let Some(r) = self.root {
            set.insert(r);
        }
        set
    }

    /// Tree depth (longest child→…→root chain, root alone = 1); 0 when
    /// the trace is empty.
    pub fn depth(&self) -> usize {
        let children = self.children_map();
        match self.root {
            Some(r) => Self::depth_under(&children, r, 0),
            None => 0,
        }
    }

    fn depth_under(children: &BTreeMap<u64, Vec<u64>>, node: u64, hops: usize) -> usize {
        // Hop cap guards against malformed (cyclic) traces.
        if hops > 1 << 16 {
            return hops;
        }
        1 + children
            .get(&node)
            .map(|cs| {
                cs.iter()
                    .map(|c| Self::depth_under(children, *c, hops + 1))
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    }

    fn children_map(&self) -> BTreeMap<u64, Vec<u64>> {
        let mut m: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for e in &self.edges {
            m.entry(e.parent).or_default().push(e.child);
        }
        m
    }

    /// Render the tree root-down as indented ascii.
    pub fn render_ascii(&self) -> String {
        let children = self.children_map();
        let mut out = format!("epoch trace {:#018x}\n", self.trace_id);
        match self.root {
            Some(r) => Self::ascii_under(&children, r, 0, &mut out),
            None => out.push_str("(no report event found)\n"),
        }
        out
    }

    fn ascii_under(children: &BTreeMap<u64, Vec<u64>>, node: u64, depth: usize, out: &mut String) {
        if depth > 1 << 10 {
            return;
        }
        out.push_str(&"  ".repeat(depth));
        out.push_str(if depth == 0 { "* " } else { "- " });
        out.push_str(&format!("{node:#x}\n"));
        for c in children.get(&node).into_iter().flatten() {
            Self::ascii_under(children, *c, depth + 1, out);
        }
    }

    /// Render the tree as Graphviz dot (`child -> parent` edges).
    pub fn render_dot(&self) -> String {
        let mut out = format!("digraph epoch_{:x} {{\n", self.trace_id);
        if let Some(r) = self.root {
            out.push_str(&format!("  \"{r:#x}\" [shape=doublecircle];\n"));
        }
        for e in &self.edges {
            out.push_str(&format!("  \"{:#x}\" -> \"{:#x}\";\n", e.child, e.parent));
        }
        out.push_str("}\n");
        out
    }

    /// Order-insensitive digest of the trace's events.
    pub fn digest(&self) -> u64 {
        digest_events(self.events.iter().map(|(_, e)| e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace_id: u64, kind: EventKind) -> Event {
        Event {
            lts: 0,
            at_ms: 0,
            trace_id,
            kind,
        }
    }

    fn chain_fleet(tid: u64) -> Vec<(u64, Event)> {
        // 1 -> 2 -> 4 (root), 3 -> 4; plus an unrelated trace id.
        vec![
            (
                1,
                ev(
                    tid,
                    EventKind::Send {
                        kind: "dat_update",
                        to: 2,
                    },
                ),
            ),
            (
                2,
                ev(
                    tid,
                    EventKind::Send {
                        kind: "dat_update",
                        to: 4,
                    },
                ),
            ),
            (
                3,
                ev(
                    tid,
                    EventKind::Send {
                        kind: "dat_update",
                        to: 4,
                    },
                ),
            ),
            (
                4,
                ev(
                    tid,
                    EventKind::Report {
                        key: 9,
                        epoch: 1,
                        contributors: 4,
                        seq: 1,
                    },
                ),
            ),
            (
                7,
                ev(
                    tid + 1,
                    EventKind::Send {
                        kind: "dat_update",
                        to: 4,
                    },
                ),
            ),
        ]
    }

    #[test]
    fn assembles_tree_and_contributors() {
        let t = EpochTrace::assemble(5, &chain_fleet(5));
        assert_eq!(t.root, Some(4));
        assert_eq!(t.edges.len(), 3, "foreign trace ids excluded");
        assert_eq!(
            t.contributors().into_iter().collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn renders_ascii_and_dot() {
        let t = EpochTrace::assemble(5, &chain_fleet(5));
        let ascii = t.render_ascii();
        assert!(ascii.contains("* 0x4"));
        assert!(ascii.contains("- 0x1"));
        let dot = t.render_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"0x1\" -> \"0x2\""));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = EpochTrace::assemble(42, &[]);
        assert_eq!(t.root, None);
        assert!(t.contributors().is_empty());
        assert_eq!(t.depth(), 0);
        assert!(t.render_ascii().contains("no report"));
    }
}
