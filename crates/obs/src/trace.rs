//! Structured event tracing: typed events, bounded per-node ring buffers,
//! causal trace ids, and order-insensitive digests.

use std::collections::VecDeque;

/// FNV-1a over a byte slice — the primitive every digest builds on.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The causal trace id of one aggregation epoch of one key. Every node
/// computes the same id locally (epochs advance in lockstep on a
/// pre-stabilized ring), so an epoch's sends can be correlated fleet-wide
/// without any coordination. Never returns 0 — 0 means "no trace".
pub fn trace_id_for(key: u64, epoch: u64) -> u64 {
    let t = mix64(key ^ mix64(epoch ^ 0x9e37_79b9_7f4a_7c15));
    if t == 0 {
        1
    } else {
        t
    }
}

/// What happened. Node identities are `u64`s (chord ids); message kinds
/// are the same static labels the metrics use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A message left this node for `to`.
    Send {
        /// Message-kind label (e.g. `dat_update`).
        kind: &'static str,
        /// Destination node id (or routing key for routed sends).
        to: u64,
    },
    /// A message arrived from `from`.
    Recv {
        /// Message-kind label.
        kind: &'static str,
        /// Sender node id.
        from: u64,
    },
    /// A routed payload reached its key's owner after `hops` hops.
    RouteHop {
        /// The routing key.
        key: u64,
        /// Hops traversed.
        hops: u32,
    },
    /// A protocol timer fired.
    Timer {
        /// The layer's timer token/sub-kind.
        token: u64,
    },
    /// A new aggregation epoch began for `key`.
    EpochStart {
        /// Aggregation key.
        key: u64,
        /// Epoch index.
        epoch: u64,
    },
    /// The acting root emitted a report.
    Report {
        /// Aggregation key.
        key: u64,
        /// Epoch index.
        epoch: u64,
        /// Contributors folded into the report.
        contributors: u64,
        /// Fencing sequence number.
        seq: u64,
    },
    /// A node adopted replicated root state (warm failover).
    Failover {
        /// Aggregation key.
        key: u64,
        /// Sequence the replica carried.
        seq: u64,
    },
    /// Stale root state (or a stale ex-root) was fenced off.
    FenceReject {
        /// Aggregation key.
        key: u64,
        /// The rejected sequence number.
        seq: u64,
    },
    /// The failure detector crossed its suspicion threshold for `node`
    /// and the layer routed around it proactively (before any RTO).
    Suspect {
        /// The suspected node's id.
        node: u64,
    },
    /// A burst of undecodable frames from one peer crossed the bad-frame
    /// scoring threshold: the peer was reported to the failure detector
    /// as poisoning the wire (repeat offenders end up quarantined).
    Poisoned {
        /// The poisoning node's id.
        node: u64,
    },
}

/// One traced event: logical timestamp, host clock, causal trace id, kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Per-tracer logical timestamp (monotone, gap-free until eviction).
    pub lts: u64,
    /// Host clock (virtual ms in sim, wall ms over UDP).
    pub at_ms: u64,
    /// Causal id (0 = untraced).
    pub trace_id: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Hash of the event's *content* — kind, fields and trace id, but NOT
    /// `lts`/`at_ms`. Two transports delivering the same causal events at
    /// different times and in different orders produce the same content
    /// hashes.
    pub fn content_hash(&self) -> u64 {
        let mut buf = [0u8; 64];
        let mut n = 0usize;
        let mut push = |bytes: &[u8], n: &mut usize| {
            buf[*n..*n + bytes.len()].copy_from_slice(bytes);
            *n += bytes.len();
        };
        push(&self.trace_id.to_le_bytes(), &mut n);
        match &self.kind {
            EventKind::Send { kind, to } => {
                push(&[1], &mut n);
                push(&fnv1a(kind.as_bytes()).to_le_bytes(), &mut n);
                push(&to.to_le_bytes(), &mut n);
            }
            EventKind::Recv { kind, from } => {
                push(&[2], &mut n);
                push(&fnv1a(kind.as_bytes()).to_le_bytes(), &mut n);
                push(&from.to_le_bytes(), &mut n);
            }
            EventKind::RouteHop { key, hops } => {
                push(&[3], &mut n);
                push(&key.to_le_bytes(), &mut n);
                push(&(*hops as u64).to_le_bytes(), &mut n);
            }
            EventKind::Timer { token } => {
                push(&[4], &mut n);
                push(&token.to_le_bytes(), &mut n);
            }
            EventKind::EpochStart { key, epoch } => {
                push(&[5], &mut n);
                push(&key.to_le_bytes(), &mut n);
                push(&epoch.to_le_bytes(), &mut n);
            }
            EventKind::Report {
                key,
                epoch,
                contributors,
                seq,
            } => {
                push(&[6], &mut n);
                push(&key.to_le_bytes(), &mut n);
                push(&epoch.to_le_bytes(), &mut n);
                push(&contributors.to_le_bytes(), &mut n);
                push(&seq.to_le_bytes(), &mut n);
            }
            EventKind::Failover { key, seq } => {
                push(&[7], &mut n);
                push(&key.to_le_bytes(), &mut n);
                push(&seq.to_le_bytes(), &mut n);
            }
            EventKind::FenceReject { key, seq } => {
                push(&[8], &mut n);
                push(&key.to_le_bytes(), &mut n);
                push(&seq.to_le_bytes(), &mut n);
            }
            EventKind::Suspect { node } => {
                push(&[9], &mut n);
                push(&node.to_le_bytes(), &mut n);
            }
            EventKind::Poisoned { node } => {
                push(&[10], &mut n);
                push(&node.to_le_bytes(), &mut n);
            }
        }
        fnv1a(&buf[..n])
    }
}

/// Order-insensitive digest of a set of events: the wrapping sum of their
/// content hashes. Insensitive to delivery order and to `lts`/`at_ms`, so
/// a SimNet run and a UDP run of the same causal scenario digest equal.
pub fn digest_events<'a>(events: impl Iterator<Item = &'a Event>) -> u64 {
    events.fold(0u64, |acc, e| acc.wrapping_add(e.content_hash()))
}

/// A bounded ring buffer of [`Event`]s with a logical clock.
///
/// Recording is O(1); when the ring is full the oldest event is evicted
/// and counted in [`Tracer::dropped`]. Disabled tracers record nothing.
#[derive(Clone, Debug)]
pub struct Tracer {
    ring: VecDeque<Event>,
    cap: usize,
    lts: u64,
    dropped: u64,
    enabled: bool,
}

/// Default ring capacity — enough for tens of epochs of one protocol's
/// events without mattering at 8192-node sim scale.
pub const DEFAULT_TRACE_CAP: usize = 256;

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_TRACE_CAP)
    }
}

impl Tracer {
    /// A tracer holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Tracer {
            ring: VecDeque::with_capacity(cap.min(1024)),
            cap: cap.max(1),
            lts: 0,
            dropped: 0,
            enabled: true,
        }
    }

    /// Record one event (no-op while disabled).
    pub fn record(&mut self, at_ms: u64, trace_id: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.lts += 1;
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Event {
            lts: self.lts,
            at_ms,
            trace_id,
            kind,
        });
    }

    /// Iterate buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Drain and return all buffered events.
    pub fn take(&mut self) -> Vec<Event> {
        self.ring.drain(..).collect()
    }

    /// Drop all buffered events (logical clock keeps running).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Enable/disable recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// `true` while recording.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Grow/shrink the ring capacity (evicts oldest on shrink).
    pub fn set_capacity(&mut self, cap: usize) {
        self.cap = cap.max(1);
        while self.ring.len() > self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
    }

    /// Order-insensitive digest of the buffered events.
    pub fn digest(&self) -> u64 {
        digest_events(self.ring.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_stable_and_nonzero() {
        assert_eq!(trace_id_for(7, 3), trace_id_for(7, 3));
        assert_ne!(trace_id_for(7, 3), trace_id_for(7, 4));
        assert_ne!(trace_id_for(7, 3), trace_id_for(8, 3));
        assert_ne!(trace_id_for(0, 0), 0);
    }

    #[test]
    fn digest_ignores_order_and_timestamps() {
        let mut a = Tracer::new(16);
        a.record(10, 1, EventKind::Send { kind: "x", to: 2 });
        a.record(20, 1, EventKind::Recv { kind: "x", from: 1 });
        let mut b = Tracer::new(16);
        b.record(99, 1, EventKind::Recv { kind: "x", from: 1 });
        b.record(7, 1, EventKind::Send { kind: "x", to: 2 });
        assert_eq!(a.digest(), b.digest());
        let mut c = Tracer::new(16);
        c.record(10, 2, EventKind::Send { kind: "x", to: 2 });
        c.record(20, 1, EventKind::Recv { kind: "x", from: 1 });
        assert_ne!(a.digest(), c.digest(), "trace id is content");
    }

    #[test]
    fn ring_bounds_and_eviction() {
        let mut t = Tracer::new(3);
        for i in 0..5 {
            t.record(i, 0, EventKind::Timer { token: i });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let lts: Vec<u64> = t.events().map(|e| e.lts).collect();
        assert_eq!(lts, vec![3, 4, 5], "oldest evicted, lts monotone");
        t.set_enabled(false);
        t.record(9, 0, EventKind::Timer { token: 9 });
        assert_eq!(t.len(), 3, "disabled tracer records nothing");
    }
}
