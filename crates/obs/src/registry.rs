//! Metric registry: counters, gauges and histograms with static labels,
//! deterministic ordering, fleet merging and Prometheus-style exposition.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::LogHist;

/// Identity of one metric series: a static name plus up to two static
/// `(label, value)` pairs. Unused label slots stay `("", "")`.
///
/// Keeping everything `&'static str` makes the hot path (one `BTreeMap`
/// probe, no allocation) cheap enough for per-message counting in
/// 8192-node sim runs, and `Ord` on string contents makes every render
/// and merge deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Metric name, e.g. `sent_total`.
    pub name: &'static str,
    /// Up to two label pairs; empty slots are `("", "")`.
    pub labels: [(&'static str, &'static str); 2],
}

impl Key {
    /// A label-free series.
    pub fn new(name: &'static str) -> Self {
        Key {
            name,
            labels: [("", ""); 2],
        }
    }

    /// Attach a label pair in the first free slot (silently ignored when
    /// both slots are taken — two labels are all the stack ever needs).
    pub fn label(mut self, k: &'static str, v: &'static str) -> Self {
        for slot in self.labels.iter_mut() {
            if slot.0.is_empty() {
                *slot = (k, v);
                return self;
            }
        }
        self
    }

    /// `true` when any label slot carries `value`.
    pub fn has_label_value(&self, value: &str) -> bool {
        self.labels.iter().any(|(_, v)| *v == value)
    }

    fn render_labels(&self) -> String {
        let pairs: Vec<String> = self
            .labels
            .iter()
            .filter(|(k, _)| !k.is_empty())
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        if pairs.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", pairs.join(","))
        }
    }

    fn render_labels_with(&self, extra: &str) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .filter(|(k, _)| !k.is_empty())
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        pairs.push(extra.to_string());
        format!("{{{}}}", pairs.join(","))
    }
}

/// A bag of counters, gauges and log2 histograms.
///
/// Per-node registries are merged into fleet registries with
/// [`Registry::merge`] (counters add, gauges take the max, histograms
/// merge element-wise), and layered stacks fold per-layer registries in
/// with [`Registry::merge_labeled`], which stamps a `layer` label on every
/// incoming series so `chord` and `dat` traffic stay distinguishable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    hists: BTreeMap<Key, LogHist>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `n` to a counter (creating it at zero).
    pub fn counter_add(&mut self, key: Key, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Increment a counter by one.
    pub fn counter_inc(&mut self, key: Key) {
        self.counter_add(key, 1);
    }

    /// Current value of a counter series (0 when absent).
    pub fn counter(&self, key: &Key) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum of every counter series named `name`.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Sum of every counter series named `name` that carries `label_value`
    /// in any label slot.
    pub fn counter_with(&self, name: &str, label_value: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name && k.has_label_value(label_value))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, key: Key, v: f64) {
        self.gauges.insert(key, v);
    }

    /// Current value of a gauge series (0.0 when absent).
    pub fn gauge(&self, key: &Key) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, key: Key, v: u64) {
        self.hists.entry(key).or_default().observe(v);
    }

    /// One histogram series, if present.
    pub fn hist(&self, key: &Key) -> Option<&LogHist> {
        self.hists.get(key)
    }

    /// Merge of every histogram series named `name`.
    pub fn hist_sum(&self, name: &str) -> LogHist {
        let mut out = LogHist::new();
        for (_, h) in self.hists.iter().filter(|(k, _)| k.name == name) {
            out.merge(h);
        }
        out
    }

    /// Iterate every counter series in deterministic (sorted) order.
    pub fn counters(&self) -> impl Iterator<Item = (&Key, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// Iterate every histogram series in deterministic (sorted) order.
    pub fn hists(&self) -> impl Iterator<Item = (&Key, &LogHist)> {
        self.hists.iter()
    }

    /// Number of series across all three metric kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    /// `true` when no series exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fold `other` into `self`: counters add, gauges take the max (fleet
    /// merges want "worst/latest of", not a meaningless sum), histograms
    /// merge element-wise. Associative and commutative, identity
    /// [`Registry::new`].
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(*k).or_insert(f64::NEG_INFINITY);
            *g = g.max(*v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(*k).or_default().merge(h);
        }
    }

    /// Like [`Registry::merge`], but stamp `(label, value)` on every
    /// incoming series first (used to tag a layer's metrics when folding a
    /// protocol stack into one registry).
    pub fn merge_labeled(&mut self, other: &Registry, label: &'static str, value: &'static str) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.label(label, value)).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self
                .gauges
                .entry(k.label(label, value))
                .or_insert(f64::NEG_INFINITY);
            *g = g.max(*v);
        }
        for (k, h) in &other.hists {
            self.hists
                .entry(k.label(label, value))
                .or_default()
                .merge(h);
        }
    }

    /// Drop every series.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
    }

    /// Render the registry as Prometheus text exposition. Series are
    /// emitted in sorted order (the map order), so the dump is
    /// deterministic; histograms render cumulative `_bucket{le=…}` series
    /// up to their highest non-empty bucket plus `+Inf`, `_sum` and
    /// `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<(&str, &str)> = None;
        let mut type_line = |out: &mut String, name: &'static str, kind: &'static str| {
            if last_type != Some((name, kind)) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_type = Some((name, kind));
            }
        };
        for (k, v) in &self.counters {
            type_line(&mut out, k.name, "counter");
            let _ = writeln!(out, "{}{} {v}", k.name, k.render_labels());
        }
        for (k, v) in &self.gauges {
            type_line(&mut out, k.name, "gauge");
            let _ = writeln!(out, "{}{} {v}", k.name, k.render_labels());
        }
        for (k, h) in &self.hists {
            type_line(&mut out, k.name, "histogram");
            let mut cum = 0u64;
            for (bound, count) in h.nonzero_buckets() {
                cum += count;
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cum}",
                    k.name,
                    k.render_labels_with(&format!("le=\"{bound}\""))
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                k.name,
                k.render_labels_with("le=\"+Inf\""),
                h.count()
            );
            let _ = writeln!(out, "{}_sum{} {}", k.name, k.render_labels(), h.sum());
            let _ = writeln!(out, "{}_count{} {}", k.name, k.render_labels(), h.count());
        }
        out
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validate a Prometheus text dump: non-empty, every sample line parses
/// (`name{labels} value`), and no series identity (name + label set)
/// appears twice. Returns the number of sample lines.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut seen = std::collections::BTreeSet::new();
    let mut samples = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", ln + 1))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {}: bad sample value {value:?}", ln + 1))?;
        let name = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated label set", ln + 1))?;
                for pair in labels.split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {}: bad label pair {pair:?}", ln + 1))?;
                    if !valid_name(k) {
                        return Err(format!("line {}: bad label name {k:?}", ln + 1));
                    }
                    if !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return Err(format!("line {}: unquoted label value {v:?}", ln + 1));
                    }
                }
                name
            }
            None => series,
        };
        if !valid_name(name) {
            return Err(format!("line {}: bad metric name {name:?}", ln + 1));
        }
        if !seen.insert(series.to_string()) {
            return Err(format!("duplicate series {series:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("empty exposition: no sample lines".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> Registry {
        let mut r = Registry::new();
        r.counter_add(Key::new("sent_total").label("kind", "ping"), 3);
        r.counter_add(Key::new("sent_total").label("kind", "notify"), 2);
        r.counter_inc(Key::new("timeouts_total"));
        r.gauge_set(Key::new("epoch"), 7.0);
        r.observe(Key::new("route_hops"), 3);
        r.observe(Key::new("route_hops"), 9);
        r
    }

    #[test]
    fn counters_and_sums() {
        let r = filled();
        assert_eq!(r.counter_sum("sent_total"), 5);
        assert_eq!(r.counter_with("sent_total", "ping"), 3);
        assert_eq!(r.counter(&Key::new("timeouts_total")), 1);
        assert_eq!(r.counter(&Key::new("missing")), 0);
    }

    #[test]
    fn merge_adds_counters_and_merges_hists() {
        let mut a = filled();
        let b = filled();
        a.merge(&b);
        assert_eq!(a.counter_with("sent_total", "ping"), 6);
        assert_eq!(a.hist_sum("route_hops").count(), 4);
        assert_eq!(a.gauge(&Key::new("epoch")), 7.0);
        // Identity is neutral.
        let mut c = filled();
        c.merge(&Registry::new());
        assert_eq!(c, filled());
    }

    #[test]
    fn merge_labeled_stamps_layer() {
        let mut fleet = Registry::new();
        fleet.merge_labeled(&filled(), "layer", "chord");
        assert_eq!(fleet.counter_with("sent_total", "chord"), 5);
        assert_eq!(fleet.counter_with("sent_total", "ping"), 3);
    }

    #[test]
    fn render_is_valid_and_deterministic() {
        let r = filled();
        let text = r.render_prometheus();
        let n = validate_prometheus(&text).expect("dump must validate");
        assert!(n >= 6, "expected several series, got {n}:\n{text}");
        assert_eq!(text, filled().render_prometheus());
        assert!(text.contains("sent_total{kind=\"ping\"} 3"));
        assert!(text.contains("route_hops_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("just words\n").is_err());
        assert!(
            validate_prometheus("m 1\nm 2\n").is_err(),
            "duplicate series"
        );
        assert!(validate_prometheus("1bad_name 3\n").is_err());
        assert!(validate_prometheus("m{k=unquoted} 3\n").is_err());
        assert_eq!(validate_prometheus("m{k=\"v\"} 3\nm 4\n"), Ok(2));
    }
}
