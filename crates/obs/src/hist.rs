//! Log2-bucketed histograms: constant-size, constant-time, mergeable.

/// Number of buckets: index 0 holds exact zeros, index `i > 0` holds
/// values in `[2^(i-1), 2^i - 1]` — so index 64 tops out at `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram over `u64` samples.
///
/// Observation cost is two array writes; merge is element-wise addition.
/// That makes the merge associative and commutative with [`LogHist::new`]
/// as the identity — the same algebra `AggPartial` requires, so fleet-wide
/// percentiles are just a fold over per-node histograms. Exact `count`,
/// `sum`, `min` and `max` ride along; quantiles are resolved to the upper
/// bound of the containing bucket (clamped to the exact max).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Upper bound (inclusive) of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LogHist {
    /// The empty histogram (merge identity).
    pub fn new() -> Self {
        LogHist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` (element-wise; associative, commutative).
    pub fn merge(&mut self, other: &LogHist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), resolved to the upper bound of the
    /// bucket containing the rank, clamped to the exact observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Iterate `(inclusive_upper_bound, count)` over non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_bound(i), *c))
    }

    /// Raw bucket counts (index 0 holds zeros, index `i > 0` holds
    /// `[2^(i-1), 2^i − 1]`).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64, n: u64) -> LogHist {
        // Tiny xorshift so tests need no RNG dependency.
        let mut h = LogHist::new();
        let mut x = seed | 1;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.observe(x % 10_000);
        }
        h
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn merge_is_associative_and_commutative_with_identity() {
        let (a, b, c) = (sample(3, 40), sample(5, 17), sample(9, 80));
        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        // a ∪ b == b ∪ a
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // identity is neutral on both sides
        let mut ai = a.clone();
        ai.merge(&LogHist::new());
        assert_eq!(ai, a);
        let mut ia = LogHist::new();
        ia.merge(&a);
        assert_eq!(ia, a);
    }

    #[test]
    fn quantiles_and_exact_stats() {
        let mut h = LogHist::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.quantile(0.0), 1);
        assert!(h.quantile(0.5) >= 2 && h.quantile(0.5) <= 3);
        assert_eq!(h.quantile(1.0), 1000);
        let empty = LogHist::new();
        assert_eq!(empty.quantile(0.99), 0);
        assert_eq!(empty.min(), 0);
    }
}
