//! # dat-obs — sans-io observability for the DAT stack
//!
//! The paper's entire evaluation is observational: per-node message
//! distributions (Fig. 8a), imbalance factors (Fig. 8b), branching factors
//! and end-to-end accuracy. This crate is the instrumentation substrate
//! every layer shares:
//!
//! * [`LogHist`] — a fixed-size log2-bucketed histogram. Observing is two
//!   array writes, merging is element-wise addition, so 8192-node sim runs
//!   can afford one per node and fold them into fleet-wide percentiles;
//! * [`Registry`] — counters, gauges and histograms keyed by static metric
//!   names plus up to two static labels. Deterministically ordered, cheap
//!   to merge across nodes, rendered as a Prometheus-style text dump
//!   ([`Registry::render_prometheus`], checked by [`validate_prometheus`]);
//! * [`Tracer`] — a bounded per-node ring buffer of typed [`Event`]s with
//!   logical timestamps and a causal `trace_id`. The trace id is threaded
//!   through `AggPartial`, so one aggregation epoch can be replayed
//!   leaf→root as a tree-shaped [`EpochTrace`]. An order-insensitive
//!   [`digest`](Tracer::digest) makes traces assertable in tests and
//!   comparable across transports (SimNet vs UDP deliver in different
//!   orders; the digest does not care).
//!
//! The crate is dependency-free and sans-io: node identities are plain
//! `u64`s, timestamps are whatever clock the host reports.

#![deny(clippy::unwrap_used)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod hist;
pub mod registry;
pub mod trace;
pub mod transport;

pub use epoch::{EpochTrace, TraceEdge};
pub use hist::LogHist;
pub use registry::{validate_prometheus, Key, Registry};
pub use trace::{digest_events, fnv1a, mix64, trace_id_for, Event, EventKind, Tracer};
pub use transport::{transport_registry, TransportCounters};
