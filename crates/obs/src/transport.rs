//! Shared registry vocabulary for transport-level counters.
//!
//! Every `Actor` host (the blocking UDP reactor, the tokio cluster host)
//! counts the same things: datagrams in/out, decode failures by kind,
//! socket errors by operation, and frames shed at the transport edge.
//! This helper turns one snapshot of those counters into a [`Registry`]
//! with a single, fixed naming scheme, so fleet merges and dashboards
//! never see two spellings of the same series:
//!
//! * `transport_datagrams_total{transport,dir="sent"|"received"}`
//! * `transport_decode_errors_total{transport,kind}`
//! * `transport_socket_errors_total{transport,op="recv"|"send"}`
//! * `engine_shed_total{layer="transport_rx"|"transport_tx"}` — the
//!   transport edge reuses the engine's shed vocabulary, so one
//!   `counter_sum("engine_shed_total")` covers every layer that can
//!   drop under pressure.
//!
//! All series are written even when zero, so a fresh host already
//! exposes the complete vocabulary (scrapes can alert on absence).

use crate::registry::{Key, Registry};

/// One transport's counter snapshot, decoupled from any host type.
#[derive(Clone, Debug, Default)]
pub struct TransportCounters {
    /// Which host produced the snapshot (label value, e.g. `"tokio"`).
    pub transport: &'static str,
    /// Datagrams handed to the kernel.
    pub sent: u64,
    /// Datagrams received and decoded.
    pub received: u64,
    /// Decode failures paired with their wire kind labels; include every
    /// kind the codec distinguishes, zeros too.
    pub decode_errors_by_kind: Vec<(&'static str, u64)>,
    /// Inbound frames dropped at a full transport inbox.
    pub shed_rx: u64,
    /// Outbound frames dropped at a full transport outbox.
    pub shed_tx: u64,
    /// Socket `recv` errors (excluding poll timeouts).
    pub socket_recv_errors: u64,
    /// Socket `send` errors.
    pub socket_send_errors: u64,
}

/// Render one transport snapshot as a registry (see module docs for the
/// naming scheme). Every series is zero-initialized.
pub fn transport_registry(c: &TransportCounters) -> Registry {
    let mut r = Registry::new();
    let key = |name: &'static str| Key::new(name).label("transport", c.transport);
    r.counter_add(
        key("transport_datagrams_total").label("dir", "sent"),
        c.sent,
    );
    r.counter_add(
        key("transport_datagrams_total").label("dir", "received"),
        c.received,
    );
    for &(kind, count) in &c.decode_errors_by_kind {
        r.counter_add(
            key("transport_decode_errors_total").label("kind", kind),
            count,
        );
    }
    r.counter_add(
        key("transport_socket_errors_total").label("op", "recv"),
        c.socket_recv_errors,
    );
    r.counter_add(
        key("transport_socket_errors_total").label("op", "send"),
        c.socket_send_errors,
    );
    r.counter_add(
        Key::new("engine_shed_total").label("layer", "transport_rx"),
        c.shed_rx,
    );
    r.counter_add(
        Key::new("engine_shed_total").label("layer", "transport_tx"),
        c.shed_tx,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_snapshot_exposes_the_full_vocabulary() {
        let reg = transport_registry(&TransportCounters {
            transport: "test",
            decode_errors_by_kind: vec![("truncated", 0), ("bad_magic", 0)],
            ..TransportCounters::default()
        });
        assert_eq!(reg.counter_sum("transport_datagrams_total"), 0);
        assert_eq!(reg.counter_sum("transport_decode_errors_total"), 0);
        assert_eq!(reg.counter_sum("transport_socket_errors_total"), 0);
        assert_eq!(reg.counter_sum("engine_shed_total"), 0);
        let text = reg.render_prometheus();
        let samples = crate::registry::validate_prometheus(&text).expect("parses");
        assert_eq!(samples, 8, "2 dirs + 2 kinds + 2 ops + 2 shed layers");
    }

    #[test]
    fn counts_land_on_the_right_series() {
        let reg = transport_registry(&TransportCounters {
            transport: "test",
            sent: 5,
            received: 3,
            decode_errors_by_kind: vec![("truncated", 2), ("bad_magic", 0)],
            shed_rx: 7,
            shed_tx: 1,
            socket_recv_errors: 4,
            socket_send_errors: 6,
        });
        assert_eq!(reg.counter_with("transport_datagrams_total", "sent"), 5);
        assert_eq!(reg.counter_with("transport_datagrams_total", "received"), 3);
        assert_eq!(
            reg.counter_with("transport_decode_errors_total", "truncated"),
            2
        );
        assert_eq!(reg.counter_with("engine_shed_total", "transport_rx"), 7);
        assert_eq!(reg.counter_with("engine_shed_total", "transport_tx"), 1);
        assert_eq!(reg.counter_with("transport_socket_errors_total", "recv"), 4);
        assert_eq!(reg.counter_with("transport_socket_errors_total", "send"), 6);
    }
}
