//! Criterion bench: per-hop routing decisions — greedy vs balanced parent
//! computation, finger-limit evaluation, and full route walks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dat_chord::{finger_limit, parent_balanced, parent_basic, Id, IdPolicy, IdSpace, StaticRing};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_parent_decision(c: &mut Criterion) {
    let space = IdSpace::new(40);
    let mut rng = SmallRng::seed_from_u64(2);
    let ring = StaticRing::build(space, 4096, IdPolicy::Probed, &mut rng);
    let table = ring.table_of(ring.ids()[1000], 8);
    let d0 = ring.d0();
    let key = Id(999_999_999);
    let mut g = c.benchmark_group("parent_decision");
    g.bench_function("basic", |b| {
        b.iter(|| parent_basic(black_box(&table), black_box(key)));
    });
    g.bench_function("balanced", |b| {
        b.iter(|| parent_balanced(black_box(&table), black_box(key), black_box(d0)));
    });
    g.finish();
}

fn bench_finger_limit(c: &mut Criterion) {
    c.bench_function("finger_limit_g_of_x", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            finger_limit(black_box(x >> 24), black_box(1 << 20))
        });
    });
}

fn bench_full_routes(c: &mut Criterion) {
    let space = IdSpace::new(40);
    let mut rng = SmallRng::seed_from_u64(5);
    let ring = StaticRing::build(space, 4096, IdPolicy::Probed, &mut rng);
    let mut g = c.benchmark_group("finger_route_walk");
    for n_idx in [0usize, 2048] {
        let from = ring.ids()[n_idx];
        g.bench_with_input(BenchmarkId::from_parameter(n_idx), &from, |b, &from| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(0x9E3779B97F4A7C15);
                ring.finger_route(black_box(from), Id(k & space.mask()))
            });
        });
    }
    g.finish();
}

fn bench_successor_lookup(c: &mut Criterion) {
    let space = IdSpace::new(40);
    let mut rng = SmallRng::seed_from_u64(8);
    let ring = StaticRing::build(space, 8192, IdPolicy::Random, &mut rng);
    c.bench_function("static_ring_successor", |b| {
        let mut k = 1u64;
        b.iter(|| {
            k = k.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ring.successor(Id(black_box(k) & space.mask()))
        });
    });
}

criterion_group!(
    benches,
    bench_parent_decision,
    bench_finger_limit,
    bench_full_routes,
    bench_successor_lookup
);
criterion_main!(benches);
