//! Criterion bench: aggregate-partial algebra and end-to-end aggregation
//! rounds in the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dat_chord::{ChordConfig, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use dat_core::{AggPartial, AggregationMode, DatConfig};
use dat_sim::harness::prestabilized_dat;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_partial_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("agg_partial");
    g.bench_function("absorb", |b| {
        let mut p = AggPartial::identity();
        let mut x = 0.5f64;
        b.iter(|| {
            x = (x * 1.1) % 100.0;
            p.absorb(black_box(x));
        });
    });
    g.bench_function("merge_scalar", |b| {
        let a = AggPartial::of(1.0);
        let mut acc = AggPartial::identity();
        b.iter(|| acc.merge(black_box(&a)));
    });
    g.bench_function("merge_histogram_64", |b| {
        let mut a = AggPartial::identity_with_histogram(0.0, 100.0, 64);
        a.absorb(42.0);
        let mut acc = AggPartial::identity_with_histogram(0.0, 100.0, 64);
        b.iter(|| acc.merge(black_box(&a)));
    });
    g.finish();
}

fn bench_epoch_round(c: &mut Criterion) {
    let space = IdSpace::new(32);
    let mut g = c.benchmark_group("sim_epoch_round");
    g.sample_size(10);
    for n in [128usize, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(1);
            let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
            let ccfg = ChordConfig {
                space,
                stabilize_ms: 600_000,
                fix_fingers_ms: 600_000,
                check_pred_ms: 600_000,
                ..ChordConfig::default()
            };
            let dcfg = DatConfig {
                scheme: RoutingScheme::Balanced,
                epoch_ms: 1_000,
                d0_hint: Some(ring.d0()),
                ..DatConfig::default()
            };
            let mut net = prestabilized_dat(&ring, ccfg, dcfg, 1);
            net.set_record_upcalls(false);
            for addr in net.addrs() {
                let node = net.node_mut(addr).unwrap();
                let k = node.register("cpu-usage", AggregationMode::Continuous);
                node.set_local(k, 50.0);
            }
            // One full aggregation epoch per iteration.
            b.iter(|| {
                net.run_for(black_box(1_000));
                net.pending_events()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_partial_merge, bench_epoch_round);
criterion_main!(benches);
