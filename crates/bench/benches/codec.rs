//! Criterion bench: wire codecs — SHA-1, the DAT message codec and the UDP
//! frame codec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dat_chord::{sha1, ChordMsg, Id, NodeAddr, NodeRef};
use dat_core::{AggPartial, DatMsg};
use std::hint::black_box;

fn nr(id: u64) -> NodeRef {
    NodeRef::new(Id(id), NodeAddr(id))
}

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha1::sha1(black_box(&data)));
        });
    }
    g.finish();
}

fn bench_dat_codec(c: &mut Criterion) {
    let mut p = AggPartial::identity_with_histogram(0.0, 100.0, 32);
    for i in 0..100 {
        p.absorb(i as f64);
    }
    let msg = DatMsg::Update {
        key: Id(12345),
        epoch: 99,
        partial: p,
        sender: nr(7),
    };
    let bytes = msg.encode();
    let mut g = c.benchmark_group("dat_msg");
    g.bench_function("encode_update_hist32", |b| {
        b.iter(|| black_box(&msg).encode());
    });
    g.bench_function("decode_update_hist32", |b| {
        b.iter(|| DatMsg::decode(black_box(&bytes)).unwrap());
    });
    g.finish();
}

fn bench_udp_frame(c: &mut Criterion) {
    let msg = ChordMsg::FindSuccessor {
        req: 42,
        key: Id(u64::MAX / 3),
        origin: nr(9),
        hops: 5,
    };
    let frame = dat_rpc::encode(&msg);
    let mut g = c.benchmark_group("udp_frame");
    g.bench_function("encode_find_successor", |b| {
        b.iter(|| dat_rpc::encode(black_box(&msg)));
    });
    g.bench_function("decode_find_successor", |b| {
        b.iter(|| dat_rpc::decode(black_box(&frame)).unwrap());
    });
    let app = ChordMsg::App {
        proto: 1,
        from: nr(3),
        payload: vec![0u8; 1024].into(),
    };
    let app_frame = dat_rpc::encode(&app);
    g.throughput(Throughput::Bytes(app_frame.len() as u64));
    g.bench_function("roundtrip_app_1k", |b| {
        b.iter(|| dat_rpc::decode(&dat_rpc::encode(black_box(&app))).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_sha1, bench_dat_codec, bench_udp_frame);
criterion_main!(benches);
