//! Criterion bench: DAT tree construction cost (basic vs balanced) and
//! ring building under the three identifier policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dat_chord::{Id, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use dat_core::DatTree;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_tree_build(c: &mut Criterion) {
    let space = IdSpace::new(40);
    let mut g = c.benchmark_group("dat_tree_build");
    for n in [256usize, 1024, 8192] {
        let mut rng = SmallRng::seed_from_u64(1);
        let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
        for scheme in [RoutingScheme::Greedy, RoutingScheme::Balanced] {
            g.bench_with_input(BenchmarkId::new(scheme.label(), n), &ring, |b, ring| {
                b.iter(|| DatTree::build(black_box(ring), Id(12345), scheme));
            });
        }
    }
    g.finish();
}

fn bench_ring_build(c: &mut Criterion) {
    let space = IdSpace::new(40);
    let mut g = c.benchmark_group("ring_build");
    g.sample_size(10);
    for policy in [IdPolicy::Random, IdPolicy::Even, IdPolicy::Probed] {
        g.bench_function(BenchmarkId::new(policy.label(), 1024), |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(7);
                StaticRing::build(space, black_box(1024), policy, &mut rng)
            });
        });
    }
    g.finish();
}

fn bench_table_materialisation(c: &mut Criterion) {
    let space = IdSpace::new(40);
    let mut rng = SmallRng::seed_from_u64(3);
    let ring = StaticRing::build(space, 1024, IdPolicy::Probed, &mut rng);
    let id = ring.ids()[500];
    c.bench_function("finger_table_of", |b| {
        b.iter(|| ring.table_of(black_box(id), 8));
    });
}

criterion_group!(
    benches,
    bench_tree_build,
    bench_ring_build,
    bench_table_materialisation
);
criterion_main!(benches);
