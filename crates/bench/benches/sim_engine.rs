//! Criterion bench: the discrete-event engine itself — queue throughput
//! and whole-overlay construction/stabilization cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dat_chord::{ChordConfig, IdPolicy, IdSpace, StaticRing};
use dat_sim::harness::prestabilized_chord;
use dat_sim::{EventQueue, SchedulerKind, SimNet};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    // Timer wheel vs binary heap, same workload: short-horizon delays
    // (the common case — protocol timers and network latencies), and a
    // mixed workload with a far-future tail that exercises the wheel's
    // overflow heap.
    for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
        g.bench_with_input(
            BenchmarkId::new("push_pop_1k", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut q: EventQueue<u64> = EventQueue::with_scheduler(kind);
                    for i in 0..1_000u64 {
                        q.push_after(black_box(i % 97), i);
                    }
                    let mut sum = 0u64;
                    while let Some(e) = q.pop() {
                        sum = sum.wrapping_add(e.event);
                    }
                    sum
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("interleaved_16k", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                // Steady-state schedule: every pop pushes a successor a
                // short hop ahead, plus a 1% far-future tail.
                b.iter(|| {
                    let mut q: EventQueue<u64> = EventQueue::with_scheduler(kind);
                    for i in 0..1_024u64 {
                        q.push_after(i % 127, i);
                    }
                    let mut sum = 0u64;
                    for step in 0..16_384u64 {
                        let Some(e) = q.pop() else { break };
                        sum = sum.wrapping_add(e.event);
                        let delay = if step % 100 == 0 {
                            1 << 38 // far future: overflow territory
                        } else {
                            1 + (e.event % 97)
                        };
                        q.push_after(black_box(delay), e.event);
                    }
                    sum
                });
            },
        );
    }
    g.finish();
}

fn bench_maintenance_by_scheduler(c: &mut Criterion) {
    // One virtual second of n=512 ring maintenance through the whole
    // engine (arena delivery + scheduler), per backend.
    let space = IdSpace::new(32);
    let mut g = c.benchmark_group("maintenance_1s_n512_by_scheduler");
    g.sample_size(10);
    for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
        let mut rng = SmallRng::seed_from_u64(2);
        let ring = StaticRing::build(space, 512, IdPolicy::Probed, &mut rng);
        let cfg = ChordConfig {
            space,
            ..ChordConfig::default()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let book = dat_sim::harness::addr_book(&ring);
                let mut net = SimNet::with_scheduler(2, kind);
                for &id in ring.ids() {
                    let mut node = dat_chord::ChordNode::new(cfg, id, book[&id]);
                    let table = ring.table_of_with(id, cfg.succ_list_len, &|id| book[&id]);
                    let outs = node.start_with_table(table);
                    let addr = node.me().addr;
                    net.add_node(node);
                    net.apply(addr, outs);
                }
                net.set_record_upcalls(false);
                b.iter(|| {
                    net.run_for(black_box(1_000));
                    net.events_processed()
                });
            },
        );
    }
    g.finish();
}

fn bench_prestabilized_build(c: &mut Criterion) {
    let space = IdSpace::new(32);
    let mut g = c.benchmark_group("prestabilized_overlay");
    g.sample_size(10);
    for n in [512usize, 2048] {
        let mut rng = SmallRng::seed_from_u64(1);
        let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
        let cfg = ChordConfig {
            space,
            ..ChordConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(n), &ring, |b, ring| {
            b.iter(|| prestabilized_chord(black_box(ring), cfg, 1).len());
        });
    }
    g.finish();
}

fn bench_maintenance_second(c: &mut Criterion) {
    // Cost of one virtual second of pure ring maintenance at n = 512.
    let space = IdSpace::new(32);
    let mut rng = SmallRng::seed_from_u64(2);
    let ring = StaticRing::build(space, 512, IdPolicy::Probed, &mut rng);
    let cfg = ChordConfig {
        space,
        ..ChordConfig::default()
    };
    c.bench_function("maintenance_1s_n512", |b| {
        let mut net = prestabilized_chord(&ring, cfg, 2);
        net.set_record_upcalls(false);
        b.iter(|| {
            net.run_for(black_box(1_000));
            net.events_processed()
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_prestabilized_build,
    bench_maintenance_second,
    bench_maintenance_by_scheduler
);
criterion_main!(benches);
