//! Criterion bench: the discrete-event engine itself — queue throughput
//! and whole-overlay construction/stabilization cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dat_chord::{ChordConfig, IdPolicy, IdSpace, StaticRing};
use dat_sim::harness::prestabilized_chord;
use dat_sim::EventQueue;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1_000u64 {
                q.push_after(black_box(i % 97), i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.event);
            }
            sum
        });
    });
    g.finish();
}

fn bench_prestabilized_build(c: &mut Criterion) {
    let space = IdSpace::new(32);
    let mut g = c.benchmark_group("prestabilized_overlay");
    g.sample_size(10);
    for n in [512usize, 2048] {
        let mut rng = SmallRng::seed_from_u64(1);
        let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
        let cfg = ChordConfig {
            space,
            ..ChordConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(n), &ring, |b, ring| {
            b.iter(|| prestabilized_chord(black_box(ring), cfg, 1).len());
        });
    }
    g.finish();
}

fn bench_maintenance_second(c: &mut Criterion) {
    // Cost of one virtual second of pure ring maintenance at n = 512.
    let space = IdSpace::new(32);
    let mut rng = SmallRng::seed_from_u64(2);
    let ring = StaticRing::build(space, 512, IdPolicy::Probed, &mut rng);
    let cfg = ChordConfig {
        space,
        ..ChordConfig::default()
    };
    c.bench_function("maintenance_1s_n512", |b| {
        let mut net = prestabilized_chord(&ring, cfg, 2);
        net.set_record_upcalls(false);
        b.iter(|| {
            net.run_for(black_box(1_000));
            net.events_processed()
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_prestabilized_build,
    bench_maintenance_second
);
criterion_main!(benches);
