//! `simbench` — event-engine throughput trajectory, tracked in
//! `BENCH_sim.json`.
//!
//! ```text
//! simbench [--sizes 8192,65536,262144] [--virtual-ms 10000]
//!          [--scheduler wheel|heap|both] [--shards 1,2,4,8]
//!          [--budget-s N] [--out BENCH_sim.json] [--quiet]
//! ```
//!
//! Runs one maintenance epoch per (size, scheduler) pair, ascending by
//! size so the process's peak RSS reflects each size's own footprint, and
//! writes a machine-readable JSON report. `--budget-s` stops the sweep
//! once total wall time exceeds the budget (remaining sizes are recorded
//! as skipped, never silently dropped) — this is what keeps the CI smoke
//! bounded. A 1M-node epoch is the same invocation with
//! `--sizes 1048576 --budget-s 0`; it is documented offline rather than
//! run in CI.
//!
//! `--shards` adds a multi-core sweep per size: each listed shard count
//! drives the `ShardedNet` engine over the same seeded workload. The
//! 1-shard run (inserted automatically if absent) is the baseline: every
//! other shard count must reproduce its digest bit for bit — any
//! divergence is a determinism bug and exits non-zero — and its wall
//! clock is the denominator of `speedup_vs_1shard`. The top-level
//! `cores` field records how much hardware parallelism the host actually
//! had, so a ~1× speedup on a 1-core box reads as expected, not as a
//! regression.

use std::time::Instant;

use dat_sim::queue::SchedulerKind;
use dat_sim::scale::{run_scale, ScaleConfig, ScaleReport};

struct Opts {
    sizes: Vec<usize>,
    virtual_ms: u64,
    schedulers: Vec<SchedulerKind>,
    shards: Vec<usize>,
    budget_s: u64,
    out: String,
    quiet: bool,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        sizes: vec![8_192, 65_536, 262_144],
        virtual_ms: 10_000,
        schedulers: vec![SchedulerKind::Wheel],
        shards: Vec::new(),
        budget_s: 0, // 0 = unbounded
        out: "BENCH_sim.json".into(),
        quiet: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let val = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {arg}");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg {
            "--sizes" => {
                o.sizes = val(&mut i)
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad size `{s}`");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--virtual-ms" => {
                o.virtual_ms = val(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("bad --virtual-ms");
                    std::process::exit(2);
                });
            }
            "--scheduler" => {
                o.schedulers = match val(&mut i).as_str() {
                    "wheel" => vec![SchedulerKind::Wheel],
                    "heap" => vec![SchedulerKind::Heap],
                    "both" => vec![SchedulerKind::Wheel, SchedulerKind::Heap],
                    other => {
                        eprintln!("unknown scheduler `{other}` (wheel|heap|both)");
                        std::process::exit(2);
                    }
                };
            }
            "--shards" => {
                o.shards = val(&mut i)
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad shard count `{s}`");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--budget-s" => {
                o.budget_s = val(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("bad --budget-s");
                    std::process::exit(2);
                });
            }
            "--out" => o.out = val(&mut i),
            "--quiet" => o.quiet = true,
            other => {
                eprintln!("unknown flag `{other}`; see simbench source header");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    o.sizes.sort_unstable();
    o.shards.sort_unstable();
    o.shards.dedup();
    if o.shards.first().is_some_and(|&s| s != 1) {
        // The 1-shard run is both the digest baseline and the speedup
        // denominator; a sweep without it cannot be checked.
        o.shards.insert(0, 1);
    }
    o
}

fn sched_name(k: SchedulerKind) -> &'static str {
    match k {
        SchedulerKind::Wheel => "wheel",
        SchedulerKind::Heap => "heap",
        SchedulerKind::Sharded { .. } => "sharded",
    }
}

fn json_entry(r: &ScaleReport, speedup_vs_1shard: Option<f64>) -> String {
    format!(
        "    {{\"n\": {}, \"scheduler\": \"{}\", \"shards\": {}, \
         \"virtual_ms\": {}, \
         \"build_wall_ms\": {}, \"run_wall_ms\": {}, \"events\": {}, \
         \"events_per_sec\": {:.0}, \"ns_per_event\": {:.1}, \
         \"dropped\": {}, \"clamped\": {}, \"backlog\": {}, \
         \"peak_rss_mib\": {}, \"digest\": \"{:016x}\", \
         \"speedup_vs_1shard\": {}}}",
        r.n,
        if r.shards > 0 {
            "sharded"
        } else {
            sched_name(r.scheduler)
        },
        r.shards,
        r.virtual_ms,
        r.build_wall_ms,
        r.run_wall_ms,
        r.events,
        r.events_per_sec,
        r.ns_per_event,
        r.dropped,
        r.clamped,
        r.backlog,
        match r.peak_rss_mib {
            Some(m) => m.to_string(),
            None => "null".into(),
        },
        r.digest,
        match speedup_vs_1shard {
            Some(s) => format!("{s:.2}"),
            None => "null".into(),
        }
    )
}

fn main() {
    let o = parse_opts();
    let started = Instant::now();
    let mut entries: Vec<String> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    for &n in &o.sizes {
        for &sched in &o.schedulers {
            if o.budget_s > 0 && started.elapsed().as_secs() >= o.budget_s {
                skipped.push(format!(
                    "{{\"n\": {n}, \"scheduler\": \"{}\"}}",
                    sched_name(sched)
                ));
                if !o.quiet {
                    eprintln!("[simbench] budget exhausted; skipping n={n} {sched:?}");
                }
                continue;
            }
            if !o.quiet {
                eprintln!("[simbench] n={n} scheduler={} ...", sched_name(sched));
            }
            let r = run_scale(ScaleConfig {
                n,
                virtual_ms: o.virtual_ms,
                scheduler: sched,
                ..ScaleConfig::default()
            });
            if !o.quiet {
                eprintln!("[simbench]   {}", r.summary());
            }
            if r.clamped > 0 {
                eprintln!(
                    "[simbench] WARNING: {} past-scheduled events clamped at n={n}",
                    r.clamped
                );
            }
            entries.push(json_entry(&r, None));
        }
        let mut base: Option<ScaleReport> = None;
        for &s in &o.shards {
            if o.budget_s > 0 && started.elapsed().as_secs() >= o.budget_s {
                skipped.push(format!("{{\"n\": {n}, \"shards\": {s}}}"));
                if !o.quiet {
                    eprintln!("[simbench] budget exhausted; skipping n={n} shards={s}");
                }
                continue;
            }
            if !o.quiet {
                eprintln!("[simbench] n={n} shards={s} ...");
            }
            let r = run_scale(ScaleConfig {
                n,
                virtual_ms: o.virtual_ms,
                shards: s,
                ..ScaleConfig::default()
            });
            if !o.quiet {
                eprintln!("[simbench]   {}", r.summary());
            }
            if r.clamped > 0 {
                eprintln!(
                    "[simbench] FATAL: {} events clamped at n={n} shards={s} — \
                     the conservative window protocol was violated",
                    r.clamped
                );
                std::process::exit(1);
            }
            let speedup = match &base {
                Some(b) => {
                    if r.digest != b.digest {
                        eprintln!(
                            "[simbench] FATAL: {s}-shard digest {:016x} diverged from \
                             1-shard digest {:016x} at n={n} — determinism bug",
                            r.digest, b.digest
                        );
                        std::process::exit(1);
                    }
                    b.run_wall_ms.max(1) as f64 / r.run_wall_ms.max(1) as f64
                }
                None => 1.0,
            };
            entries.push(json_entry(&r, Some(speedup)));
            if base.is_none() {
                base = Some(r);
            }
        }
    }
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"generated_unix\": {unix_secs},\n  \"cores\": {cores},\n  \
         \"virtual_ms\": {},\n  \
         \"wall_s\": {},\n  \"runs\": [\n{}\n  ],\n  \"skipped\": [{}]\n}}\n",
        o.virtual_ms,
        started.elapsed().as_secs(),
        entries.join(",\n"),
        skipped.join(", ")
    );
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("[simbench] cannot write {}: {e}", o.out);
        std::process::exit(1);
    }
    if !o.quiet {
        eprintln!("[simbench] wrote {} ({} runs)", o.out, entries.len());
    }
    println!("{json}");
}
