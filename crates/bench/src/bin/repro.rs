//! `repro` — regenerate every figure/table of the paper.
//!
//! ```text
//! repro [--check] [--quick] [--metrics] <experiment>
//!
//! experiments:
//!   fig2 fig5     the 16-node worked example of Figs. 2 and 5
//!   fig7a fig7b   tree properties vs network size (§5.2)
//!   fig8a fig8b   message-load distribution / imbalance factor (§5.3)
//!   fig9          accuracy of Grid resource monitoring (§5.4)
//!   heights       §3.3/§3.5 tree-height claims
//!   churn         implicit vs explicit maintenance overhead
//!   crosscheck    live protocol vs static analysis (§5.1)
//!   maan          MAAN hop-complexity claims (§2.2)
//!   ablation      design-choice sweeps (hold window, child TTL)
//!   gossip        push-sum baseline vs DAT message cost
//!   wan           wide-area latency/loss robustness (§7 future work)
//!   partition     partition/heal fault injection (ring + aggregate recovery)
//!   degradation   completeness under a randomized churn soak (self-healing)
//!   all           everything above
//! ```
//!
//! `--check` exits non-zero if any qualitative claim of the paper fails;
//! `--quick` shrinks sizes for fast smoke runs; `--scale` extends the
//! size sweeps past the paper's 8192-node ceiling (fig7/heights to
//! 32768, fig8b to 16384) to exercise the million-node event engine;
//! `--metrics` additionally dumps the fleet-merged Prometheus exposition
//! of the run (where the experiment supports it) and fails the check if
//! the dump does not parse.

use dat_bench::experiments::{
    ablation, churn, crosscheck, degradation, fig25, fig7, fig8, fig9, gossip_exp, heights,
    maan_exp, partition, wan,
};

struct Opts {
    check: bool,
    quick: bool,
    scale: bool,
    metrics: bool,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let quick = args.iter().any(|a| a == "--quick");
    let scale = args.iter().any(|a| a == "--scale");
    let metrics = args.iter().any(|a| a == "--metrics");
    args.retain(|a| !a.starts_with("--"));
    let what = args.first().map(String::as_str).unwrap_or("all");
    if quick && scale {
        eprintln!("--quick and --scale are mutually exclusive");
        std::process::exit(2);
    }
    let opts = Opts {
        check,
        quick,
        scale,
        metrics,
    };

    let mut violations: Vec<String> = Vec::new();
    match what {
        "fig2" | "fig5" | "fig25" => violations.extend(run_fig25()),
        "fig7a" | "fig7b" | "fig7" => violations.extend(run_fig7(&opts, what)),
        "fig8a" => violations.extend(run_fig8a(&opts)),
        "fig8b" => violations.extend(run_fig8b(&opts)),
        "fig8" => {
            violations.extend(run_fig8a(&opts));
            violations.extend(run_fig8b(&opts));
        }
        "fig9" => violations.extend(run_fig9(&opts)),
        "heights" => violations.extend(run_heights(&opts)),
        "churn" => violations.extend(run_churn(&opts)),
        "crosscheck" => violations.extend(run_crosscheck(&opts)),
        "maan" => violations.extend(run_maan(&opts)),
        "ablation" => violations.extend(run_ablation(&opts)),
        "gossip" => violations.extend(run_gossip(&opts)),
        "wan" => violations.extend(run_wan(&opts)),
        "partition" => violations.extend(run_partition(&opts)),
        "degradation" => violations.extend(run_degradation(&opts)),
        "all" => {
            violations.extend(run_fig25());
            violations.extend(run_fig7(&opts, "fig7"));
            violations.extend(run_fig8a(&opts));
            violations.extend(run_fig8b(&opts));
            violations.extend(run_fig9(&opts));
            violations.extend(run_heights(&opts));
            violations.extend(run_churn(&opts));
            violations.extend(run_crosscheck(&opts));
            violations.extend(run_maan(&opts));
            violations.extend(run_ablation(&opts));
            violations.extend(run_gossip(&opts));
            violations.extend(run_wan(&opts));
            violations.extend(run_partition(&opts));
            violations.extend(run_degradation(&opts));
        }
        other => {
            eprintln!("unknown experiment `{other}`; see `repro` source header");
            std::process::exit(2);
        }
    }

    if !violations.is_empty() {
        eprintln!("\nqualitative checks FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        if opts.check {
            std::process::exit(1);
        }
    } else if opts.check {
        println!("\nall qualitative checks passed");
    }
}

fn run_fig7(o: &Opts, what: &str) -> Vec<String> {
    let (max_n, seeds, keys) = if o.quick {
        (512, 2, 2)
    } else if o.scale {
        (32_768, 3, 3)
    } else {
        (8192, 3, 3)
    };
    eprintln!("[fig7] building trees up to n = {max_n} ...");
    let fig = fig7::run(max_n, seeds, keys);
    if what != "fig7b" {
        fig.table_a().print();
    }
    if what != "fig7a" {
        fig.table_b().print();
    }
    fig.check()
}

fn run_fig8a(o: &Opts) -> Vec<String> {
    let n = if o.quick { 128 } else { 512 };
    eprintln!("[fig8a] simulating {n}-node aggregation rounds ...");
    let fig = fig8::run_a(n, 0xF18A);
    fig.table().print();
    println!(
        "max load: centralized {}, basic {}, balanced {}  (paper @512: 511 / 24 / 4)",
        fig.max_of(fig8::Scheme::Centralized),
        fig.max_of(fig8::Scheme::Basic),
        fig.max_of(fig8::Scheme::Balanced)
    );
    let mut bad = fig.check();
    if o.metrics {
        let snap_n = n.min(128);
        eprintln!("[fig8a] fleet Prometheus snapshot ({snap_n} nodes) ...");
        let text = fig8::prometheus_snapshot(snap_n, 0xF18A);
        match dat_obs::validate_prometheus(&text) {
            Ok(samples) => {
                print!("{text}");
                println!("# fleet dump: {samples} samples, parses clean");
            }
            Err(e) => bad.push(format!("fleet Prometheus dump invalid: {e}")),
        }
    }
    bad
}

fn run_fig8b(o: &Opts) -> Vec<String> {
    let mut sizes: Vec<usize> = if o.quick {
        vec![100, 200, 400]
    } else {
        (1..=10).map(|i| i * 100).collect()
    };
    if o.scale {
        // Past the paper's ceiling: the load-balance claims must hold as
        // the engine scales, not just at the published sizes.
        sizes.extend([2048, 8192, 16_384]);
    }
    eprintln!("[fig8b] imbalance sweep over {sizes:?} ...");
    let fig = fig8::run_b(&sizes, 0xF18B);
    fig.table().print();
    fig.check()
}

fn run_fig9(o: &Opts) -> Vec<String> {
    let (n, dur, epoch) = if o.quick {
        (128, 1200, 10)
    } else {
        (512, 7200, 10)
    };
    eprintln!("[fig9] {n}-node Grid, {dur}s trace, {epoch}s epochs ...");
    let fig = fig9::run(n, dur, epoch, 0xF19);
    fig.table_series().print();
    fig.table_scatter().print();
    fig.check()
}

fn run_heights(o: &Opts) -> Vec<String> {
    let max_n = if o.quick {
        1024
    } else if o.scale {
        32_768
    } else {
        8192
    };
    eprintln!("[heights] measuring up to n = {max_n} ...");
    let h = heights::run(max_n, 3);
    h.table().print();
    h.check()
}

fn run_churn(o: &Opts) -> Vec<String> {
    let (n, dur) = if o.quick { (64, 20_000) } else { (256, 60_000) };
    eprintln!("[churn] {n} nodes, {}s of churn ...", dur / 1000);
    let c = churn::run(n, 1_000, dur, 0xC0);
    c.table().print();
    c.check()
}

fn run_crosscheck(o: &Opts) -> Vec<String> {
    let sizes: Vec<usize> = if o.quick {
        vec![64, 128]
    } else {
        vec![64, 256, 512]
    };
    eprintln!("[crosscheck] live protocol vs analysis at {sizes:?} ...");
    let c = crosscheck::run(&sizes, 0xCC);
    c.table().print();
    c.check()
}

fn run_maan(o: &Opts) -> Vec<String> {
    let sizes: Vec<usize> = if o.quick {
        vec![64, 256]
    } else {
        vec![64, 256, 1024]
    };
    eprintln!("[maan] complexity sweep over {sizes:?} ...");
    let e = maan_exp::run(&sizes, 0x3A);
    e.table().print();
    e.check()
}

fn run_ablation(o: &Opts) -> Vec<String> {
    let n = if o.quick { 48 } else { 128 };
    eprintln!("[ablation] hold window + child TTL sweeps at n = {n} ...");
    let a = ablation::run(n, 0xAB);
    let (th, tt) = a.tables();
    th.print();
    tt.print();
    a.check()
}

fn run_gossip(o: &Opts) -> Vec<String> {
    let sizes: Vec<usize> = if o.quick {
        vec![64, 128]
    } else {
        vec![64, 256, 512]
    };
    eprintln!("[gossip] push-sum convergence over {sizes:?} ...");
    let e = gossip_exp::run(&sizes, 0x905);
    e.table().print();
    e.check()
}

fn run_wan(o: &Opts) -> Vec<String> {
    let n = if o.quick { 48 } else { 128 };
    eprintln!("[wan] latency/loss sweep at n = {n} ...");
    let w = wan::run(n, 0x3A9);
    w.table().print();
    w.check()
}

fn run_partition(o: &Opts) -> Vec<String> {
    let n = if o.quick { 64 } else { 256 };
    eprintln!("[partition] 3:1 split/heal at n = {n} ...");
    let p = partition::run(n, 0xDA7);
    p.table().print();
    match (p.reconverged_at_s, p.recovered_at_s) {
        (Some(ring), Some(agg)) => println!(
            "ring re-unified {} s after heal; aggregate back within 1% after {} s  (plan digest {:#018x})",
            ring - partition::HEAL_AT_MS / 1_000,
            agg - partition::HEAL_AT_MS / 1_000,
            p.plan_digest
        ),
        _ => println!("no full recovery observed within the run"),
    }
    p.check()
}

fn run_degradation(o: &Opts) -> Vec<String> {
    let n = if o.quick { 48 } else { 128 };
    eprintln!("[degradation] randomized churn soak at n = {n} ...");
    let d = degradation::run(n, 0x50AC);
    d.table().print();
    d.health_table().print();
    println!(
        "min completeness during churn {:.3}; recovered in {:?} epochs; \
         root failover {:?} ms with {:?} contributors  (seed {}, digest {:#018x})",
        d.outcome.min_ratio_during_churn,
        d.outcome.recovery_epochs,
        d.outcome.failover_delay_ms,
        d.outcome.failover_contributors,
        d.outcome.seed,
        d.outcome.digest
    );
    d.check()
}

fn run_fig25() -> Vec<String> {
    eprintln!("[fig2/fig5] 16-node worked example ...");
    let f = fig25::run();
    f.table().print();
    let (basic_dot, balanced_dot) = f.dot();
    let _ = std::fs::write("fig2_basic.dot", &basic_dot);
    let _ = std::fs::write("fig5_balanced.dot", &balanced_dot);
    println!("(DOT written to fig2_basic.dot / fig5_balanced.dot)");
    f.check()
}
