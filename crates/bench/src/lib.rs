//! # dat-bench — experiment harness for the DAT paper reproduction
//!
//! One module per figure/table of the paper's evaluation (§5), each with a
//! `run(...)` entry point, markdown table rendering, and a `check()`
//! returning qualitative violations (used both by `repro --check` and the
//! test suite as regression guards on the paper's claims):
//!
//! | module | paper result |
//! |--------|--------------|
//! | [`experiments::fig7`] | tree properties (max/avg branching) vs size |
//! | [`experiments::fig8`] | message distribution & imbalance factor |
//! | [`experiments::fig9`] | accuracy of trace aggregation, 512 nodes |
//! | [`experiments::heights`] | §3.3/§3.5 height claims |
//! | [`experiments::churn`] | implicit vs explicit maintenance overhead |
//! | [`experiments::crosscheck`] | live protocol ≡ static analysis (§5.1) |
//!
//! Run everything via the `repro` binary:
//! `cargo run --release -p dat-bench --bin repro -- all`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

pub use table::Table;
