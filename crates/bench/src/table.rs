//! Minimal fixed-width table rendering for experiment output.

/// A printable experiment table: header row plus data rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (printed above).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            s
        };
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.title));
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// Format a float compactly.
pub fn f(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v == v.trunc() && v.abs() < 1e6 {
        format!("{v:.0}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["n", "value"]);
        t.row(vec!["16".into(), "4.00".into()]);
        t.row(vec!["8192".into(), "13.10".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| n    | value |"));
        assert!(md.contains("| 8192 | 13.10 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(4.0), "4");
        assert_eq!(f(2.34567), "2.35");
        assert_eq!(f(512.3), "512.3");
        assert_eq!(f(f64::NAN), "-");
    }
}
