//! Wide-area robustness — the paper's "continuing efforts" experiment.
//!
//! §7 suggests testing the DAT prototype "in a wide-area environment such
//! as the PlanetLab or the DETER testbed". We simulate that environment:
//! log-normal WAN latencies and i.i.d. packet loss, then measure how the
//! continuous balanced-DAT aggregation degrades — coverage (fraction of
//! nodes reflected in the root's report) and report availability as loss
//! climbs. The qualitative expectation: graceful degradation (soft-state
//! children expire and re-appear; no structural repair is ever needed).

use dat_chord::{ChordConfig, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use dat_core::{AggregationMode, DatConfig, DatEvent, StackNode};
use dat_sim::harness::{addr_book, prestabilized_dat};
use dat_sim::{LatencyModel, LossModel, SimNet};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::table::{f, Table};

/// One measured condition.
#[derive(Clone, Copy, Debug)]
pub struct WanRow {
    /// Packet-loss probability.
    pub loss: f64,
    /// Median one-way latency (ms).
    pub median_latency_ms: f64,
    /// Mean coverage of root reports (contributing nodes / n), steady state.
    pub coverage: f64,
    /// Fraction of epochs that produced a root report at all.
    pub report_rate: f64,
    /// Fleet-wide request timeouts over the whole run (Chord maintenance
    /// and lookups — DAT updates are unacked by design).
    pub timeouts: u64,
    /// Fleet-wide datagram retransmissions over the whole run.
    pub retransmits: u64,
    /// Fleet-wide undecodable payloads dropped over the whole run.
    pub dropped: u64,
    /// Fleet-wide phi-accrual suspicion transitions (Healthy → Suspect) —
    /// loss-proportional on a WAN, since every lost probe stretches an
    /// inter-arrival the detector has learned to expect shorter.
    pub suspects: u64,
    /// Fleet-wide payloads shed by the bounded engine inboxes. Zero here
    /// (the WAN sweep runs without an inbox policy); the column keeps the
    /// table aligned with the soak's transport-health reporting.
    pub shed: u64,
}

/// Experiment output.
pub struct Wan {
    /// Network size.
    pub n: usize,
    /// Rows across loss rates.
    pub rows: Vec<WanRow>,
}

/// Sweep packet loss at PlanetLab-like latencies.
pub fn run(n: usize, seed: u64) -> Wan {
    let rows = [0.0, 0.01, 0.05, 0.10, 0.20]
        .iter()
        .map(|&loss| run_one(n, loss, seed))
        .collect();
    Wan { n, rows }
}

fn run_one(n: usize, loss: f64, seed: u64) -> WanRow {
    let space = IdSpace::new(32);
    let mut rng = SmallRng::seed_from_u64(seed);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 5_000,
        fix_fingers_ms: 2_500,
        check_pred_ms: 5_000,
        req_timeout_ms: 4_000,
        ..ChordConfig::default()
    };
    let median = 80.0;
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 10_000,
        // WAN tails: give the cascade a window an order of magnitude above
        // the median one-way latency.
        hold_ms: 2_000,
        // Bridge up to two consecutive lost updates per child; re-parent
        // duplicates are bounded by the repeated prune notices instead.
        child_ttl_epochs: 3,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net: SimNet<StackNode> = prestabilized_dat(&ring, ccfg, dcfg, seed);
    net.set_latency(LatencyModel::LogNormal {
        median_ms: median,
        sigma: 0.6,
    });
    net.set_loss(LossModel::new(loss));
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let key = dat_chord::hash_to_id(space, b"cpu-usage");
    for &id in ring.ids() {
        let node = net.node_mut(book[&id]).unwrap();
        let k = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(k, 33.0);
    }
    let root = book[&ring.successor(key)];
    // Warm-up, then observe 20 epochs and drain the root's reports once
    // (each report carries its epoch index, so the rate is the number of
    // distinct reported epochs over the observation span).
    net.run_for(30_000);
    let first_epoch = net
        .node_mut(root)
        .map(|r| {
            let _ = r.take_events();
            r.epoch()
        })
        .unwrap_or(0);
    let epochs = 20u64;
    net.run_for(epochs * 10_000 + 5_000);
    let mut seen = std::collections::BTreeMap::new();
    if let Some(r) = net.node_mut(root) {
        for e in r.take_events() {
            if let DatEvent::Report {
                key: k,
                epoch,
                partial,
                ..
            } = e
            {
                if k == key && epoch > first_epoch {
                    seen.insert(epoch, partial.count);
                }
            }
        }
    }
    let reports = seen.len() as u64;
    let covered: f64 = seen.values().map(|&c| c as f64 / n as f64).sum();
    // Loss-proportional retry pressure, read off the merged registry (the
    // counters were always kept per node; now they get reported).
    let fleet = dat_sim::fleet_registry(&net);
    WanRow {
        loss,
        median_latency_ms: median,
        timeouts: fleet.counter_sum("timeouts_total"),
        retransmits: fleet.counter_sum("retransmits_total"),
        dropped: fleet.counter_sum("dropped_total"),
        suspects: fleet.counter_sum("suspects_total"),
        shed: fleet.counter_sum("engine_shed_total"),
        coverage: if reports == 0 {
            0.0
        } else {
            covered / reports as f64
        },
        report_rate: (reports as f64 / epochs as f64).min(1.0),
    }
}

impl Wan {
    /// Degradation table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "WAN robustness — log-normal latency, loss sweep (n = {})",
                self.n
            ),
            &[
                "loss",
                "median RTT/2 (ms)",
                "coverage",
                "report rate",
                "timeouts",
                "retransmits",
                "dropped",
                "suspects",
                "shed",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                format!("{:.0}%", r.loss * 100.0),
                f(r.median_latency_ms),
                format!("{:.3}", r.coverage),
                format!("{:.2}", r.report_rate),
                r.timeouts.to_string(),
                r.retransmits.to_string(),
                r.dropped.to_string(),
                r.suspects.to_string(),
                r.shed.to_string(),
            ]);
        }
        t
    }

    /// Qualitative checks: lossless WAN ≈ full coverage; graceful (not
    /// cliff-edge) degradation under loss.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let lossless = &self.rows[0];
        if lossless.coverage < 0.99 {
            bad.push(format!(
                "lossless WAN coverage {:.3} < 0.99",
                lossless.coverage
            ));
        }
        for r in &self.rows {
            if r.coverage > 1.1 {
                bad.push(format!(
                    "coverage {:.3} at {:.0}% loss — duplicate counting",
                    r.coverage,
                    r.loss * 100.0
                ));
            }
            if r.loss <= 0.05 && r.coverage < 0.85 {
                bad.push(format!(
                    "coverage {:.3} at {:.0}% loss — not graceful",
                    r.coverage,
                    r.loss * 100.0
                ));
            }
            if r.report_rate < 0.8 {
                bad.push(format!(
                    "report rate {:.2} at {:.0}% loss",
                    r.report_rate,
                    r.loss * 100.0
                ));
            }
        }
        // Updates carry no acks/retransmissions (like the paper's UDP
        // prototype). Soft-state TTLs bridge isolated losses, so coverage
        // stays near 1 through ~10% loss; at 20% i.i.d. loss the failure
        // detector itself starts flapping (two consecutive lost probes) and
        // the tree thrashes — an unacked protocol needs retransmissions at
        // that point, which is beyond the paper's design. We only require
        // the system to keep producing partial reports rather than halting.
        if let Some(last) = self.rows.last() {
            if last.coverage < 0.08 {
                bad.push(format!(
                    "coverage collapsed to {:.3} at {:.0}% loss",
                    last.coverage,
                    last.loss * 100.0
                ));
            }
            if last.coverage > 1.1 {
                bad.push(format!(
                    "coverage {:.3} > 1 at {:.0}% loss — duplicate counting",
                    last.coverage,
                    last.loss * 100.0
                ));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wan_degrades_gracefully() {
        let w = run(48, 11);
        let bad = w.check();
        assert!(bad.is_empty(), "{bad:?}");
        assert!(w.table().to_markdown().contains("retransmits"));
        // Retry pressure grows with loss. (Even the lossless run
        // retransmits a little: log-normal latency tails overshoot the
        // adaptive RTO — so compare, don't expect zero.)
        assert!(
            w.rows.last().unwrap().retransmits > w.rows[0].retransmits,
            "20% loss did not raise retransmissions over lossless"
        );
        // Lossless coverage is essentially exact; lossy runs may wobble a
        // few percent either way (transient double counting while subtrees
        // re-parent), so compare with tolerance.
        assert!(w.rows[0].coverage + 0.05 >= w.rows.last().unwrap().coverage);
    }
}
