//! MAAN complexity (§2.2 claims) — supplementary experiment.
//!
//! The indexing substrate's costs underpin the whole P-GMA story, so we
//! verify them empirically:
//!
//! * registration of an `m`-attribute resource costs `O(m log n)` routing
//!   hops;
//! * a single-attribute range query costs `O(log n + k)` hops where `k` is
//!   the number of responsible nodes — i.e. it scales with the query's
//!   *selectivity*, not with `n` alone;
//! * the multi-attribute dominated strategy costs `O(log n + n·s_min)`.

use dat_chord::{IdPolicy, IdSpace, StaticRing};
use dat_maan::{AttrSchema, MaanNetwork, Resource};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::table::{f, Table};

/// One measured network size.
#[derive(Clone, Copy, Debug)]
pub struct MaanRow {
    /// Network size.
    pub n: usize,
    /// log2(n) reference.
    pub log2n: f64,
    /// Mean routing hops per attribute registration.
    pub reg_hops_per_attr: f64,
    /// Mean routing hops of a 1%-selectivity range query.
    pub narrow_query_hops: f64,
    /// Mean nodes visited by a 25%-selectivity range query.
    pub wide_query_visits: f64,
    /// Expected responsible nodes for the wide query (`n × s`).
    pub wide_expected: f64,
}

/// Experiment output.
pub struct MaanExp {
    /// Per-size rows.
    pub rows: Vec<MaanRow>,
}

/// Run the MAAN complexity sweep.
pub fn run(sizes: &[usize], seed: u64) -> MaanExp {
    let space = IdSpace::new(32);
    let mut rows = Vec::new();
    for &n in sizes {
        let mut rng = SmallRng::seed_from_u64(seed + n as u64);
        let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
        let schemas = vec![
            AttrSchema::numeric("cpu-usage", 0.0, 100.0),
            AttrSchema::numeric("cpu-speed", 0.0, 8.0),
            AttrSchema::keyword("os"),
        ];
        let mut net = MaanNetwork::new(ring, schemas);
        let origins: Vec<_> = net.ring().ids().to_vec();
        // Register 200 resources from random origins.
        let mut reg_hops = 0u64;
        let mut reg_attrs = 0u64;
        for i in 0..200u64 {
            let origin = origins[rng.random_range(0..origins.len())];
            let r = Resource::new(&format!("m{i}"))
                .with("cpu-usage", rng.random::<f64>() * 100.0)
                .with("cpu-speed", rng.random::<f64>() * 8.0)
                .with("os", "linux");
            let st = net.register(origin, &r);
            reg_hops += st.routing_hops;
            reg_attrs += 3;
        }
        // Narrow (1%) and wide (25%) range queries from random origins.
        let mut narrow_hops = 0u64;
        let mut wide_visits = 0u64;
        let trials = 20;
        for _ in 0..trials {
            let origin = origins[rng.random_range(0..origins.len())];
            let lo = rng.random::<f64>() * 99.0;
            let (_, st) = net.range_query(origin, "cpu-usage", lo, lo + 1.0);
            narrow_hops += st.routing_hops + st.visited_nodes;
            let lo = rng.random::<f64>() * 75.0;
            let (_, st) = net.range_query(origin, "cpu-usage", lo, lo + 25.0);
            wide_visits += st.visited_nodes;
        }
        rows.push(MaanRow {
            n,
            log2n: (n as f64).log2(),
            reg_hops_per_attr: reg_hops as f64 / reg_attrs as f64,
            narrow_query_hops: narrow_hops as f64 / trials as f64,
            wide_query_visits: wide_visits as f64 / trials as f64,
            wide_expected: n as f64 * 0.25,
        });
    }
    MaanExp { rows }
}

impl MaanExp {
    /// Complexity table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "MAAN complexity (§2.2): registration O(m log n), range query O(log n + k)",
            &[
                "n",
                "log2(n)",
                "reg hops/attr",
                "1% query hops",
                "25% query visits",
                "expected k=n/4",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.n.to_string(),
                f(r.log2n),
                f(r.reg_hops_per_attr),
                f(r.narrow_query_hops),
                f(r.wide_query_visits),
                f(r.wide_expected),
            ]);
        }
        t
    }

    /// Qualitative checks.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for r in &self.rows {
            // Registration hops scale like log n (generous band).
            if r.reg_hops_per_attr > 2.0 * r.log2n + 2.0 {
                bad.push(format!(
                    "registration {} hops/attr at n={} (log2 n = {})",
                    f(r.reg_hops_per_attr),
                    r.n,
                    f(r.log2n)
                ));
            }
            // Wide-range visits track n·s within 2x.
            if r.wide_query_visits > 2.0 * r.wide_expected + 8.0
                || r.wide_query_visits < 0.4 * r.wide_expected
            {
                bad.push(format!(
                    "25% query visited {} nodes at n={} (expected ≈{})",
                    f(r.wide_query_visits),
                    r.n,
                    f(r.wide_expected)
                ));
            }
        }
        // Narrow queries must not scale linearly with n.
        if self.rows.len() >= 2 {
            let first = &self.rows[0];
            let last = &self.rows[self.rows.len() - 1];
            let growth = last.narrow_query_hops / first.narrow_query_hops.max(1.0);
            let size_growth = last.n as f64 / first.n as f64;
            if growth > size_growth / 2.0 {
                bad.push(format!(
                    "narrow-query hops grew {growth:.1}x over a {size_growth:.0}x size increase"
                ));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_bands_hold() {
        let e = run(&[64, 256], 17);
        let bad = e.check();
        assert!(bad.is_empty(), "{bad:?}");
        assert!(e.table().to_markdown().contains("reg hops/attr"));
    }
}
