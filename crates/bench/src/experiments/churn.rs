//! Churn overhead: implicit DAT vs explicit-membership trees.
//!
//! The paper's abstract claims the DAT scheme "has very low overhead
//! during node arrival and departure" *because* it maintains no explicit
//! parent-child membership — the Chord stabilization both schemes already
//! pay for is all the repair the implicit tree ever needs (§2.3). This
//! experiment runs the same churn schedule against (a) a DAT overlay and
//! (b) the explicit-membership tree of [`dat_core::explicit`], and counts
//! *tree-maintenance* messages (join/adopt/heartbeat/leave) separately
//! from ring maintenance and aggregation payload.

use dat_chord::{ChordConfig, IdPolicy, IdSpace, NodeAddr, RoutingScheme, StaticRing};
use dat_core::{
    AggregationMode, DatConfig, DatProtocol, ExplicitConfig, ExplicitProtocol, StackNode,
};
use dat_sim::harness::{addr_book, prestabilized_dat, prestabilized_explicit};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::table::{f, Table};

/// Per-scheme churn accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChurnCosts {
    /// Tree *membership repair* messages sent (joins/adoptions/leave
    /// notices/re-join storms). Zero by construction for implicit DATs —
    /// the paper's central claim.
    pub tree_maintenance: u64,
    /// Tree liveness probing (DAT parent pings; explicit heartbeats+acks).
    pub liveness: u64,
    /// Chord ring maintenance messages sent (both schemes pay these).
    pub ring_maintenance: u64,
    /// Aggregation payload messages sent.
    pub payload: u64,
}

/// Experiment output.
pub struct Churn {
    /// Network size at start.
    pub n: usize,
    /// Number of leave events injected.
    pub leaves: u64,
    /// Number of join events injected.
    pub joins: u64,
    /// Virtual duration of the churn phase, ms.
    pub duration_ms: u64,
    /// Costs of the implicit (DAT) scheme.
    pub dat: ChurnCosts,
    /// Costs of the explicit-membership scheme.
    pub explicit: ChurnCosts,
    /// Whether the DAT root still produced reports after churn.
    pub dat_reports_after_churn: bool,
}

const BITS: u8 = 32;
const RING_KINDS: [&str; 11] = [
    "find_successor",
    "found_successor",
    "get_neighbors",
    "neighbors",
    "notify",
    "ping",
    "pong",
    "probe_join",
    "probe_join_reply",
    "leave_to_pred",
    "leave_to_succ",
];
const EXP_MEMBERSHIP_KINDS: [&str; 3] = ["exp_join_tree", "exp_adopt", "exp_leave_tree"];
const EXP_LIVENESS_KINDS: [&str; 2] = ["exp_heartbeat", "exp_heartbeat_ack"];

/// Run the churn comparison: `n` initial nodes, one churn event (alternate
/// graceful leave / fresh join) every `event_gap_ms` for `duration_ms`.
pub fn run(n: usize, event_gap_ms: u64, duration_ms: u64, seed: u64) -> Churn {
    let space = IdSpace::new(BITS);
    let mut rng = SmallRng::seed_from_u64(seed);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 2_000,
        fix_fingers_ms: 1_000,
        check_pred_ms: 2_000,
        req_timeout_ms: 3_000,
        ..ChordConfig::default()
    };
    let key = dat_chord::hash_to_id(space, b"cpu-usage");
    let book = addr_book(&ring);
    let root_id = ring.successor(key);
    let root_addr = book[&root_id];

    // ---- DAT side -------------------------------------------------------
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        ..DatConfig::default()
    };
    let mut dat_net = prestabilized_dat(&ring, ccfg, dcfg, seed);
    dat_net.set_record_upcalls(false);
    for addr in dat_net.addrs() {
        let node = dat_net.node_mut(addr).unwrap();
        let k = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(k, 25.0);
    }
    dat_net.run_for(3_000); // warm-up
    for addr in dat_net.addrs() {
        dat_net.node_mut(addr).unwrap().reset_metrics();
    }

    // ---- explicit side ---------------------------------------------------
    let ecfg = ExplicitConfig {
        epoch_ms: 1_000,
        heartbeat_ms: 1_000,
        ..ExplicitConfig::default()
    };
    let mut exp_net = prestabilized_explicit(&ring, ccfg, ecfg, key, seed);
    exp_net.set_record_upcalls(false);
    for addr in exp_net.addrs() {
        exp_net.node_mut(addr).unwrap().exp_set_local(25.0);
    }
    exp_net.run_for(3_000); // warm-up: tree forms
    for addr in exp_net.addrs() {
        exp_net.node_mut(addr).unwrap().reset_metrics();
    }

    // ---- identical churn schedule ----------------------------------------
    let mut next_addr = n as u64;
    let mut leaves = 0u64;
    let mut joins = 0u64;
    let mut rng_events = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut elapsed = 0u64;
    let mut leave_next = true;
    while elapsed < duration_ms {
        dat_net.run_for(event_gap_ms);
        exp_net.run_for(event_gap_ms);
        elapsed += event_gap_ms;
        if leave_next {
            // Pick a live non-root node present in both networks.
            let candidates: Vec<NodeAddr> = dat_net
                .addrs()
                .into_iter()
                .filter(|&a| a != root_addr && exp_net.node(a).is_some())
                .collect();
            if candidates.len() > 4 {
                let victim = candidates[rng_events.random_range(0..candidates.len())];
                dat_net.with_node(victim, |node| ((), node.leave()));
                exp_net.with_node(victim, |node| ((), node.leave()));
                leaves += 1;
            }
        } else {
            // A fresh node joins both networks through the root.
            let id = space.random(&mut rng_events);
            let addr = NodeAddr(next_addr);
            next_addr += 1;
            let bootstrap = dat_net.node(root_addr).unwrap().me();
            let mut dn = StackNode::new(ccfg, id, addr).with_app(DatProtocol::new(dcfg));
            let k = dn.register("cpu-usage", AggregationMode::Continuous);
            dn.set_local(k, 25.0);
            let outs = dn.start_join(bootstrap);
            dat_net.add_node(dn);
            dat_net.apply(addr, outs);

            let mut en = StackNode::new(ccfg, id, addr).with_app(ExplicitProtocol::new(ecfg, key));
            en.exp_set_local(25.0);
            let boot2 = exp_net.node(root_addr).unwrap().me();
            let outs = en.start_join(boot2);
            exp_net.add_node(en);
            exp_net.apply(addr, outs);
            joins += 1;
        }
        leave_next = !leave_next;
    }
    // Settle.
    dat_net.run_for(5_000);
    exp_net.run_for(5_000);

    // ---- accounting -------------------------------------------------------
    let mut dat = ChurnCosts::default();
    for addr in dat_net.addrs() {
        let node = dat_net.node(addr).unwrap();
        dat.ring_maintenance += node.chord().metrics().sent_of_kinds(&RING_KINDS);
        dat.liveness += 2 * node.dat_metrics().sent_of("dat_parent_ping"); // ping + pong
        dat.payload += node.dat_metrics().sent_of("dat_update");
        // tree_maintenance stays 0: the DAT never repairs membership.
    }
    let mut explicit = ChurnCosts::default();
    for addr in exp_net.addrs() {
        let node = exp_net.node(addr).unwrap();
        explicit.ring_maintenance += node.chord().metrics().sent_of_kinds(&RING_KINDS);
        explicit.tree_maintenance += node
            .explicit()
            .metrics()
            .sent_of_kinds(&EXP_MEMBERSHIP_KINDS);
        explicit.liveness += node.explicit().metrics().sent_of_kinds(&EXP_LIVENESS_KINDS);
        explicit.payload += node.explicit().metrics().sent_of("exp_update");
    }
    // Did aggregation survive on the DAT side?
    let dat_reports_after_churn = dat_net
        .node_mut(root_addr)
        .map(|root| !root.take_events().is_empty())
        .unwrap_or(false);

    Churn {
        n,
        leaves,
        joins,
        duration_ms,
        dat,
        explicit,
        dat_reports_after_churn,
    }
}

impl Churn {
    /// The cost table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Churn overhead — n = {}, {} leaves + {} joins over {}s",
                self.n,
                self.leaves,
                self.joins,
                self.duration_ms / 1000
            ),
            &["cost (messages sent)", "implicit DAT", "explicit tree"],
        );
        t.row(vec![
            "tree membership repair".into(),
            self.dat.tree_maintenance.to_string(),
            self.explicit.tree_maintenance.to_string(),
        ]);
        t.row(vec![
            "tree liveness probing".into(),
            self.dat.liveness.to_string(),
            self.explicit.liveness.to_string(),
        ]);
        t.row(vec![
            "ring maintenance (shared substrate)".into(),
            self.dat.ring_maintenance.to_string(),
            self.explicit.ring_maintenance.to_string(),
        ]);
        t.row(vec![
            "aggregation payload".into(),
            self.dat.payload.to_string(),
            self.explicit.payload.to_string(),
        ]);
        let per_event = |c: &ChurnCosts| {
            let events = (self.leaves + self.joins).max(1);
            c.tree_maintenance as f64 / events as f64
        };
        t.row(vec![
            "membership msgs per churn event".into(),
            f(per_event(&self.dat)),
            f(per_event(&self.explicit)),
        ]);
        t
    }

    /// Qualitative checks.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        if self.dat.tree_maintenance != 0 {
            bad.push(format!(
                "implicit DAT sent {} membership messages (must be 0)",
                self.dat.tree_maintenance
            ));
        }
        if self.explicit.tree_maintenance == 0 {
            bad.push("explicit tree sent no membership traffic?!".into());
        }
        if !self.dat_reports_after_churn {
            bad.push("DAT root stopped reporting after churn".into());
        }
        if self.leaves == 0 || self.joins == 0 {
            bad.push("churn schedule produced no events".into());
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_beats_explicit_under_churn() {
        let c = run(48, 1_000, 12_000, 5);
        let bad = c.check();
        assert!(bad.is_empty(), "{bad:?}");
        assert!(c.explicit.tree_maintenance > 50);
        assert!(c.table().to_markdown().contains("membership"));
    }
}
