//! Fig. 2 / Fig. 5 — the paper's 16-node worked example.
//!
//! Regenerates the two illustration figures exactly: the basic DAT built
//! from Chord finger routes toward N0 on the full 4-bit ring (Fig. 2b) and
//! the balanced DAT produced by the finger-limited routing (Fig. 5b),
//! including the N8 → N12 re-parenting the balanced scheme introduces (the
//! paper's prose calls that node "N1" — a typo its own Fig. 5 contradicts).
//! Also emits Graphviz DOT for both trees.

use dat_chord::{Id, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use dat_core::viz::tree_to_dot;
use dat_core::DatTree;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::table::Table;

/// The two 16-node trees plus their DOT renderings.
pub struct Fig25 {
    /// The basic DAT of Fig. 2b.
    pub basic: DatTree,
    /// The balanced DAT of Fig. 5b.
    pub balanced: DatTree,
}

/// Build both trees on the full 16-node, 4-bit ring with root N0.
pub fn run() -> Fig25 {
    let mut rng = SmallRng::seed_from_u64(0);
    let ring = StaticRing::build(IdSpace::new(4), 16, IdPolicy::Even, &mut rng);
    Fig25 {
        basic: DatTree::build(&ring, Id(0), RoutingScheme::Greedy),
        balanced: DatTree::build(&ring, Id(0), RoutingScheme::Balanced),
    }
}

impl Fig25 {
    /// Side-by-side parent table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig 2b / Fig 5b — parents on the 16-node ring, root N0",
            &["node", "basic parent (Fig 2)", "balanced parent (Fig 5)"],
        );
        for v in 1..16u64 {
            t.row(vec![
                format!("N{v}"),
                format!("N{}", self.basic.parent(Id(v)).unwrap()),
                format!("N{}", self.balanced.parent(Id(v)).unwrap()),
            ]);
        }
        t
    }

    /// DOT renderings `(basic, balanced)`.
    pub fn dot(&self) -> (String, String) {
        (tree_to_dot(&self.basic), tree_to_dot(&self.balanced))
    }

    /// The exact structural facts the paper's figures state.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        // Fig 2: N0's children are N8, N12, N14, N15.
        if self.basic.children(Id(0)) != [Id(8), Id(12), Id(14), Id(15)] {
            bad.push(format!(
                "Fig 2 root children {:?}",
                self.basic.children(Id(0))
            ));
        }
        // Fig 2: the finger route from N1 is <N1, N9, N13, N15, N0>.
        if self.basic.path_to_root(Id(1)) != [Id(1), Id(9), Id(13), Id(15), Id(0)] {
            bad.push(format!(
                "Fig 2 N1 path {:?}",
                self.basic.path_to_root(Id(1))
            ));
        }
        // Fig 5: N8 re-parents to N12; every branching ≤ 2; height 4.
        if self.balanced.parent(Id(8)) != Some(Id(12)) {
            bad.push(format!(
                "Fig 5 parent(N8) = {:?} (expected N12)",
                self.balanced.parent(Id(8))
            ));
        }
        let max_b = (0..16u64)
            .map(|v| self.balanced.branching(Id(v)))
            .max()
            .unwrap();
        if max_b > 2 {
            bad.push(format!("Fig 5 max branching {max_b} > 2"));
        }
        if self.balanced.height() != 4 {
            bad.push(format!(
                "Fig 5 height {} != log2(16)",
                self.balanced.height()
            ));
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example_matches_both_figures() {
        let f = run();
        let bad = f.check();
        assert!(bad.is_empty(), "{bad:?}");
        let (d1, d2) = f.dot();
        assert!(
            d1.contains("\"N8\" -> \"N0\";"),
            "Fig 2: N8 is the root's child"
        );
        assert!(
            d2.contains("\"N8\" -> \"N12\";"),
            "Fig 5: N8 re-parents to N12"
        );
        assert!(f.table().to_markdown().contains("N15"));
    }
}
