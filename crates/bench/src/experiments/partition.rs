//! Network partition and heal — the fault-injection robustness experiment.
//!
//! The paper's prototype was only ever exercised on a healthy cluster; §7
//! leaves wide-area failure modes to future work. This experiment splits a
//! DAT ring 3:1 with the deterministic fault plan (every 4th ring position
//! goes to the minority side), holds the partition for 60 virtual seconds,
//! heals it, and tracks three signals over time:
//!
//! * **ring convergence** — is every node's successor pointer exactly the
//!   ideal ring successor;
//! * **coverage** — fraction of nodes reflected in the rendezvous root's
//!   continuous report;
//! * **relative error** — of the reported Sum against ground truth.
//!
//! Expectation: coverage collapses to roughly the majority share during the
//! split (soft-state children expire), then both the ring and the aggregate
//! recover after the heal — the ring via fallen-peer probes and stabilize
//! rectification, the tree via re-parenting — with no operator action.

use dat_chord::{ChordConfig, Id, IdPolicy, IdSpace, NodeAddr, RoutingScheme, StaticRing};
use dat_core::{AggFunc, AggregationMode, DatConfig, DatEvent, StackNode};
use dat_sim::harness::{addr_book, prestabilized_dat, ring_converged};
use dat_sim::{FaultPlan, SimNet};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::table::Table;

/// Fault schedule (virtual ms): split 3:1 at 20 s, heal at 80 s.
pub const PARTITION_AT_MS: u64 = 20_000;
/// Heal time — a 60 s outage, long enough for every cross-side child to
/// expire from the soft state.
pub const HEAL_AT_MS: u64 = 80_000;
/// End of observation: 150 s of post-heal recovery.
pub const END_AT_MS: u64 = 230_000;
const SAMPLE_MS: u64 = 10_000;

/// One time sample.
#[derive(Clone, Copy, Debug)]
pub struct PartitionRow {
    /// Virtual time of the sample, seconds.
    pub t_s: u64,
    /// "pre" / "split" / "healed".
    pub phase: &'static str,
    /// Successor ring identical to the ideal ring?
    pub converged: bool,
    /// Root-report coverage (contributing nodes / n); 0 if no report yet.
    pub coverage: f64,
    /// |reported Sum − ground truth| / ground truth; 1 if no report yet.
    pub rel_err: f64,
}

/// Experiment output.
pub struct Partition {
    /// Network size.
    pub n: usize,
    /// Deterministic digest of the injected fault schedule.
    pub plan_digest: u64,
    /// Time samples across the three phases.
    pub rows: Vec<PartitionRow>,
    /// First sample time (s) at/after the heal where the ring is converged.
    pub reconverged_at_s: Option<u64>,
    /// First sample time (s) at/after the heal with relative error ≤ 1%.
    pub recovered_at_s: Option<u64>,
}

/// Run the partition/heal scenario on an `n`-node balanced-DAT ring.
pub fn run(n: usize, seed: u64) -> Partition {
    let space = IdSpace::new(32);
    let mut rng = SmallRng::seed_from_u64(seed);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    // Live maintenance: the split only matters if failure detection,
    // eviction and fallen-peer probing actually run.
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 500,
        fix_fingers_ms: 500,
        check_pred_ms: 1_000,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net: SimNet<StackNode> = prestabilized_dat(&ring, ccfg, dcfg, seed);
    net.set_record_upcalls(false);

    // Minority side: every 4th ring position (3:1 split).
    let minority: Vec<NodeAddr> = (0..n).step_by(4).map(|i| NodeAddr(i as u64)).collect();
    let plan = FaultPlan::new()
        .partition_at(PARTITION_AT_MS, minority)
        .heal_at(HEAL_AT_MS);
    let plan_digest = plan.digest();
    net.set_fault_plan(plan);

    let book = addr_book(&ring);
    let mut key = Id(0);
    for (i, &id) in ring.ids().iter().enumerate() {
        let node = net.node_mut(book[&id]).unwrap();
        key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, i as f64);
    }
    let root = book[&ring.successor(key)];
    let truth = (n * (n - 1) / 2) as f64;

    let mut rows = Vec::new();
    let mut t = SAMPLE_MS;
    while t <= END_AT_MS {
        net.run_for(t - net.now().as_millis());
        let report = net
            .node_mut(root)
            .unwrap()
            .take_events()
            .into_iter()
            .rev()
            .find_map(|e| match e {
                DatEvent::Report {
                    key: k, partial, ..
                } if k == key => Some(partial),
                _ => None,
            });
        let (coverage, rel_err) = match report {
            Some(p) => (
                p.count as f64 / n as f64,
                (p.finalize(AggFunc::Sum) - truth).abs() / truth,
            ),
            None => (0.0, 1.0),
        };
        rows.push(PartitionRow {
            t_s: t / 1_000,
            phase: if t <= PARTITION_AT_MS {
                "pre"
            } else if t <= HEAL_AT_MS {
                "split"
            } else {
                "healed"
            },
            converged: ring_converged(&net, ring.ids()),
            coverage,
            rel_err,
        });
        t += SAMPLE_MS;
    }

    let after_heal = |f: &dyn Fn(&PartitionRow) -> bool| {
        rows.iter()
            .find(|r| r.t_s * 1_000 > HEAL_AT_MS && f(r))
            .map(|r| r.t_s)
    };
    let reconverged_at_s = after_heal(&|r| r.converged);
    let recovered_at_s = after_heal(&|r| r.rel_err <= 0.01);
    Partition {
        n,
        plan_digest,
        rows,
        reconverged_at_s,
        recovered_at_s,
    }
}

impl Partition {
    /// Time-series table across the three phases.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "partition/heal — 3:1 split at {} s, heal at {} s (n = {})",
                PARTITION_AT_MS / 1_000,
                HEAL_AT_MS / 1_000,
                self.n
            ),
            &["t (s)", "phase", "ring converged", "coverage", "rel err"],
        );
        for r in &self.rows {
            t.row(vec![
                r.t_s.to_string(),
                r.phase.to_string(),
                if r.converged { "yes" } else { "no" }.to_string(),
                format!("{:.3}", r.coverage),
                format!("{:.4}", r.rel_err),
            ]);
        }
        t
    }

    /// Qualitative checks: healthy before, degraded during, recovered after.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let pre: Vec<_> = self.rows.iter().filter(|r| r.phase == "pre").collect();
        if let Some(last_pre) = pre.last() {
            if !last_pre.converged || last_pre.rel_err > 1e-9 {
                bad.push(format!(
                    "pre-partition not healthy: converged {} rel_err {:.4}",
                    last_pre.converged, last_pre.rel_err
                ));
            }
        }
        if let Some(last_split) = self.rows.iter().rfind(|r| r.phase == "split") {
            if last_split.coverage >= 1.0 {
                bad.push(format!(
                    "split did not degrade coverage (still {:.3})",
                    last_split.coverage
                ));
            }
        }
        match self.rows.last() {
            Some(end) => {
                if !end.converged {
                    bad.push("ring did not re-unify by end of run".into());
                }
                if end.rel_err > 0.01 {
                    bad.push(format!("final relative error {:.4} > 1%", end.rel_err));
                }
            }
            None => bad.push("no samples collected".into()),
        }
        if self.reconverged_at_s.is_none() {
            bad.push("never observed a converged ring after the heal".into());
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_and_aggregate_recover_after_heal() {
        let p = run(64, 7);
        let bad = p.check();
        assert!(bad.is_empty(), "{bad:?}");
        assert!(p.table().to_markdown().contains("ring converged"));
        // The schedule itself is deterministic input, not simulation output.
        assert_eq!(p.plan_digest, run(64, 8).plan_digest);
    }
}
