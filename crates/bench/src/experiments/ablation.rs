//! Ablations over the design choices DESIGN.md calls out.
//!
//! * **hold_ms** — the convergecast-within-a-slot synchronization (§4
//!   "aggregation synchronization"): with `hold = 0` updates do not cascade
//!   and the root's view lags by `height × epoch` (pure pipelining); with a
//!   hold window the report reflects the current epoch. Measured as Fig. 9
//!   accuracy (MAPE) on the same trace.
//! * **child_ttl_epochs** — soft-state expiry: a short TTL drops slow
//!   children (under-coverage); a long TTL keeps ghost contributions after
//!   departures (over-coverage under churn).

use dat_chord::{IdPolicy, RoutingScheme};
use dat_core::AggregationMode;
use dat_monitor::{CpuTrace, GridMonitorSim, MonitorConfig, TraceConfig, TraceSensor};
use dat_sim::LatencyModel;

use crate::table::Table;

/// Accuracy vs hold window.
#[derive(Clone, Copy, Debug)]
pub struct HoldRow {
    /// Hold window, ms.
    pub hold_ms: u64,
    /// Mean absolute percentage error of the aggregated totals.
    pub mape: f64,
    /// Mean coverage.
    pub coverage: f64,
}

/// Ablation output.
pub struct Ablation {
    /// hold_ms sweep.
    pub hold: Vec<HoldRow>,
    /// ttl sweep: (ttl, ghost overshoot after leaves, epochs to re-cover).
    pub ttl: Vec<TtlRow>,
}

/// Coverage behaviour vs child TTL under departures.
#[derive(Clone, Copy, Debug)]
pub struct TtlRow {
    /// TTL in epochs.
    pub ttl: u64,
    /// Max reported count *after* the departures (ghost contributions —
    /// ideal is the live-node count).
    pub max_after_leave: u64,
    /// Live nodes after the departures.
    pub live: u64,
    /// Epochs until the report first matches the live count.
    pub epochs_to_recover: Option<u64>,
}

/// Run both ablations (sizes kept moderate; the effects are not
/// size-sensitive).
pub fn run(n: usize, seed: u64) -> Ablation {
    let hold = [0u64, 50, 250, 500]
        .iter()
        .map(|&h| hold_accuracy(n, h, seed))
        .collect();
    let ttl = [1u64, 3, 8]
        .iter()
        .map(|&t| ttl_behaviour(n, t, seed))
        .collect();
    Ablation { hold, ttl }
}

fn hold_accuracy(n: usize, hold_ms: u64, seed: u64) -> HoldRow {
    let trace = CpuTrace::generate(TraceConfig {
        duration_s: 1200,
        seed,
        ..TraceConfig::default()
    });
    let cfg = MonitorConfig {
        nodes: n,
        epoch_ms: 10_000,
        seed,
        hold_ms: Some(hold_ms),
        latency: LatencyModel::Constant(2),
        id_policy: IdPolicy::Probed,
        scheme: RoutingScheme::Balanced,
        mode: AggregationMode::Continuous,
        ..MonitorConfig::default()
    };
    let mut sim = GridMonitorSim::new(cfg, "cpu-usage", |_| {
        Box::new(TraceSensor::new("cpu-usage", trace.clone(), 0, 1.0))
    });
    sim.run_epochs(120);
    let acc = sim.accuracy();
    HoldRow {
        hold_ms,
        mape: acc.mape,
        coverage: acc.coverage,
    }
}

fn ttl_behaviour(n: usize, ttl: u64, seed: u64) -> TtlRow {
    use dat_core::DatEvent;
    let cfg = MonitorConfig {
        nodes: n,
        epoch_ms: 1_000,
        seed,
        child_ttl_epochs: Some(ttl),
        fast_maintenance: true,
        ..MonitorConfig::default()
    };
    let mut sim = GridMonitorSim::new(cfg, "cpu-usage", |_| {
        Box::new(dat_monitor::ConstantSensor::new("cpu-usage", 1.0))
    });
    sim.run_epochs(8);
    // A burst of graceful departures (a fifth of the fleet, sparing the root).
    let root = sim.root_addr();
    let victims: Vec<_> = sim
        .net()
        .iter_nodes()
        .map(|(a, _)| *a)
        .filter(|&a| a != root)
        .take(n / 5)
        .collect();
    for v in &victims {
        sim.net_mut().with_node(*v, |node| ((), node.leave()));
    }
    let live = (n - victims.len()) as u64;
    // Watch the root's reports for the next epochs.
    let key = sim.key();
    let mut max_after = 0u64;
    let mut recovered = None;
    for e in 0..40u64 {
        sim.net_mut().run_for(1_000);
        let reports: Vec<u64> = sim
            .net_mut()
            .node_mut(root)
            .map(|r| {
                r.take_events()
                    .into_iter()
                    .filter_map(|ev| match ev {
                        DatEvent::Report {
                            key: k, partial, ..
                        } if k == key => Some(partial.count),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();
        for c in reports {
            max_after = max_after.max(c);
            if recovered.is_none() && c == live {
                recovered = Some(e + 1);
            }
        }
    }
    TtlRow {
        ttl,
        max_after_leave: max_after,
        live,
        epochs_to_recover: recovered,
    }
}

impl Ablation {
    /// Render both sweeps.
    pub fn tables(&self) -> (Table, Table) {
        let mut th = Table::new(
            "Ablation — hold window vs aggregation accuracy (convergecast sync)",
            &["hold_ms", "MAPE %", "coverage"],
        );
        for r in &self.hold {
            th.row(vec![
                r.hold_ms.to_string(),
                format!("{:.3}", r.mape),
                format!("{:.3}", r.coverage),
            ]);
        }
        let mut tt = Table::new(
            "Ablation — child TTL vs coverage after a 20% departure burst",
            &[
                "ttl (epochs)",
                "live nodes",
                "max reported after",
                "epochs to re-cover",
            ],
        );
        for r in &self.ttl {
            tt.row(vec![
                r.ttl.to_string(),
                r.live.to_string(),
                r.max_after_leave.to_string(),
                r.epochs_to_recover
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        (th, tt)
    }

    /// Qualitative checks: the hold window must improve accuracy; longer
    /// TTLs must keep ghosts around longer.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let no_hold = self.hold.iter().find(|r| r.hold_ms == 0);
        let with_hold = self.hold.iter().find(|r| r.hold_ms == 250);
        match (no_hold, with_hold) {
            (Some(a), Some(b)) => {
                if b.mape >= a.mape {
                    bad.push(format!(
                        "hold window does not improve accuracy ({:.3}% vs {:.3}%)",
                        b.mape, a.mape
                    ));
                }
                if b.mape > 1.0 {
                    bad.push(format!("hold=250ms MAPE {:.3}% > 1%", b.mape));
                }
            }
            _ => bad.push("hold sweep incomplete".into()),
        }
        // Ghost contributions from *departed* nodes cannot be pruned (the
        // leaver never re-parents), so the report can only settle to the
        // live count after the soft-state TTL expires: recovery time is
        // bounded below by the TTL, and every TTL must eventually recover.
        for r in &self.ttl {
            match r.epochs_to_recover {
                None => bad.push(format!("ttl={} never re-covered", r.ttl)),
                Some(e) => {
                    if e + 1 < r.ttl {
                        bad.push(format!(
                            "ttl={} recovered after {e} epochs — before ghosts can expire?!",
                            r.ttl
                        ));
                    }
                }
            }
            if r.max_after_leave < r.live {
                bad.push(format!(
                    "ttl={}: report never reached the live count {} (max {})",
                    r.ttl, r.live, r.max_after_leave
                ));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_shapes_hold() {
        let a = run(48, 3);
        let bad = a.check();
        assert!(bad.is_empty(), "{bad:?}");
        let (th, tt) = a.tables();
        assert!(th.to_markdown().contains("hold_ms"));
        assert!(tt.to_markdown().contains("ttl"));
    }
}
