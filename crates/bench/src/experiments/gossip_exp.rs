//! Gossip (push-sum) vs DAT — message cost to reach a given accuracy.
//!
//! A supplementary comparison the paper's related-work section gestures at
//! (Astrolabe-style epidemic aggregation vs tree aggregation): push-sum
//! converges to the global average in `O(log n)` rounds of `n` messages,
//! while the DAT computes it *exactly* with `n−1` messages per epoch. The
//! experiment measures, on the same overlay and values, how many gossip
//! messages are needed before every node's estimate is within 1% / 0.1% of
//! the truth, against the DAT's fixed per-epoch cost.

use dat_chord::{ChordConfig, IdPolicy, IdSpace, StaticRing};
use dat_core::GossipConfig;
use dat_sim::harness::prestabilized_gossip;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::table::{f, Table};

/// Result of one gossip run.
#[derive(Clone, Copy, Debug)]
pub struct GossipRow {
    /// Network size.
    pub n: usize,
    /// Rounds until every node is within 1% of the true average.
    pub rounds_1pct: Option<u64>,
    /// Rounds until every node is within 0.1%.
    pub rounds_01pct: Option<u64>,
    /// Total gossip messages sent by the end of the 0.1% round.
    pub msgs_to_01pct: Option<u64>,
    /// DAT messages for one exact answer (n − 1).
    pub dat_msgs_exact: u64,
}

/// Experiment output.
pub struct GossipExp {
    /// Per-size rows.
    pub rows: Vec<GossipRow>,
}

/// Run push-sum to convergence on rings of the given sizes.
pub fn run(sizes: &[usize], seed: u64) -> GossipExp {
    let rows = sizes.iter().map(|&n| run_one(n, seed)).collect();
    GossipExp { rows }
}

fn run_one(n: usize, seed: u64) -> GossipRow {
    let space = IdSpace::new(32);
    let mut rng = SmallRng::seed_from_u64(seed + n as u64);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 600_000,
        fix_fingers_ms: 600_000,
        check_pred_ms: 600_000,
        ..ChordConfig::default()
    };
    let gcfg = GossipConfig {
        round_ms: 1_000,
        fanout: 1,
    };
    // Values 0..n-1: true average (n-1)/2.
    let mut net = prestabilized_gossip(&ring, ccfg, gcfg, seed, |i| i as f64);
    net.set_record_upcalls(false);
    let truth = (n as f64 - 1.0) / 2.0;
    let mut rounds_1pct = None;
    let mut rounds_01pct = None;
    let mut msgs_to_01pct = None;
    let max_rounds = 200u64;
    for round in 1..=max_rounds {
        net.run_for(1_000);
        let worst = net
            .iter_nodes()
            .map(|(_, node)| ((node.gossip().estimate() - truth) / truth).abs())
            .fold(0.0f64, f64::max);
        if rounds_1pct.is_none() && worst < 0.01 {
            rounds_1pct = Some(round);
        }
        if rounds_01pct.is_none() && worst < 0.001 {
            rounds_01pct = Some(round);
            msgs_to_01pct = Some(
                net.addrs()
                    .iter()
                    .map(|&a| {
                        net.node(a)
                            .unwrap()
                            .gossip_metrics()
                            .sent_of("gossip_share")
                    })
                    .sum(),
            );
            break;
        }
    }
    GossipRow {
        n,
        rounds_1pct,
        rounds_01pct,
        msgs_to_01pct,
        dat_msgs_exact: (n - 1) as u64,
    }
}

impl GossipExp {
    /// Comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Gossip (push-sum) vs DAT — cost to an accurate global average",
            &[
                "n",
                "rounds to 1%",
                "rounds to 0.1%",
                "gossip msgs to 0.1%",
                "DAT msgs (exact)",
            ],
        );
        for r in &self.rows {
            let o = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
            t.row(vec![
                r.n.to_string(),
                o(r.rounds_1pct),
                o(r.rounds_01pct),
                o(r.msgs_to_01pct),
                r.dat_msgs_exact.to_string(),
            ]);
        }
        t
    }

    /// Qualitative checks: gossip converges in O(log n) rounds but costs
    /// far more messages than one exact DAT epoch.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for r in &self.rows {
            let Some(r01) = r.rounds_01pct else {
                bad.push(format!("push-sum did not converge at n={}", r.n));
                continue;
            };
            let log2n = (r.n as f64).log2();
            if (r01 as f64) > 12.0 * log2n {
                bad.push(format!(
                    "push-sum needed {r01} rounds at n={} (log2 n = {})",
                    r.n,
                    f(log2n)
                ));
            }
            if let Some(m) = r.msgs_to_01pct {
                if m <= r.dat_msgs_exact {
                    bad.push(format!(
                        "gossip {m} msgs cheaper than the exact DAT at n={}?!",
                        r.n
                    ));
                }
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_sum_converges_and_costs_more_than_dat() {
        let e = run(&[32, 64], 5);
        let bad = e.check();
        assert!(bad.is_empty(), "{bad:?}");
        // The comparison table renders.
        assert!(e.table().to_markdown().contains("push-sum"));
        // DAT's exact answer is cheaper by at least ~log n.
        for r in &e.rows {
            let m = r.msgs_to_01pct.unwrap();
            assert!(m as f64 >= 2.0 * r.dat_msgs_exact as f64, "n={}: {m}", r.n);
        }
    }
}
