//! Fig. 9 — accuracy of Grid resource monitoring (§5.4).
//!
//! A simulated Grid of 512 nodes, each replaying the (synthetic, see
//! DESIGN.md §4) 2-hour CPU-usage trace; the balanced DAT continuously
//! aggregates the global total/average. Panel (a) is the time series of
//! actual vs aggregated total usage; panel (b) the scatter of aggregated
//! vs actual — the paper reports points "clustered around the diagonal".

use dat_monitor::{CpuTrace, GridMonitorSim, MonitorConfig, TraceConfig, TraceSensor};

use crate::table::{f, Table};

/// Experiment output.
pub struct Fig9 {
    /// The simulation after the run (records inside).
    pub sim: GridMonitorSim,
    /// Number of nodes.
    pub n: usize,
}

/// Run the accuracy experiment: `n` nodes, a trace of `duration_s`
/// seconds, aggregation epoch `epoch_s`.
pub fn run(n: usize, duration_s: u64, epoch_s: u64, seed: u64) -> Fig9 {
    let trace = CpuTrace::generate(TraceConfig {
        duration_s,
        seed,
        ..TraceConfig::default()
    });
    let cfg = MonitorConfig {
        nodes: n,
        epoch_ms: epoch_s * 1_000,
        seed,
        ..MonitorConfig::default()
    };
    // Paper §5.4: "each node has the same CPU usage as in the trace".
    let mut sim = GridMonitorSim::new(cfg, "cpu-usage", |_| {
        Box::new(TraceSensor::new("cpu-usage", trace.clone(), 0, 1.0))
    });
    sim.run_epochs(duration_s / epoch_s);
    Fig9 { sim, n }
}

impl Fig9 {
    /// Fig. 9a: the time series (sampled down to ~20 rows).
    pub fn table_series(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Fig 9a — actual vs aggregated total CPU usage over time (n = {})",
                self.n
            ),
            &["t (min)", "actual total", "aggregated total", "error %"],
        );
        let records = self.sim.records();
        let step = (records.len() / 20).max(1);
        for r in records.iter().step_by(step) {
            let (agg, err) = match r.reported_total {
                Some(v) => {
                    let e = if r.actual_total > 0.0 {
                        (v - r.actual_total) / r.actual_total * 100.0
                    } else {
                        0.0
                    };
                    (f(v), format!("{e:+.2}"))
                }
                None => ("-".into(), "-".into()),
            };
            t.row(vec![format!("{}", r.t_s / 60), f(r.actual_total), agg, err]);
        }
        t
    }

    /// Fig. 9b: scatter summary — correlation and error statistics of
    /// aggregated vs actual.
    pub fn table_scatter(&self) -> Table {
        let pairs: Vec<(f64, f64)> = self
            .sim
            .records()
            .iter()
            .filter_map(|r| r.reported_total.map(|v| (r.actual_total, v)))
            .collect();
        let acc = self.sim.accuracy();
        let corr = correlation(&pairs);
        let mut t = Table::new(
            "Fig 9b — aggregated vs actual scatter (diagonal fit)",
            &["metric", "value"],
        );
        t.row(vec!["points".into(), pairs.len().to_string()]);
        t.row(vec!["pearson r".into(), format!("{corr:.4}")]);
        t.row(vec!["MAPE %".into(), format!("{:.3}", acc.mape)]);
        t.row(vec!["max APE %".into(), format!("{:.3}", acc.max_ape)]);
        t.row(vec!["node coverage".into(), format!("{:.4}", acc.coverage)]);
        t
    }

    /// Qualitative checks: points cluster on the diagonal.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let acc = self.sim.accuracy();
        if acc.reported_epochs < 5 {
            bad.push(format!("only {} reported epochs", acc.reported_epochs));
        }
        // NaN (no data) must fail the check too, hence not `>= 5.0`.
        if acc.mape.partial_cmp(&5.0) != Some(std::cmp::Ordering::Less) {
            bad.push(format!("MAPE {:.2}% too high (expect < 5%)", acc.mape));
        }
        if acc.coverage < 0.95 {
            bad.push(format!("coverage {:.3} < 0.95", acc.coverage));
        }
        let pairs: Vec<(f64, f64)> = self
            .sim
            .records()
            .iter()
            .filter_map(|r| r.reported_total.map(|v| (r.actual_total, v)))
            .collect();
        let corr = correlation(&pairs);
        if corr.partial_cmp(&0.9) != Some(std::cmp::Ordering::Greater) {
            bad.push(format!("diagonal correlation {corr:.3} < 0.9"));
        }
        bad
    }
}

/// Pearson correlation of (x, y) pairs.
pub fn correlation(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len() as f64;
    if pairs.len() < 2 {
        return f64::NAN;
    }
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for &(x, y) in pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        // A perfectly flat series that matches is perfectly correlated for
        // our purposes.
        return if (mx - my).abs() < 1e-9 { 1.0 } else { 0.0 };
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_basics() {
        let perfect: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64 * 2.0)).collect();
        assert!((correlation(&perfect) - 1.0).abs() < 1e-12);
        let anti: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        assert!((correlation(&anti) + 1.0).abs() < 1e-12);
        assert!(correlation(&[]).is_nan());
    }

    #[test]
    fn small_run_clusters_on_diagonal() {
        let fig = run(64, 600, 10, 3);
        let bad = fig.check();
        assert!(bad.is_empty(), "{bad:?}");
        let md = fig.table_series().to_markdown();
        assert!(md.contains("aggregated total"));
        let md = fig.table_scatter().to_markdown();
        assert!(md.contains("pearson r"));
    }
}
