//! Tree-height claims of §3.3 and §3.5.
//!
//! The paper proves the basic DAT's height is `O(log n)` (the longest
//! finger route) and the balanced DAT's height is *at most* `log2 n` on
//! evenly spaced identifiers. This experiment measures both across sizes
//! and identifier policies — it is the latency side of the
//! scalability story (an aggregation traverses at most `height` hops).

use dat_chord::{Id, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use dat_core::{DatTree, TreeStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::table::{f, Table};

/// One measured size.
#[derive(Clone, Copy, Debug)]
pub struct HeightRow {
    /// Network size.
    pub n: usize,
    /// log2(n) reference.
    pub log2n: f64,
    /// Basic DAT height (random ids).
    pub basic_random: f64,
    /// Basic DAT height (probed ids).
    pub basic_probed: f64,
    /// Balanced DAT height (random ids).
    pub balanced_random: f64,
    /// Balanced DAT height (probed ids).
    pub balanced_probed: f64,
    /// Balanced DAT height (perfectly even ids — the §3.5 bound case).
    pub balanced_even: f64,
}

/// Experiment output.
pub struct Heights {
    /// Per-size rows.
    pub rows: Vec<HeightRow>,
}

/// Measure heights for power-of-two sizes up to `max_n`, `seeds` rings each.
pub fn run(max_n: usize, seeds: u64) -> Heights {
    let space = IdSpace::new(40);
    let mut rows = Vec::new();
    let mut n = 16usize;
    while n <= max_n {
        let mut acc = [0.0f64; 5];
        let mut count = 0.0;
        for seed in 0..seeds {
            let mut rng = SmallRng::seed_from_u64(seed * 31 + n as u64);
            let key = Id(rng.random::<u64>() & space.mask());
            let random = StaticRing::build(space, n, IdPolicy::Random, &mut rng);
            let probed = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
            let even = StaticRing::build(space, n, IdPolicy::Even, &mut rng);
            let h =
                |ring: &StaticRing, s| TreeStats::of(&DatTree::build(ring, key, s)).height as f64;
            acc[0] += h(&random, RoutingScheme::Greedy);
            acc[1] += h(&probed, RoutingScheme::Greedy);
            acc[2] += h(&random, RoutingScheme::Balanced);
            acc[3] += h(&probed, RoutingScheme::Balanced);
            acc[4] += h(&even, RoutingScheme::Balanced);
            count += 1.0;
        }
        rows.push(HeightRow {
            n,
            log2n: (n as f64).log2(),
            basic_random: acc[0] / count,
            basic_probed: acc[1] / count,
            balanced_random: acc[2] / count,
            balanced_probed: acc[3] / count,
            balanced_even: acc[4] / count,
        });
        n *= 2;
    }
    Heights { rows }
}

impl Heights {
    /// The height table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Tree heights vs network size (§3.3 / §3.5 claims)",
            &[
                "n",
                "log2(n)",
                "basic/random",
                "basic/probed",
                "balanced/random",
                "balanced/probed",
                "balanced/even",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.n.to_string(),
                f(r.log2n),
                f(r.basic_random),
                f(r.basic_probed),
                f(r.balanced_random),
                f(r.balanced_probed),
                f(r.balanced_even),
            ]);
        }
        t
    }

    /// Qualitative checks.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for r in &self.rows {
            // §3.5: balanced height ≤ log2 n on even rings (exact bound).
            if r.balanced_even > r.log2n + 1e-9 {
                bad.push(format!(
                    "balanced/even height {} exceeds log2(n) = {} at n={}",
                    f(r.balanced_even),
                    f(r.log2n),
                    r.n
                ));
            }
            // O(log n) heights throughout (generous constant).
            for (name, v) in [
                ("basic/random", r.basic_random),
                ("basic/probed", r.basic_probed),
                ("balanced/random", r.balanced_random),
                ("balanced/probed", r.balanced_probed),
            ] {
                if v > 3.0 * r.log2n + 3.0 {
                    bad.push(format!("{name} height {} not O(log n) at n={}", f(v), r.n));
                }
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heights_small_sweep() {
        let h = run(256, 2);
        assert_eq!(h.rows.len(), 5);
        let bad = h.check();
        assert!(bad.is_empty(), "{bad:?}");
        assert!(h.table().to_markdown().contains("balanced/even"));
    }
}
