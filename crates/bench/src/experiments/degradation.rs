//! Degradation under churn — completeness accounting as an experiment.
//!
//! PR 3's failure-semantics layer claims a degraded report *says so*: the
//! root's completeness ratio drops while faults are active and returns to
//! 1.0 within a bounded number of epochs after they stop. This experiment
//! runs the seeded churn soak (`dat_sim::soak`) at bench scale and folds
//! the report stream into a time series — minimum and mean completeness
//! per bucket, plus the warm-failover and recovery numbers the soak
//! scores — so the self-healing story shows up as a table, not just a
//! passing test.
#![deny(clippy::unwrap_used)]

use dat_sim::{run_soak, SoakConfig, SoakOutcome};

use crate::table::Table;

/// One time bucket of the report stream.
#[derive(Clone, Copy, Debug)]
pub struct DegradationRow {
    /// Bucket start, virtual seconds.
    pub t_s: u64,
    /// "warmup" / "churn" / "quiesce".
    pub phase: &'static str,
    /// Reports observed in the bucket.
    pub reports: usize,
    /// Minimum completeness ratio in the bucket (1.0 when empty).
    pub min_ratio: f64,
    /// Mean completeness ratio in the bucket.
    pub mean_ratio: f64,
    /// Worst staleness bound (ms) in the bucket.
    pub max_staleness_ms: u64,
}

/// Experiment output: the scored soak plus the bucketed series.
pub struct Degradation {
    /// Network size.
    pub n: usize,
    /// The scored soak run.
    pub outcome: SoakOutcome,
    /// Time buckets across warmup → churn → quiesce.
    pub rows: Vec<DegradationRow>,
    /// Bucket width, virtual ms.
    pub bucket_ms: u64,
    cfg: SoakConfig,
}

/// Run the bench-scale soak: `n` nodes, ~8 virtual minutes of randomized
/// faults (crash bursts, partitions, flaky links, duplication, one root
/// crash), then a fault-free tail.
pub fn run(n: usize, seed: u64) -> Degradation {
    let cfg = SoakConfig {
        nodes: n,
        seed,
        epoch_ms: 5_000,
        warmup_ms: 60_000,
        churn_ms: 480_000,
        quiesce_ms: 240_000,
        episodes: 8,
        crash_root: true,
        ..SoakConfig::default()
    };
    let outcome = run_soak(&cfg);
    let bucket_ms = 60_000;
    let buckets = cfg.total_ms().div_ceil(bucket_ms);
    let rows = (0..buckets)
        .map(|b| {
            let (lo, hi) = (b * bucket_ms, (b + 1) * bucket_ms);
            let in_bucket: Vec<_> = outcome
                .log
                .iter()
                .filter(|r| r.t_ms >= lo && r.t_ms < hi)
                .collect();
            let reports = in_bucket.len();
            let min_ratio = in_bucket
                .iter()
                .map(|r| r.completeness.ratio)
                .fold(f64::INFINITY, f64::min);
            let sum: f64 = in_bucket.iter().map(|r| r.completeness.ratio).sum();
            DegradationRow {
                t_s: lo / 1_000,
                phase: if hi <= cfg.warmup_ms {
                    "warmup"
                } else if lo < cfg.churn_end_ms() {
                    "churn"
                } else {
                    "quiesce"
                },
                reports,
                min_ratio: if reports == 0 { 1.0 } else { min_ratio },
                mean_ratio: if reports == 0 {
                    1.0
                } else {
                    sum / reports as f64
                },
                max_staleness_ms: in_bucket
                    .iter()
                    .map(|r| r.completeness.staleness_ms)
                    .max()
                    .unwrap_or(0),
            }
        })
        .collect();
    Degradation {
        n,
        outcome,
        rows,
        bucket_ms,
        cfg,
    }
}

impl Degradation {
    /// Completeness time series across the fault schedule.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "degradation under churn — completeness over time (n = {}, seed {}, \
                 plan digest {:#018x})",
                self.n, self.outcome.seed, self.outcome.digest
            ),
            &[
                "t (s)",
                "phase",
                "reports",
                "min completeness",
                "mean completeness",
                "max staleness (ms)",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.t_s.to_string(),
                r.phase.to_string(),
                r.reports.to_string(),
                format!("{:.3}", r.min_ratio),
                format!("{:.3}", r.mean_ratio),
                r.max_staleness_ms.to_string(),
            ]);
        }
        t
    }

    /// Fleet-wide transport-health tallies for the run — the timeout /
    /// retransmission / drop counters every node keeps but (before the
    /// observability registry) nothing ever reported.
    pub fn health_table(&self) -> Table {
        let mut t = Table::new(
            &format!("transport health over the soak (n = {})", self.n),
            &["metric", "fleet total"],
        );
        t.row(vec![
            "request timeouts".into(),
            self.outcome.fleet_timeouts.to_string(),
        ]);
        t.row(vec![
            "datagram retransmits".into(),
            self.outcome.fleet_retransmits.to_string(),
        ]);
        t.row(vec![
            "undecodable payloads dropped".into(),
            self.outcome.fleet_dropped.to_string(),
        ]);
        t.row(vec![
            "peers suspected (phi-accrual)".into(),
            self.outcome.fleet_suspects.to_string(),
        ]);
        t.row(vec![
            "peers quarantined (flap damping)".into(),
            self.outcome.fleet_quarantines.to_string(),
        ]);
        t.row(vec![
            "payloads shed (inbox backpressure)".into(),
            self.outcome.fleet_sheds.to_string(),
        ]);
        t
    }

    /// Qualitative checks: visible degradation, bounded recovery, warm
    /// failover. The soak's own invariant scoring (double counting,
    /// split-brain reporters, fence monotonicity) feeds in directly.
    pub fn check(&self) -> Vec<String> {
        let mut bad = self.outcome.violations.clone();
        if self.outcome.min_ratio_during_churn >= 1.0 {
            bad.push("churn never degraded completeness — nothing was measured".into());
        }
        match self.outcome.recovery_epochs {
            Some(e) if e > self.cfg.recovery_bound_epochs() => bad.push(format!(
                "recovery took {e} epochs (bound {})",
                self.cfg.recovery_bound_epochs()
            )),
            Some(_) => {}
            None => bad.push("completeness never recovered after the schedule drained".into()),
        }
        match self.outcome.failover_delay_ms {
            Some(d) if d > 2 * self.cfg.epoch_ms => bad.push(format!(
                "root failover took {d} ms — more than one epoch of reports lost"
            )),
            Some(_) => {}
            None => bad.push("no report ever followed the root crash".into()),
        }
        if (self.outcome.final_ratio - 1.0).abs() > 1e-9 {
            bad.push(format!(
                "final completeness {:.3} != 1.0",
                self.outcome.final_ratio
            ));
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_recovers_and_tables_render() {
        let d = run(48, 5);
        let bad = d.check();
        assert!(bad.is_empty(), "{bad:?}");
        let md = d.table().to_markdown();
        assert!(md.contains("min completeness"));
        let health = d.health_table().to_markdown();
        assert!(health.contains("request timeouts"));
        // A churn soak crashes nodes mid-request: the fleet must have
        // observed at least one timeout for the counters to be live.
        assert!(d.outcome.fleet_timeouts > 0, "no timeouts ever counted");
        // The series spans all three phases.
        for phase in ["warmup", "churn", "quiesce"] {
            assert!(
                d.rows.iter().any(|r| r.phase == phase),
                "missing phase {phase}"
            );
        }
    }
}
