//! Fig. 7 — DAT tree properties vs network size.
//!
//! Reproduces both panels of the paper's Fig. 7 ("Comparison of tree
//! properties for different DAT schemes", §5.2):
//!
//! * **(a)** maximum branching factor as a function of network size
//!   (16..8192), for basic and balanced DATs with random and probed
//!   identifiers. Expected shape: basic grows on a log scale (≈43 at 8192
//!   random, ≈16 probed); balanced+probing is a small constant (≈4);
//!   balanced without probing still grows logarithmically because the
//!   gap ratio of random identifiers is O(log n);
//! * **(b)** average branching factor (over interior nodes): ≈2 constant
//!   with probing, ≈3–3.2 constant without.

use dat_chord::{Id, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use dat_core::{DatTree, TreeStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::table::{f, Table};

/// One measured configuration.
#[derive(Clone, Copy, Debug)]
pub struct Fig7Row {
    /// Network size.
    pub n: usize,
    /// Identifier policy.
    pub policy: IdPolicy,
    /// Routing scheme.
    pub scheme: RoutingScheme,
    /// Max branching factor, averaged over seeds/keys.
    pub max_branching: f64,
    /// Average branching factor (interior nodes), averaged over seeds/keys.
    pub avg_branching: f64,
    /// Tree height, averaged over seeds/keys.
    pub height: f64,
}

/// Experiment output.
pub struct Fig7 {
    /// All measured rows.
    pub rows: Vec<Fig7Row>,
    /// Sizes measured.
    pub sizes: Vec<usize>,
}

const BITS: u8 = 40;

/// Run the experiment: sizes 16..=`max_n` (powers of two), `seeds`
/// independent rings each, `keys` rendezvous keys per ring.
pub fn run(max_n: usize, seeds: u64, keys: usize) -> Fig7 {
    let space = IdSpace::new(BITS);
    let mut sizes = Vec::new();
    let mut n = 16usize;
    while n <= max_n {
        sizes.push(n);
        n *= 2;
    }
    let mut rows = Vec::new();
    for &n in &sizes {
        for policy in [IdPolicy::Random, IdPolicy::Probed] {
            for scheme in [RoutingScheme::Greedy, RoutingScheme::Balanced] {
                let mut max_b = 0.0;
                let mut avg_b = 0.0;
                let mut height = 0.0;
                let mut count = 0.0;
                for seed in 0..seeds {
                    let mut rng = SmallRng::seed_from_u64(seed * 7919 + n as u64);
                    let ring = StaticRing::build(space, n, policy, &mut rng);
                    for _ in 0..keys {
                        let key = Id(rng.random::<u64>() & space.mask());
                        let tree = DatTree::build(&ring, key, scheme);
                        let s = TreeStats::of(&tree);
                        max_b += s.max_branching as f64;
                        avg_b += s.avg_branching;
                        height += s.height as f64;
                        count += 1.0;
                    }
                }
                rows.push(Fig7Row {
                    n,
                    policy,
                    scheme,
                    max_branching: max_b / count,
                    avg_branching: avg_b / count,
                    height: height / count,
                });
            }
        }
    }
    Fig7 { rows, sizes }
}

impl Fig7 {
    fn find(&self, n: usize, policy: IdPolicy, scheme: RoutingScheme) -> &Fig7Row {
        self.rows
            .iter()
            .find(|r| r.n == n && r.policy == policy && r.scheme == scheme)
            .expect("row exists")
    }

    /// Fig. 7a table: max branching factor vs n.
    pub fn table_a(&self) -> Table {
        let mut t = Table::new(
            "Fig 7a — maximum branching factor vs network size",
            &[
                "n",
                "basic/random",
                "basic/probed",
                "balanced/random",
                "balanced/probed",
            ],
        );
        for &n in &self.sizes {
            t.row(vec![
                n.to_string(),
                f(self
                    .find(n, IdPolicy::Random, RoutingScheme::Greedy)
                    .max_branching),
                f(self
                    .find(n, IdPolicy::Probed, RoutingScheme::Greedy)
                    .max_branching),
                f(self
                    .find(n, IdPolicy::Random, RoutingScheme::Balanced)
                    .max_branching),
                f(self
                    .find(n, IdPolicy::Probed, RoutingScheme::Balanced)
                    .max_branching),
            ]);
        }
        t
    }

    /// Fig. 7b table: average branching factor vs n.
    pub fn table_b(&self) -> Table {
        let mut t = Table::new(
            "Fig 7b — average branching factor (interior nodes) vs network size",
            &[
                "n",
                "basic/random",
                "basic/probed",
                "balanced/random",
                "balanced/probed",
            ],
        );
        for &n in &self.sizes {
            t.row(vec![
                n.to_string(),
                f(self
                    .find(n, IdPolicy::Random, RoutingScheme::Greedy)
                    .avg_branching),
                f(self
                    .find(n, IdPolicy::Probed, RoutingScheme::Greedy)
                    .avg_branching),
                f(self
                    .find(n, IdPolicy::Random, RoutingScheme::Balanced)
                    .avg_branching),
                f(self
                    .find(n, IdPolicy::Probed, RoutingScheme::Balanced)
                    .avg_branching),
            ]);
        }
        t
    }

    /// Qualitative checks matching the paper's claims. Returns violations.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let last = *self.sizes.last().unwrap();
        let first = self.sizes[0];
        // Balanced + probing: small constant max branching.
        for &n in &self.sizes {
            let r = self.find(n, IdPolicy::Probed, RoutingScheme::Balanced);
            if r.max_branching > 6.5 {
                bad.push(format!(
                    "balanced/probed max branching {} at n={n} (expect ~4)",
                    f(r.max_branching)
                ));
            }
        }
        // Basic grows with n.
        let b_small = self.find(first, IdPolicy::Random, RoutingScheme::Greedy);
        let b_large = self.find(last, IdPolicy::Random, RoutingScheme::Greedy);
        if b_large.max_branching <= b_small.max_branching + 2.0 {
            bad.push("basic/random max branching does not grow with n".into());
        }
        // Probing reduces the basic max branching at scale.
        let b_probed = self.find(last, IdPolicy::Probed, RoutingScheme::Greedy);
        if b_probed.max_branching >= b_large.max_branching {
            bad.push(format!(
                "probing does not reduce basic max branching ({} vs {})",
                f(b_probed.max_branching),
                f(b_large.max_branching)
            ));
        }
        // Avg branching: ~2 probed, 2..4 random, both ~constant.
        for &n in &self.sizes {
            let r = self.find(n, IdPolicy::Probed, RoutingScheme::Balanced);
            if !(1.5..=2.6).contains(&r.avg_branching) {
                bad.push(format!(
                    "balanced/probed avg branching {} at n={n} (expect ~2)",
                    f(r.avg_branching)
                ));
            }
            let r = self.find(n, IdPolicy::Random, RoutingScheme::Balanced);
            if !(1.5..=4.2).contains(&r.avg_branching) {
                bad.push(format!(
                    "balanced/random avg branching {} at n={n} (expect ~3)",
                    f(r.avg_branching)
                ));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_matches_paper_shape() {
        let fig = run(256, 2, 2);
        assert_eq!(fig.sizes, vec![16, 32, 64, 128, 256]);
        assert_eq!(fig.rows.len(), 5 * 4);
        let bad = fig.check();
        assert!(bad.is_empty(), "{bad:?}");
    }

    #[test]
    fn tables_render() {
        let fig = run(64, 1, 1);
        let a = fig.table_a().to_markdown();
        assert!(a.contains("Fig 7a"));
        assert!(a.contains("balanced/probed"));
        let b = fig.table_b().to_markdown();
        assert!(b.contains("Fig 7b"));
    }
}
