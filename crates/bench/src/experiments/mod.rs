//! Paper experiments (one module per figure/table — see DESIGN.md §3).

pub mod ablation;
pub mod churn;
pub mod crosscheck;
pub mod degradation;
pub mod fig25;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod gossip_exp;
pub mod heights;
pub mod maan_exp;
pub mod partition;
pub mod wan;
