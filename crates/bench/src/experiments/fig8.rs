//! Fig. 8 — load balance of aggregation messages.
//!
//! Reproduces both panels of the paper's Fig. 8 (§5.3), measured on the
//! *live protocol* running in the discrete-event simulator (not from the
//! analytic tree shape — `repro crosscheck` shows the two agree):
//!
//! * **(a)** per-node aggregation-message counts in a 512-node network,
//!   nodes sorted by load ("node rank", log-scale y in the paper). The
//!   centralized scheme routes every raw value to the root (most loaded
//!   node ≈ 511 messages); basic DAT peaks around a few tens; balanced DAT
//!   stays in single digits;
//! * **(b)** the *imbalance factor* (max/mean messages per node) for
//!   network sizes 100..1000: ≈linear for centralized, ≈log for basic,
//!   ≈constant (about 2) for balanced.

use dat_chord::{ChordConfig, IdPolicy, IdSpace, NodeAddr, RoutingScheme, StaticRing};
use dat_core::{AggregationMode, DatConfig, StackNode};
use dat_obs::LogHist;
use dat_sim::harness::prestabilized_dat;
use dat_sim::{imbalance_factor, rank_order, SimNet};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::table::{f, Table};

/// The three aggregation schemes of Fig. 8.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// No aggregation tree: every value routed to the root.
    Centralized,
    /// Basic DAT (greedy finger routes).
    Basic,
    /// Balanced DAT (finger-limited routes).
    Balanced,
}

impl Scheme {
    /// All three, in paper order.
    pub const ALL: [Scheme; 3] = [Scheme::Centralized, Scheme::Basic, Scheme::Balanced];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Centralized => "centralized",
            Scheme::Basic => "basic DAT",
            Scheme::Balanced => "balanced DAT",
        }
    }
}

const BITS: u8 = 32;

/// Build the overlay, run `epochs` aggregation epochs after a warm-up, and
/// return the per-node *received aggregation messages per epoch* — the
/// paper's metric ("the root node is the most loaded one with 511
/// aggregation messages" in a 512-node centralized network).
pub fn measure_message_counts(n: usize, scheme: Scheme, seed: u64, epochs: u64) -> Vec<f64> {
    let mut net = build_loaded_net(n, scheme, seed);
    net.run_for(epochs * 1_000);
    // Per-node received aggregation messages / epoch.
    net.addrs()
        .iter()
        .map(|&addr| {
            let node = net.node(addr).unwrap();
            let count = match scheme {
                // Centralized load = `route` frames received (deliveries
                // at the root plus forwarding burden on the way).
                Scheme::Centralized => node.chord().metrics().received_of("route"),
                // DAT load = updates received from children.
                _ => node.dat_metrics().received_of("dat_update"),
            };
            count as f64 / epochs as f64
        })
        .collect()
}

/// Build the pre-converged, registered and warmed-up overlay every Fig. 8
/// measurement starts from: metrics are reset at return, so whatever runs
/// next is measured in isolation.
fn build_loaded_net(n: usize, scheme: Scheme, seed: u64) -> SimNet<StackNode> {
    let space = IdSpace::new(BITS);
    let mut rng = SmallRng::seed_from_u64(seed);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        // The overlay is static and pre-converged: relax maintenance so the
        // measurement window is dominated by aggregation traffic.
        stabilize_ms: 120_000,
        fix_fingers_ms: 120_000,
        check_pred_ms: 120_000,
        ..ChordConfig::default()
    };
    let (mode, routing) = match scheme {
        Scheme::Centralized => (AggregationMode::Centralized, RoutingScheme::Greedy),
        Scheme::Basic => (AggregationMode::Continuous, RoutingScheme::Greedy),
        Scheme::Balanced => (AggregationMode::Continuous, RoutingScheme::Balanced),
    };
    let dcfg = DatConfig {
        scheme: routing,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net: SimNet<StackNode> = prestabilized_dat(&ring, ccfg, dcfg, seed);
    net.set_record_upcalls(false);
    // Register the aggregation and a local value at every node.
    let addrs = net.addrs();
    for (i, &addr) in addrs.iter().enumerate() {
        let node = net.node_mut(addr).expect("node");
        let key = node.register("cpu-usage", mode);
        node.set_local(key, 10.0 + (i % 80) as f64);
    }
    // Warm-up: one epoch to fill pipelines, then measure.
    net.run_for(1_500);
    for &addr in &addrs {
        net.node_mut(addr).unwrap().reset_metrics();
    }
    net
}

/// Run a short balanced-DAT window and return the fleet's merged
/// Prometheus dump — the exposition-format check `repro --metrics` (and
/// CI) validates.
pub fn prometheus_snapshot(n: usize, seed: u64) -> String {
    let mut net = build_loaded_net(n, Scheme::Balanced, seed);
    net.run_for(2_000);
    dat_sim::fleet_prometheus(&net)
}

/// Fold per-node load counts into one fleet-merged [`LogHist`] (one
/// single-sample histogram per node, merged pairwise) — the exact
/// count/sum/min/max carried by the histogram must reproduce the ranked
/// distribution's totals.
pub fn fleet_load_hist(per_node: &[u64]) -> LogHist {
    let mut fleet = LogHist::default();
    for &c in per_node {
        let mut one = LogHist::default();
        one.observe(c);
        fleet.merge(&one);
    }
    fleet
}

/// Fig. 8a: the rank-ordered distribution at `n` nodes.
pub struct Fig8a {
    /// Network size.
    pub n: usize,
    /// Per-scheme rank-ordered per-node message counts.
    pub ranked: Vec<(Scheme, Vec<u64>)>,
}

/// Run Fig. 8a.
pub fn run_a(n: usize, seed: u64) -> Fig8a {
    let ranked = Scheme::ALL
        .iter()
        .map(|&s| {
            let counts = measure_message_counts(n, s, seed, 4);
            let ints: Vec<u64> = counts.iter().map(|&c| c.round() as u64).collect();
            (s, rank_order(&ints))
        })
        .collect();
    Fig8a { n, ranked }
}

impl Fig8a {
    /// Ranked-distribution table (selected ranks, as the paper's log-log
    /// plot would show).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Fig 8a — aggregation messages by node rank (n = {})",
                self.n
            ),
            &["rank", "centralized", "basic DAT", "balanced DAT"],
        );
        let mut rank = 1usize;
        while rank <= self.n {
            let mut row = vec![rank.to_string()];
            for (_, counts) in &self.ranked {
                row.push(counts.get(rank - 1).copied().unwrap_or(0).to_string());
            }
            t.row(row);
            rank *= 2;
        }
        t
    }

    /// The fleet-merged load histogram for one scheme.
    pub fn hist_of(&self, s: Scheme) -> LogHist {
        self.ranked
            .iter()
            .find(|(x, _)| *x == s)
            .map(|(_, c)| fleet_load_hist(c))
            .unwrap_or_default()
    }

    /// Max load per scheme (read off the merged histogram's exact max).
    pub fn max_of(&self, s: Scheme) -> u64 {
        self.hist_of(s).max()
    }

    /// Qualitative checks vs the paper.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let c = self.max_of(Scheme::Centralized);
        let b = self.max_of(Scheme::Basic);
        let l = self.max_of(Scheme::Balanced);
        // "the root node is the most loaded one with 511 aggregation
        // messages" for n = 512.
        if (c as i64 - (self.n as i64 - 1)).abs() > (self.n / 10) as i64 {
            bad.push(format!("centralized max {c} far from n-1 = {}", self.n - 1));
        }
        // Paper: basic 24, balanced 4 at 512 — qualitative bands.
        let log2n = (self.n as f64).log2();
        if (b as f64) < log2n * 0.8 || (b as f64) > log2n * 4.0 {
            bad.push(format!("basic max {b} outside O(log n) band"));
        }
        if l > 8 {
            bad.push(format!("balanced max {l} > 8 (expect ~4)"));
        }
        if !(l < b && b < c) {
            bad.push(format!(
                "ordering violated: balanced {l} < basic {b} < centralized {c}"
            ));
        }
        bad
    }
}

/// Fig. 8b: imbalance factor vs network size.
pub struct Fig8b {
    /// Sizes measured.
    pub sizes: Vec<usize>,
    /// (scheme, per-size imbalance factors).
    pub imbalance: Vec<(Scheme, Vec<f64>)>,
}

/// Run Fig. 8b over `sizes`.
pub fn run_b(sizes: &[usize], seed: u64) -> Fig8b {
    let imbalance = Scheme::ALL
        .iter()
        .map(|&s| {
            let per_size = sizes
                .iter()
                .map(|&n| {
                    let counts = measure_message_counts(n, s, seed, 4);
                    // Imbalance over the nodes that actually process
                    // aggregation traffic (leaves receive nothing; counting
                    // their zeros would compare against an artificial mean).
                    let ints: Vec<u64> = counts
                        .iter()
                        .map(|&c| c.round() as u64)
                        .filter(|&c| c > 0)
                        .collect();
                    imbalance_factor(&ints)
                })
                .collect();
            (s, per_size)
        })
        .collect();
    Fig8b {
        sizes: sizes.to_vec(),
        imbalance,
    }
}

impl Fig8b {
    /// The table of imbalance factors.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig 8b — imbalance factor (max/mean messages) vs network size",
            &["n", "centralized", "basic DAT", "balanced DAT"],
        );
        for (i, &n) in self.sizes.iter().enumerate() {
            let mut row = vec![n.to_string()];
            for (_, v) in &self.imbalance {
                row.push(f(v[i]));
            }
            t.row(row);
        }
        t
    }

    fn series(&self, s: Scheme) -> &[f64] {
        &self.imbalance.iter().find(|(x, _)| *x == s).unwrap().1
    }

    /// Qualitative checks vs the paper.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let cen = self.series(Scheme::Centralized);
        let bas = self.series(Scheme::Basic);
        let bal = self.series(Scheme::Balanced);
        let last = self.sizes.len() - 1;
        // Balanced: ~constant around 2 (paper: 1.9 at 100, 2.0 at 1000).
        for (i, &v) in bal.iter().enumerate() {
            if v > 4.0 {
                bad.push(format!("balanced imbalance {v:.2} at n={}", self.sizes[i]));
            }
        }
        // Centralized grows much faster than basic; basic faster than balanced.
        if cen[last] <= bas[last] || bas[last] <= bal[last] {
            bad.push(format!(
                "ordering at n={}: centralized {:.1}, basic {:.1}, balanced {:.1}",
                self.sizes[last], cen[last], bas[last], bal[last]
            ));
        }
        // Centralized roughly linear: value at max size much larger than at min.
        if cen[last] < cen[0] * 2.0 {
            bad.push("centralized imbalance not growing ~linearly".into());
        }
        // Basic grows slowly (log-like): growth factor well below the size factor.
        let size_factor = self.sizes[last] as f64 / self.sizes[0] as f64;
        if bas[last] / bas[0].max(1.0) > size_factor / 2.0 {
            bad.push("basic imbalance growing too fast (should be ~log n)".into());
        }
        bad
    }
}

/// Measure per-node counts with a provided scheme — exposed for the
/// crosscheck experiment.
pub fn counts_for(n: usize, scheme: Scheme, seed: u64) -> Vec<f64> {
    measure_message_counts(n, scheme, seed, 4)
}

/// Access the aggregation rendezvous address used by these experiments —
/// useful for tests needing the root.
pub fn root_addr_of(n: usize, seed: u64) -> NodeAddr {
    let space = IdSpace::new(BITS);
    let mut rng = SmallRng::seed_from_u64(seed);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let key = dat_chord::hash_to_id(space, b"cpu-usage");
    let book = dat_sim::harness::addr_book(&ring);
    book[&ring.successor(key)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8a_small_network_shape() {
        let fig = run_a(64, 42);
        let bad = fig.check();
        assert!(bad.is_empty(), "{bad:?}");
        // Rank table renders.
        let md = fig.table().to_markdown();
        assert!(md.contains("rank"));
    }

    #[test]
    fn fig8b_small_sweep_shape() {
        let fig = run_b(&[50, 100, 200], 42);
        let bad = fig.check();
        assert!(bad.is_empty(), "{bad:?}");
    }

    #[test]
    fn fleet_hist_reproduces_ranked_distribution_exactly() {
        let fig = run_a(64, 42);
        for (scheme, ranked) in &fig.ranked {
            let h = fig.hist_of(*scheme);
            assert_eq!(h.count(), ranked.len() as u64, "{scheme:?} count");
            assert_eq!(h.sum(), ranked.iter().sum::<u64>(), "{scheme:?} sum");
            assert_eq!(
                h.max(),
                ranked.first().copied().unwrap_or(0),
                "{scheme:?} max"
            );
            assert_eq!(
                h.min(),
                ranked.last().copied().unwrap_or(0),
                "{scheme:?} min"
            );
        }
    }

    #[test]
    fn prometheus_snapshot_validates() {
        let text = prometheus_snapshot(32, 11);
        let samples = dat_obs::validate_prometheus(&text).expect("dump parses");
        assert!(samples > 0);
    }

    #[test]
    fn total_dat_messages_equal_n_minus_1_per_epoch() {
        // Every non-root sends exactly one update per epoch, and every
        // update is received exactly once.
        let counts = measure_message_counts(100, Scheme::Balanced, 7, 4);
        let total: f64 = counts.iter().sum();
        assert!(
            (total - 99.0).abs() < 1.5,
            "total per-epoch received messages {total} != 99"
        );
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    #[ignore]
    fn debug_missing_updates() {
        let n = 30;
        let space = IdSpace::new(BITS);
        let mut rng = SmallRng::seed_from_u64(7);
        let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
        let ccfg = ChordConfig {
            space,
            stabilize_ms: 120_000,
            fix_fingers_ms: 120_000,
            check_pred_ms: 120_000,
            ..ChordConfig::default()
        };
        let dcfg = DatConfig {
            scheme: RoutingScheme::Balanced,
            epoch_ms: 1_000,
            d0_hint: Some(ring.d0()),
            ..DatConfig::default()
        };
        let mut net: SimNet<StackNode> = prestabilized_dat(&ring, ccfg, dcfg, 7);
        net.set_record_upcalls(false);
        let addrs = net.addrs();
        for (i, &addr) in addrs.iter().enumerate() {
            let node = net.node_mut(addr).expect("node");
            let key = node.register("cpu-usage", AggregationMode::Continuous);
            node.set_local(key, 10.0 + i as f64);
        }
        net.run_for(1_500);
        for &addr in &addrs {
            net.node_mut(addr).unwrap().reset_metrics();
        }
        let key = dat_chord::hash_to_id(space, b"cpu-usage");
        let epochs = 4u64;
        net.run_for(epochs * 1_000);
        for &addr in &addrs {
            let node = net.node(addr).unwrap();
            let sent = node.dat_metrics().sent_of("dat_update");
            let recv = node.dat_metrics().received_of("dat_update");
            let pd = node.parent_decision(key);
            println!(
                "addr={:?} id={} epoch={} sent={} recv={} parent={:?}",
                addr,
                node.me().id,
                node.epoch(),
                sent,
                recv,
                pd.parent().map(|p| p.id)
            );
        }
    }
}
