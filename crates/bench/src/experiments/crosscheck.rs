//! Simulator vs analysis cross-validation (§5.1).
//!
//! The paper stresses that "both RPC-based and simulator-based setups use
//! the same Chord and DAT layers. They indeed have the consistent results
//! for the metrics we measured." Our analogue validates the third leg:
//! the live protocol (in the simulator) against the static-ring analysis —
//! every node's protocol-computed DAT parent must equal the parent the
//! global-view tree construction assigns, and the measured per-node
//! message counts must equal the analytic branching factors.

use dat_chord::{ChordConfig, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use dat_core::{AggregationMode, DatConfig, DatTree, StackNode};
use dat_sim::harness::{addr_book, prestabilized_dat};
use dat_sim::SimNet;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::table::Table;

/// Cross-validation result for one configuration.
#[derive(Clone, Copy, Debug)]
pub struct CrosscheckRow {
    /// Network size.
    pub n: usize,
    /// Routing scheme.
    pub scheme: RoutingScheme,
    /// Nodes whose live parent decision disagrees with the analytic tree.
    pub parent_mismatches: usize,
    /// Nodes whose measured per-epoch message count differs from the
    /// analytic branching factor.
    pub count_mismatches: usize,
}

/// Experiment output.
pub struct Crosscheck {
    /// Per-configuration rows.
    pub rows: Vec<CrosscheckRow>,
}

const BITS: u8 = 32;

/// Cross-validate live protocol vs static analysis at the given sizes.
pub fn run(sizes: &[usize], seed: u64) -> Crosscheck {
    let mut rows = Vec::new();
    for &n in sizes {
        for scheme in [RoutingScheme::Greedy, RoutingScheme::Balanced] {
            rows.push(check_one(n, scheme, seed));
        }
    }
    Crosscheck { rows }
}

fn check_one(n: usize, scheme: RoutingScheme, seed: u64) -> CrosscheckRow {
    let space = IdSpace::new(BITS);
    let mut rng = SmallRng::seed_from_u64(seed + n as u64);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let key = dat_chord::hash_to_id(space, b"cpu-usage");
    let tree = DatTree::build(&ring, key, scheme);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 60_000,
        fix_fingers_ms: 60_000,
        check_pred_ms: 60_000,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net: SimNet<StackNode> = prestabilized_dat(&ring, ccfg, dcfg, seed);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    for &id in ring.ids() {
        let node = net.node_mut(book[&id]).unwrap();
        let k = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(k, 1.0);
    }
    // Parent agreement (before any traffic).
    let mut parent_mismatches = 0usize;
    for &id in ring.ids() {
        let live = net.node(book[&id]).unwrap().parent_decision(key).parent();
        let analytic = tree.parent(id);
        if live.map(|p| p.id) != analytic {
            parent_mismatches += 1;
        }
    }
    // Message-count agreement: warm-up, reset, measure E epochs.
    net.run_for(1_500);
    for &id in ring.ids() {
        net.node_mut(book[&id]).unwrap().reset_metrics();
    }
    let epochs = 4u64;
    net.run_for(epochs * 1_000);
    let mut count_mismatches = 0usize;
    for &id in ring.ids() {
        let got = net
            .node(book[&id])
            .unwrap()
            .dat_metrics()
            .received_of("dat_update") as f64
            / epochs as f64;
        let want = tree.branching(id) as f64;
        if (got - want).abs() > 0.26 {
            count_mismatches += 1;
        }
    }
    CrosscheckRow {
        n,
        scheme,
        parent_mismatches,
        count_mismatches,
    }
}

impl Crosscheck {
    /// The agreement table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Cross-validation — live protocol vs static analysis",
            &["n", "scheme", "parent mismatches", "msg-count mismatches"],
        );
        for r in &self.rows {
            t.row(vec![
                r.n.to_string(),
                r.scheme.label().to_string(),
                r.parent_mismatches.to_string(),
                r.count_mismatches.to_string(),
            ]);
        }
        t
    }

    /// Strict check: exact agreement expected.
    pub fn check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for r in &self.rows {
            if r.parent_mismatches != 0 {
                bad.push(format!(
                    "{} parent mismatches at n={} ({})",
                    r.parent_mismatches,
                    r.n,
                    r.scheme.label()
                ));
            }
            if r.count_mismatches != 0 {
                bad.push(format!(
                    "{} message-count mismatches at n={} ({})",
                    r.count_mismatches,
                    r.n,
                    r.scheme.label()
                ));
            }
        }
        bad
    }
}

/// Parity of ideal-ring helpers against table-based decisions, exposed for
/// tests.
pub fn parent_parity(n: usize, scheme: RoutingScheme, seed: u64) -> usize {
    check_one(n, scheme, seed).parent_mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_and_analytic_agree_exactly() {
        let c = run(&[32, 100], 13);
        let bad = c.check();
        assert!(bad.is_empty(), "{bad:?}");
        assert!(c.table().to_markdown().contains("mismatches"));
    }
}
