//! Experiment harness: build whole overlays inside the simulator.
//!
//! Two construction paths, mirroring how the paper's experiments are run:
//!
//! * **live joins** ([`spawn_live_ring`]): every node executes the real
//!   join + stabilization protocol — used for churn/convergence
//!   experiments and to validate the protocol itself;
//! * **pre-stabilized** ([`prestabilized_chord`], [`prestabilized_stack`]
//!   and the protocol-specific wrappers): finger tables are materialised
//!   from a [`StaticRing`] global view, so a 8192-node converged overlay
//!   exists in milliseconds — used for the message-distribution
//!   experiments (Fig. 8) where only the converged behavior matters.
//!
//! All application overlays are built as [`StackNode`]s hosting the
//! relevant [`dat_core::AppProtocol`] handlers, so any mix of protocols
//! (DAT + MAAN + gossip…) shares one Chord substrate per node.

use dat_chord::{ChordConfig, ChordNode, Id, NodeAddr, NodeStatus, StaticRing};
use dat_core::{
    DatConfig, DatProtocol, ExplicitConfig, ExplicitProtocol, GossipConfig, GossipProtocol,
    StackNode,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::net::{Actor, SimNet};

/// Read-only access to an actor's Chord substrate, so convergence checks
/// work uniformly over bare overlays and protocol stacks.
pub trait ChordView {
    /// The underlying Chord state machine.
    fn chord_view(&self) -> &ChordNode;
}

impl ChordView for ChordNode {
    fn chord_view(&self) -> &ChordNode {
        self
    }
}

impl ChordView for StackNode {
    fn chord_view(&self) -> &ChordNode {
        self.chord()
    }
}

/// Map ring identifiers to simulator addresses `0..n` (sorted-id order).
pub fn addr_book(ring: &StaticRing) -> std::collections::HashMap<Id, NodeAddr> {
    ring.ids()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, NodeAddr(i as u64)))
        .collect()
}

/// Build a pre-stabilized Chord overlay: every node starts with the exact
/// finger table a converged protocol would hold.
pub fn prestabilized_chord(ring: &StaticRing, cfg: ChordConfig, seed: u64) -> SimNet<ChordNode> {
    assert_eq!(cfg.space, ring.space(), "config/ring space mismatch");
    let book = addr_book(ring);
    let addr_of = |id: Id| book[&id];
    let mut net = SimNet::new(seed);
    for &id in ring.ids() {
        let mut node = ChordNode::new(cfg, id, addr_of(id));
        let table = ring.table_of_with(id, cfg.succ_list_len, &addr_of);
        let outs = node.start_with_table(table);
        let addr = node.me().addr;
        net.add_node(node);
        net.apply(addr, outs);
    }
    net
}

/// Build a pre-stabilized overlay of protocol stacks. `make(i, id, addr)`
/// returns the [`StackNode`] for the `i`-th ring member — register any mix
/// of application protocols on it before returning.
pub fn prestabilized_stack<F>(
    ring: &StaticRing,
    ccfg: ChordConfig,
    seed: u64,
    mut make: F,
) -> SimNet<StackNode>
where
    F: FnMut(usize, Id, NodeAddr) -> StackNode,
{
    assert_eq!(ccfg.space, ring.space(), "config/ring space mismatch");
    let book = addr_book(ring);
    let addr_of = |id: Id| book[&id];
    let mut net = SimNet::new(seed);
    for (i, &id) in ring.ids().iter().enumerate() {
        let addr = addr_of(id);
        let mut node = make(i, id, addr);
        assert_eq!(node.me().id, id, "make() must honor the assigned id");
        assert_eq!(node.me().addr, addr, "make() must honor the assigned addr");
        let table = ring.table_of_with(id, ccfg.succ_list_len, &addr_of);
        let outs = node.start_with_table(table);
        net.add_node(node);
        net.apply(addr, outs);
    }
    net
}

/// Build a pre-stabilized DAT overlay (Chord + aggregation protocol).
pub fn prestabilized_dat(
    ring: &StaticRing,
    ccfg: ChordConfig,
    dcfg: DatConfig,
    seed: u64,
) -> SimNet<StackNode> {
    prestabilized_stack(ring, ccfg, seed, |_, id, addr| {
        StackNode::new(ccfg, id, addr).with_app(DatProtocol::new(dcfg))
    })
}

/// Build a pre-stabilized explicit-tree overlay (the churn baseline). Tree
/// membership still forms via the live `JoinTree` protocol — only the
/// Chord substrate is pre-converged, matching the DAT side for a fair
/// comparison.
pub fn prestabilized_explicit(
    ring: &StaticRing,
    ccfg: ChordConfig,
    ecfg: ExplicitConfig,
    key: Id,
    seed: u64,
) -> SimNet<StackNode> {
    prestabilized_stack(ring, ccfg, seed, |_, id, addr| {
        StackNode::new(ccfg, id, addr).with_app(ExplicitProtocol::new(ecfg, key))
    })
}

/// Build a pre-stabilized push-sum gossip overlay; node `i` contributes
/// `value_of(i)`.
pub fn prestabilized_gossip<F>(
    ring: &StaticRing,
    ccfg: ChordConfig,
    gcfg: GossipConfig,
    seed: u64,
    mut value_of: F,
) -> SimNet<StackNode>
where
    F: FnMut(usize) -> f64,
{
    prestabilized_stack(ring, ccfg, seed, |i, id, addr| {
        StackNode::new(ccfg, id, addr).with_app(GossipProtocol::new(gcfg, value_of(i)))
    })
}

/// Spawn an `n`-node overlay through real protocol joins. Nodes join
/// sequentially (each given `join_gap_ms` of virtual time), then the
/// network runs `settle_ms` longer for fingers to converge. Returns the
/// network and the sorted final identifiers.
pub fn spawn_live_ring(
    n: usize,
    cfg: ChordConfig,
    seed: u64,
    join_gap_ms: u64,
    settle_ms: u64,
) -> (SimNet<ChordNode>, Vec<Id>) {
    assert!(n >= 1);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    let mut net = SimNet::new(seed);
    let first_id = cfg.space.random(&mut rng);
    let mut first = ChordNode::new(cfg, first_id, NodeAddr(0));
    let outs = first.start_create();
    let bootstrap = first.me();
    net.add_node(first);
    net.apply(NodeAddr(0), outs);
    for i in 1..n {
        let id = cfg.space.random(&mut rng);
        let mut node = ChordNode::new(cfg, id, NodeAddr(i as u64));
        let outs = node.start_join(bootstrap);
        net.add_node(node);
        net.apply(NodeAddr(i as u64), outs);
        net.run_for(join_gap_ms);
    }
    net.run_for(settle_ms);
    let mut ids: Vec<Id> = net
        .iter_nodes()
        .filter(|(_, node)| node.status() == NodeStatus::Active)
        .map(|(_, node)| node.me().id)
        .collect();
    ids.sort_unstable();
    (net, ids)
}

/// Check that the overlay's successor pointers form exactly the ring over
/// the given sorted ids. Works for bare Chord overlays and protocol stacks
/// alike (anything [`ChordView`]).
pub fn ring_converged<A>(net: &SimNet<A>, sorted_ids: &[Id]) -> bool
where
    A: Actor + ChordView,
{
    if sorted_ids.len() <= 1 {
        return true;
    }
    let pos: std::collections::HashMap<Id, usize> = sorted_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    for (_, actor) in net.iter_nodes() {
        let node = actor.chord_view();
        if node.status() != NodeStatus::Active {
            continue;
        }
        let Some(&i) = pos.get(&node.me().id) else {
            return false;
        };
        let expect = sorted_ids[(i + 1) % sorted_ids.len()];
        match node.table().successor() {
            Some(s) if s.id == expect => {}
            _ => return false,
        }
    }
    true
}

/// Fraction of finger entries across the overlay that match the ideal
/// (fully converged) finger tables implied by the membership.
pub fn finger_convergence<A>(net: &SimNet<A>, sorted_ids: &[Id]) -> f64
where
    A: Actor + ChordView,
{
    let ring = StaticRing::from_ids(
        net.iter_nodes()
            .next()
            .map(|(_, n)| n.chord_view().space())
            .unwrap_or_default(),
        sorted_ids.to_vec(),
    );
    let mut total = 0usize;
    let mut good = 0usize;
    for (_, actor) in net.iter_nodes() {
        let node = actor.chord_view();
        if node.status() != NodeStatus::Active {
            continue;
        }
        let me = node.me().id;
        let space = node.space();
        for j in 1..=space.bits() {
            let ideal = ring.successor(space.finger_start(me, j));
            if ideal == me {
                continue; // finger wraps to self: no entry expected
            }
            total += 1;
            if node.table().finger(j).map(|f| f.node.id) == Some(ideal) {
                good += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        good as f64 / total as f64
    }
}

/// Pick `k` distinct random addresses of live nodes.
pub fn sample_addrs<A: Actor>(net: &SimNet<A>, k: usize, rng: &mut SmallRng) -> Vec<NodeAddr> {
    let mut addrs = net.addrs();
    let k = k.min(addrs.len());
    // Partial Fisher-Yates.
    for i in 0..k {
        let j = rng.random_range(i..addrs.len());
        addrs.swap(i, j);
    }
    addrs.truncate(k);
    addrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{IdPolicy, IdSpace};

    fn cfg(bits: u8) -> ChordConfig {
        ChordConfig {
            space: IdSpace::new(bits),
            ..ChordConfig::default()
        }
    }

    #[test]
    fn prestabilized_ring_is_converged_from_t0() {
        let mut rng = SmallRng::seed_from_u64(9);
        let ring = StaticRing::build(IdSpace::new(24), 64, IdPolicy::Random, &mut rng);
        let net = prestabilized_chord(&ring, cfg(24), 1);
        assert!(ring_converged(&net, ring.ids()));
        assert_eq!(finger_convergence(&net, ring.ids()), 1.0);
    }

    #[test]
    fn prestabilized_dat_stack_is_converged_too() {
        let mut rng = SmallRng::seed_from_u64(11);
        let ring = StaticRing::build(IdSpace::new(24), 32, IdPolicy::Random, &mut rng);
        let net = prestabilized_dat(&ring, cfg(24), DatConfig::default(), 1);
        assert!(ring_converged(&net, ring.ids()));
        assert_eq!(finger_convergence(&net, ring.ids()), 1.0);
    }

    #[test]
    fn prestabilized_lookup_resolves_in_log_hops() {
        let mut rng = SmallRng::seed_from_u64(10);
        let ring = StaticRing::build(IdSpace::new(24), 128, IdPolicy::Random, &mut rng);
        let mut net = prestabilized_chord(&ring, cfg(24), 2);
        net.take_upcalls();
        let from = NodeAddr(0);
        let key = Id(123_456);
        let req = net.with_node(from, |n| n.lookup(key)).unwrap();
        net.run_for(10_000);
        let ups = net.take_upcalls();
        let (owner, hops) = ups
            .iter()
            .find_map(|u| match &u.upcall {
                dat_chord::Upcall::LookupDone {
                    req: r,
                    owner,
                    hops,
                    ..
                } if *r == req => Some((owner.id, *hops)),
                _ => None,
            })
            .expect("lookup completes");
        assert_eq!(owner, ring.successor(key));
        assert!(hops <= 2 * 7 + 2, "hops {hops} not O(log n)"); // log2(128)=7
    }

    #[test]
    fn retransmission_rides_out_twenty_percent_loss() {
        // A live 8-node bring-up under 20% i.i.d. loss with a single
        // protocol-level join attempt per node. End-to-end RTO
        // retransmission (same datagram, same first hop) recovers every
        // dropped exchange; the single-shot config loses joins for good.
        let build = |max_retries: u32| {
            let c = ChordConfig {
                max_retries,
                max_join_retries: 1,
                ..cfg(24)
            };
            let mut rng = SmallRng::seed_from_u64(0x10c5);
            let mut net = SimNet::new(0x10c5);
            net.set_loss(crate::latency::LossModel::new(0.2));
            let first_id = c.space.random(&mut rng);
            let mut first = ChordNode::new(c, first_id, NodeAddr(0));
            let outs = first.start_create();
            let bootstrap = first.me();
            net.add_node(first);
            net.apply(NodeAddr(0), outs);
            for i in 1..8u64 {
                let id = c.space.random(&mut rng);
                let mut node = ChordNode::new(c, id, NodeAddr(i));
                let outs = node.start_join(bootstrap);
                net.add_node(node);
                net.apply(NodeAddr(i), outs);
                net.run_for(5_000);
            }
            net.run_for(120_000);
            net
        };

        let net = build(8);
        let mut ids: Vec<Id> = net
            .iter_nodes()
            .filter(|(_, n)| n.status() == NodeStatus::Active)
            .map(|(_, n)| n.me().id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids.len(), 8, "with retries every node joins despite loss");
        assert!(ring_converged(&net, &ids), "lossy ring still closes");
        let retransmits: u64 = net.iter_nodes().map(|(_, n)| n.metrics().retransmits).sum();
        assert!(retransmits > 0, "20% loss must exercise the RTO path");

        let net = build(0);
        let active = net
            .iter_nodes()
            .filter(|(_, n)| n.status() == NodeStatus::Active)
            .count();
        assert!(
            active < 8,
            "single-shot joins should not all survive 20% loss"
        );
    }

    #[test]
    fn live_ring_converges_small() {
        let (net, ids) = spawn_live_ring(8, cfg(32), 3, 3_000, 30_000);
        assert_eq!(ids.len(), 8, "every node must join");
        assert!(ring_converged(&net, &ids), "successor ring must close");
        assert!(
            finger_convergence(&net, &ids) > 0.9,
            "fingers mostly converged: {}",
            finger_convergence(&net, &ids)
        );
    }

    #[test]
    fn stack_hosts_two_protocols_on_one_substrate() {
        // One StackNode per ring member hosting DAT *and* gossip: the
        // engine multiplexes both over a single finger table.
        let mut rng = SmallRng::seed_from_u64(21);
        let ring = StaticRing::build(IdSpace::new(24), 16, IdPolicy::Random, &mut rng);
        let c = cfg(24);
        let mut net = prestabilized_stack(&ring, c, 7, |i, id, addr| {
            StackNode::new(c, id, addr)
                .with_app(DatProtocol::new(DatConfig::default()))
                .with_app(GossipProtocol::new(GossipConfig::default(), i as f64))
        });
        assert!(ring_converged(&net, ring.ids()));
        net.run_for(30_000);
        let addr = NodeAddr(0);
        let n = net.node(addr).unwrap();
        assert_eq!(
            n.protocols(),
            vec![dat_core::DAT_PROTO, dat_core::GOSSIP_PROTO]
        );
        assert!(n.gossip().round() > 0, "gossip rounds ran");
    }

    #[test]
    fn sample_addrs_distinct() {
        let mut rng = SmallRng::seed_from_u64(4);
        let ring = StaticRing::build(IdSpace::new(24), 32, IdPolicy::Random, &mut rng);
        let net = prestabilized_chord(&ring, cfg(24), 5);
        let s = sample_addrs(&net, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        let all = sample_addrs(&net, 999, &mut rng);
        assert_eq!(all.len(), 32);
    }
}
