//! Churn soak harness: simulated hours of randomized faults against one
//! continuous aggregation, with per-epoch invariant accounting.
//!
//! The paper's churn experiments (§6) run minutes of a single fault kind.
//! This harness composes every fault the simulator can inject — crashes
//! with restarts, partitions with heals, flaky links, duplication bursts,
//! and (optionally) a root crash mid-epoch — into a seed-replayable
//! schedule, then checks the *self-healing* properties the failure
//! semantics promise:
//!
//! * completeness returns to 1.0 within a bounded number of epochs after
//!   the fault schedule drains, and stays there;
//! * no contributor is double-counted once re-parenting transients (at
//!   most `child_ttl_epochs` + tree height epochs) have passed;
//! * exactly one node reports per key per epoch once the report fence has
//!   settled;
//! * a root crash loses at most one epoch of reports, and the failed-over
//!   root's *first* report already covers (nearly) the whole grid — the
//!   warm-failover replica, not a cold rebuild.
//!
//! Every run is fully determined by [`SoakConfig::seed`]; the generated
//! [`FaultPlan`]'s digest is returned so a failing run can be replayed
//! bit-for-bit.

// New module: crashes in a soak run must carry context, never a bare
// unwrap panic.
#![deny(clippy::unwrap_used)]

use std::collections::{HashMap, HashSet};

use dat_chord::{ChordConfig, Id, IdPolicy, IdSpace, NodeAddr, RoutingScheme, StaticRing};
use dat_core::{AggregationMode, Completeness, DatConfig, DatEvent, DatProtocol, StackNode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fault::{FaultPlan, LinkFault};
use crate::harness::{addr_book, prestabilized_dat};
use crate::net::SimNet;

/// The attribute every soak node registers and feeds with `1.0`, so the
/// ground-truth Sum/Count/contributors all equal the node count.
pub const SOAK_ATTR: &str = "cpu-usage";

/// Parameters of one soak run. Everything is virtual time; a run is fully
/// determined by `seed`.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Ring size.
    pub nodes: usize,
    /// Identifier-space width (bits).
    pub space_bits: u8,
    /// Seed for ring construction, the fault schedule and the transport.
    pub seed: u64,
    /// Aggregation epoch length, ms.
    pub epoch_ms: u64,
    /// Fault-free head (ring warms up, reports reach steady state).
    pub warmup_ms: u64,
    /// Randomized-fault window length.
    pub churn_ms: u64,
    /// Fault-free tail (the self-healing claims are checked here).
    pub quiesce_ms: u64,
    /// Number of fault episodes spread over the churn window.
    pub episodes: usize,
    /// Also crash the acting root mid-epoch (warm-failover probe).
    pub crash_root: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            nodes: 64,
            space_bits: 32,
            seed: 1,
            epoch_ms: 5_000,
            warmup_ms: 30_000,
            churn_ms: 240_000,
            quiesce_ms: 150_000,
            episodes: 6,
            crash_root: true,
        }
    }
}

impl SoakConfig {
    /// Total virtual run length, ms.
    pub fn total_ms(&self) -> u64 {
        self.warmup_ms + self.churn_ms + self.quiesce_ms
    }

    /// When the fault schedule drains (start of the quiesce tail), ms.
    pub fn churn_end_ms(&self) -> u64 {
        self.warmup_ms + self.churn_ms
    }

    /// Epochs allowed for completeness to return to 1.0 after the faults
    /// stop: soft-state expiry plus one cascade through the tree height,
    /// plus slack for the chord maintenance timers to re-converge.
    pub fn recovery_bound_epochs(&self) -> u64 {
        let height = (usize::BITS - self.nodes.leading_zeros()) as u64;
        DatConfig::default().child_ttl_epochs + height + 4
    }
}

/// One root report observed during the run (timestamp quantized to the
/// half-epoch drain step).
#[derive(Clone, Copy, Debug)]
pub struct SoakReport {
    /// Drain time, virtual ms.
    pub t_ms: u64,
    /// The reporting node's simulator address.
    pub addr: NodeAddr,
    /// The reporter's local epoch index.
    pub epoch: u64,
    /// The report's completeness accounting.
    pub completeness: Completeness,
}

/// Everything a soak run measured. `violations` lists every invariant
/// breach with the seed embedded, so asserting `violations.is_empty()`
/// prints the replay handle for free.
#[derive(Clone, Debug)]
pub struct SoakOutcome {
    /// The seed that produced this run (replay handle).
    pub seed: u64,
    /// Digest of the generated fault schedule (replay fingerprint).
    pub digest: u64,
    /// Virtual run length, ms.
    pub sim_ms: u64,
    /// Discrete events the simulator processed.
    pub events_processed: u64,
    /// Nodes alive when the run ended (all of them, for a healthy run —
    /// every crash is paired with a restart).
    pub live_nodes_final: usize,
    /// Every root report observed, in drain order.
    pub log: Vec<SoakReport>,
    /// Invariant breaches (empty for a healthy run).
    pub violations: Vec<String>,
    /// First time after the churn window with full coverage, if any.
    pub recovered_at_ms: Option<u64>,
    /// Epochs from churn end to recovery, if recovery happened.
    pub recovery_epochs: Option<u64>,
    /// The bound `recovery_epochs` is expected to respect.
    pub recovery_bound_epochs: u64,
    /// Lowest coverage ratio observed during the churn window (shows the
    /// accounting actually registered the injected degradation).
    pub min_ratio_during_churn: f64,
    /// Contributors in the final observed report.
    pub final_contributors: u64,
    /// Coverage ratio of the final observed report.
    pub final_ratio: f64,
    /// When the acting root was crashed, if `crash_root` was set.
    pub root_crash_at_ms: Option<u64>,
    /// Delay from the root crash to the next report from any node.
    pub failover_delay_ms: Option<u64>,
    /// Contributors in that first post-crash report (warm ≈ ring size).
    pub failover_contributors: Option<u64>,
    /// Fleet-wide request timeouts over the whole run (all layers), from
    /// the merged observability registry.
    pub fleet_timeouts: u64,
    /// Fleet-wide datagram retransmissions over the whole run.
    pub fleet_retransmits: u64,
    /// Fleet-wide undecodable/dropped payloads over the whole run.
    pub fleet_dropped: u64,
    /// Fleet-wide failure-detector suspicion transitions (Healthy →
    /// Suspect) over the whole run.
    pub fleet_suspects: u64,
    /// Fleet-wide flap-damping quarantines over the whole run.
    pub fleet_quarantines: u64,
    /// Fleet-wide payloads shed by the bounded engine inboxes (all
    /// classes) over the whole run.
    pub fleet_sheds: u64,
}

/// Run one soak: build a pre-stabilized ring, inject the seeded fault
/// schedule, drain reports every half epoch, then score the run.
pub fn run_soak(cfg: &SoakConfig) -> SoakOutcome {
    let space = IdSpace::new(cfg.space_bits);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let ring = StaticRing::build(space, cfg.nodes, IdPolicy::Probed, &mut rng);
    // Aggressive maintenance: a crashed node leaves stale fingers behind,
    // and a lookup forwarded through one is dropped silently (forwarding
    // is unacked, like the paper's UDP prototype). The only repair lever
    // is the round-robin finger fixer — at the default cadence one
    // full two-strike eviction takes minutes, longer than the quiesce
    // tail, so joins through a stale route would starve. One fixer step
    // per second bounds stale-finger lifetime to ~2·space_bits seconds.
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 2_500,
        fix_fingers_ms: 1_000,
        check_pred_ms: 2_000,
        req_timeout_ms: 1_200,
        max_retries: 1,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: cfg.epoch_ms,
        hold_ms: 500,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net: SimNet<StackNode> = prestabilized_dat(&ring, ccfg, dcfg, cfg.seed);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let key = dat_chord::hash_to_id(space, SOAK_ATTR.as_bytes());
    for &id in ring.ids() {
        if let Some(node) = net.node_mut(book[&id]) {
            let k = node.register(SOAK_ATTR, AggregationMode::Continuous);
            node.set_local(k, 1.0);
        }
    }
    let root_addr = book[&ring.successor(key)];
    // One node is exempt from every fault so restarts always have a live,
    // reachable bootstrap in the majority component.
    let stable_addr = if root_addr == NodeAddr(0) {
        NodeAddr(1)
    } else {
        NodeAddr(0)
    };
    let bootstrap = match net.node(stable_addr) {
        Some(n) => n.me(),
        None => unreachable!("stable node exists at construction"),
    };
    let id_of: HashMap<NodeAddr, Id> = book.iter().map(|(id, a)| (*a, *id)).collect();
    // A crash-restart is a new incarnation: it must come back under a
    // fresh id *and* a fresh address. Reusing the old address deadlocks
    // the rejoin — the joiner answers pings and neighbor queries at the
    // address its dead identity is known by, so neighbors never evict it
    // and keep routing the join lookup straight back to the joiner, which
    // cannot serve lookups while joining. The id is perturbed per
    // incarnation so the ring-position bookkeeping (e.g. the root's id
    // staying just past the key) is preserved. The registry maps a live
    // address back to its lineage and is shared between the fault-plan
    // restart hook and the rejoin supervisor below.
    type Lineage = (HashMap<NodeAddr, (Id, u64)>, u64);
    let registry: std::rc::Rc<std::cell::RefCell<Lineage>> =
        std::rc::Rc::new(std::cell::RefCell::new((HashMap::new(), cfg.nodes as u64)));
    let spawn = {
        let registry = std::rc::Rc::clone(&registry);
        move |addr: NodeAddr| -> Option<(StackNode, Vec<dat_chord::Output>)> {
            let mut reg = registry.borrow_mut();
            let (lineage, next_addr) = &mut *reg;
            let (base, gen) = match lineage.remove(&addr) {
                Some(l) => l,
                None => (*id_of.get(&addr)?, 0),
            };
            let id = space.add(base, gen + 1);
            let fresh = NodeAddr(*next_addr);
            *next_addr += 1;
            lineage.insert(fresh, (base, gen + 1));
            let mut node = StackNode::new(ccfg, id, fresh).with_app(DatProtocol::new(dcfg));
            let k = node.register(SOAK_ATTR, AggregationMode::Continuous);
            node.set_local(k, 1.0);
            let outs = node.start_join(bootstrap);
            Some((node, outs))
        }
    };
    net.set_restart_fn(spawn.clone());
    let all = net.addrs();
    let (plan, root_crash_at_ms) = build_plan(&mut rng, cfg, &all, root_addr, stable_addr);
    let digest = plan.digest();
    net.set_fault_plan(plan);

    // Drive in half-epoch steps, draining every node's reports so a
    // report's timestamp is within half an epoch of when it was emitted.
    let total = cfg.total_ms();
    let step = (cfg.epoch_ms / 2).max(1);
    // A restart that lands while stale routes still point at the node's
    // dead incarnation can exhaust the chord layer's join retries and park
    // the node in `Joining` forever. Real grid daemons retry; this
    // supervisor does the same — a node stuck joining for a few epochs is
    // torn down and re-joined through the stable bootstrap.
    let rejoin_after_ms = 4 * cfg.epoch_ms;
    let mut joining_since: HashMap<NodeAddr, u64> = HashMap::new();
    let mut log: Vec<SoakReport> = Vec::new();
    // The sorted address list is only rebuilt when membership actually
    // changed (crash/restart), not on every half-epoch step — the engine's
    // membership epoch is the cache key. Within a step the cache may
    // briefly name a node the supervisor below just tore down; the
    // per-address lookups already tolerate that (dead → `None` → skip),
    // exactly as a fresh `addrs()` snapshot taken before the teardown
    // would.
    let mut cached_addrs: Vec<NodeAddr> = net.addrs();
    let mut cached_epoch = net.membership_epoch();
    while net.now().as_millis() < total {
        let now = net.now().as_millis();
        net.run_for(step.min(total - now));
        let t = net.now().as_millis();
        if net.membership_epoch() != cached_epoch {
            cached_addrs = net.addrs();
            cached_epoch = net.membership_epoch();
        }
        for &addr in &cached_addrs {
            let Some(node) = net.node_mut(addr) else {
                continue;
            };
            for ev in node.take_events() {
                if let DatEvent::Report {
                    key: k,
                    epoch,
                    completeness,
                    ..
                } = ev
                {
                    if k == key {
                        log.push(SoakReport {
                            t_ms: t,
                            addr,
                            epoch,
                            completeness,
                        });
                    }
                }
            }
        }
        for &addr in &cached_addrs {
            let stuck = net
                .node(addr)
                .is_some_and(|n| n.status() == dat_chord::NodeStatus::Joining);
            if !stuck {
                joining_since.remove(&addr);
                continue;
            }
            let since = *joining_since.entry(addr).or_insert(t);
            if t.saturating_sub(since) >= rejoin_after_ms {
                let _ = net.crash(addr);
                if let Some((node, outs)) = spawn(addr) {
                    let fresh = node.me().addr;
                    net.add_node(node);
                    net.apply(fresh, outs);
                }
                joining_since.insert(addr, t);
            }
        }
    }
    let live = net.addrs().len();
    // Fleet-wide loss/retry tallies: counted per node all along, surfaced
    // here via the merged observability registry (survivors only — a
    // crashed incarnation's counters die with it, like real monitoring).
    let fleet = crate::obs::fleet_registry(&net);
    let fleet_totals = (
        fleet.counter_sum("timeouts_total"),
        fleet.counter_sum("retransmits_total"),
        fleet.counter_sum("dropped_total"),
        fleet.counter_sum("suspects_total"),
        fleet.counter_sum("quarantines_total"),
        fleet.counter_sum("engine_shed_total"),
    );
    score(
        cfg,
        digest,
        net.events_processed(),
        live,
        log,
        root_crash_at_ms,
        fleet_totals,
    )
}

/// Check the run's invariants and fold everything into a [`SoakOutcome`].
fn score(
    cfg: &SoakConfig,
    digest: u64,
    events_processed: u64,
    live_nodes_final: usize,
    log: Vec<SoakReport>,
    root_crash_at_ms: Option<u64>,
    fleet_totals: (u64, u64, u64, u64, u64, u64),
) -> SoakOutcome {
    let (
        fleet_timeouts,
        fleet_retransmits,
        fleet_dropped,
        fleet_suspects,
        fleet_quarantines,
        fleet_sheds,
    ) = fleet_totals;
    let seed = cfg.seed;
    let n = cfg.nodes as u64;
    let churn_end = cfg.churn_end_ms();
    let recovery_bound_epochs = cfg.recovery_bound_epochs();
    let settle_start = churn_end + recovery_bound_epochs * cfg.epoch_ms;
    let mut violations = Vec::new();

    // Every crash in the plan is paired with a restart, so the population
    // must come back to exactly `nodes` — a leak here would make the
    // contributor invariants below lie in both directions.
    if live_nodes_final != cfg.nodes {
        violations.push(format!(
            "seed {seed}: harness population leak — {live_nodes_final} live nodes              at end of run, configured {}",
            cfg.nodes
        ));
    }

    // The settled tail: after soft-state expiry and one full cascade, the
    // self-healing claims must hold on *every* report.
    let settled: Vec<&SoakReport> = log.iter().filter(|r| r.t_ms >= settle_start).collect();
    if settled.is_empty() {
        violations.push(format!(
            "seed {seed}: no reports at all after settle point {settle_start} ms"
        ));
    }
    for r in &settled {
        if r.completeness.contributors > n {
            violations.push(format!(
                "seed {seed}: {} contributors > {n} nodes at {} ms — double counting \
                 survived past the decay bound",
                r.completeness.contributors, r.t_ms
            ));
        }
        if r.completeness.contributors < n {
            violations.push(format!(
                "seed {seed}: coverage stuck at {}/{n} at {} ms — completeness never \
                 healed",
                r.completeness.contributors, r.t_ms
            ));
        }
    }
    let reporters: HashSet<NodeAddr> = settled.iter().map(|r| r.addr).collect();
    if reporters.len() > 1 {
        violations.push(format!(
            "seed {seed}: {} distinct nodes still reporting after the fence settled: \
             {reporters:?}",
            reporters.len()
        ));
    } else {
        // A single surviving reporter must advance its fence strictly.
        for w in settled.windows(2) {
            if w[1].completeness.seq <= w[0].completeness.seq {
                violations.push(format!(
                    "seed {seed}: report fence not strictly monotone at {} ms \
                     ({} -> {})",
                    w[1].t_ms, w[0].completeness.seq, w[1].completeness.seq
                ));
                break;
            }
        }
    }

    let recovered_at_ms = log
        .iter()
        .find(|r| r.t_ms >= churn_end && r.completeness.contributors >= n)
        .map(|r| r.t_ms);
    if recovered_at_ms.is_none() {
        violations.push(format!(
            "seed {seed}: completeness never returned to 1.0 after the fault \
             schedule drained at {churn_end} ms"
        ));
    }
    let recovery_epochs = recovered_at_ms.map(|t| (t - churn_end).div_ceil(cfg.epoch_ms));

    let min_ratio_during_churn = log
        .iter()
        .filter(|r| r.t_ms >= cfg.warmup_ms && r.t_ms < churn_end)
        .map(|r| r.completeness.ratio)
        .fold(f64::INFINITY, f64::min);

    let (failover_delay_ms, failover_contributors) = match root_crash_at_ms {
        Some(rc) => match log.iter().find(|r| r.t_ms > rc) {
            Some(first) => (Some(first.t_ms - rc), Some(first.completeness.contributors)),
            None => {
                violations.push(format!(
                    "seed {seed}: no report from any node after the root crash at {rc} ms"
                ));
                (None, None)
            }
        },
        None => (None, None),
    };

    let (final_contributors, final_ratio) = log
        .last()
        .map(|r| (r.completeness.contributors, r.completeness.ratio))
        .unwrap_or((0, 0.0));

    SoakOutcome {
        seed,
        digest,
        sim_ms: cfg.total_ms(),
        events_processed,
        live_nodes_final,
        log,
        violations,
        recovered_at_ms,
        recovery_epochs,
        recovery_bound_epochs,
        min_ratio_during_churn,
        final_contributors,
        final_ratio,
        root_crash_at_ms,
        failover_delay_ms,
        failover_contributors,
        fleet_timeouts,
        fleet_retransmits,
        fleet_dropped,
        fleet_suspects,
        fleet_quarantines,
        fleet_sheds,
    }
}

/// Generate the seeded fault schedule: the churn window is sliced into
/// `episodes` non-overlapping slots, each holding one randomized episode
/// (crash burst, partition, flaky links, or a duplication burst), every
/// crash paired with a restart and every partition with a heal inside its
/// own slot — so the quiesce tail is genuinely fault-free. When
/// `crash_root` is set, the middle slot is reserved for crashing the
/// acting root mid-epoch.
fn build_plan(
    rng: &mut SmallRng,
    cfg: &SoakConfig,
    all: &[NodeAddr],
    root_addr: NodeAddr,
    stable_addr: NodeAddr,
) -> (FaultPlan, Option<u64>) {
    let churn_start = cfg.warmup_ms;
    let churn_end = cfg.churn_end_ms();
    let episodes = cfg.episodes.max(1) as u64;
    let slot = (cfg.churn_ms / episodes).max(4 * cfg.epoch_ms);
    let mut plan = FaultPlan::new();
    let mut root_crash_at = None;
    let crash_pool: Vec<NodeAddr> = all
        .iter()
        .copied()
        .filter(|a| *a != stable_addr && *a != root_addr)
        .collect();
    let part_pool: Vec<NodeAddr> = all.iter().copied().filter(|a| *a != stable_addr).collect();
    // One crash per lineage per plan: a restarted node comes back at a
    // fresh address, so a second crash aimed at the original address would
    // kill nothing while its paired restart still fires — silently growing
    // the population (and faulting the no-double-count scoring with a
    // perfectly honest 49-of-48 report).
    let mut crashed: HashSet<NodeAddr> = HashSet::new();
    for i in 0..cfg.episodes {
        let t0 = churn_start + i as u64 * slot;
        let t_end = (t0 + slot).min(churn_end);
        if t_end <= t0 + 3 * cfg.epoch_ms {
            continue; // degenerate tail slot — skip rather than overflow
        }
        if cfg.crash_root && i == cfg.episodes / 2 {
            // Crash the acting root exactly mid-epoch, restart it a few
            // epochs later (it then re-takes the key from the interim
            // root — a second, reverse handoff for free).
            let at = ((t0 / cfg.epoch_ms) + 1) * cfg.epoch_ms + cfg.epoch_ms / 2;
            let back = (at + 6 * cfg.epoch_ms)
                .min(t_end.saturating_sub(cfg.epoch_ms))
                .max(at + cfg.epoch_ms);
            plan = plan.crash_at(at, root_addr).restart_at(back, root_addr);
            root_crash_at = Some(at);
            continue;
        }
        plan = match rng.random_range(0u32..100) {
            // Crash burst: a few nodes die, each restarts within the slot.
            0..=39 => {
                let burst = rng.random_range(1..=(all.len() / 32).max(1));
                let mut p = plan;
                for _ in 0..burst {
                    let v = crash_pool[rng.random_range(0..crash_pool.len())];
                    if !crashed.insert(v) {
                        continue; // this lineage already crashed once
                    }
                    let at = t0 + rng.random_range(0..slot / 4).max(1);
                    let back = (at + cfg.epoch_ms * rng.random_range(2u64..=5))
                        .min(t_end.saturating_sub(cfg.epoch_ms))
                        .max(at + cfg.epoch_ms);
                    p = p.crash_at(at, v).restart_at(back, v);
                }
                p
            }
            // Partition: an eighth to a quarter of the ring, healed in-slot.
            40..=69 => {
                let g =
                    rng.random_range((part_pool.len() / 8).max(1)..=(part_pool.len() / 4).max(1));
                let mut pool = part_pool.clone();
                for j in 0..g {
                    let k = rng.random_range(j..pool.len());
                    pool.swap(j, k);
                }
                pool.truncate(g);
                let at = t0 + rng.random_range(0..slot / 4);
                let heal = (at + cfg.epoch_ms * rng.random_range(4u64..=8))
                    .min(t_end.saturating_sub(cfg.epoch_ms))
                    .max(at + cfg.epoch_ms);
                plan.partition_at(at, pool).heal_at(heal)
            }
            // Flaky links: a handful of lossy, slow directed links.
            70..=84 => {
                let m = rng.random_range(3u32..=8);
                let mut p = plan;
                for _ in 0..m {
                    let from = all[rng.random_range(0..all.len())];
                    let to = all[rng.random_range(0..all.len())];
                    if from == to {
                        continue;
                    }
                    let fault = LinkFault {
                        loss: 0.3 + 0.6 * rng.random::<f64>(),
                        extra_latency_ms: rng.random_range(0u64..50),
                    };
                    let at = t0 + rng.random_range(0..slot / 2);
                    let for_ms = rng
                        .random_range(cfg.epoch_ms..=(slot / 2).max(cfg.epoch_ms + 1))
                        .min(t_end.saturating_sub(at));
                    p = p.flaky_link_at(at, from, to, fault, for_ms);
                }
                p
            }
            // Duplication burst: the transport replays datagrams for a while.
            _ => {
                let prob = 0.05 + 0.25 * rng.random::<f64>();
                let at = t0 + rng.random_range(0..slot / 4);
                let off = (at + cfg.epoch_ms * rng.random_range(3u64..=6)).min(t_end);
                plan.duplication_at(at, prob).duplication_at(off, 0.0)
            }
        };
    }
    (plan, root_crash_at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_seed_deterministic_and_self_healing() {
        let cfg = SoakConfig::default();
        let mk = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let all: Vec<NodeAddr> = (0..64).map(NodeAddr).collect();
            build_plan(&mut rng, &cfg, &all, NodeAddr(5), NodeAddr(0))
        };
        let (a, rc_a) = mk(7);
        let (b, rc_b) = mk(7);
        assert_eq!(a.digest(), b.digest(), "same seed, same schedule");
        assert_eq!(rc_a, rc_b);
        let (c, _) = mk(8);
        assert_ne!(a.digest(), c.digest(), "different seed, different schedule");
        // Every crash has a later restart; every partition a later heal;
        // everything resolves before the churn window ends.
        use crate::fault::FaultEvent;
        let mut pending_crash: HashMap<NodeAddr, u64> = HashMap::new();
        let mut pending_part: Option<u64> = None;
        for (at, ev) in a.events() {
            assert!(*at < cfg.churn_end_ms(), "fault after churn end: {ev:?}");
            match ev {
                FaultEvent::Crash { node } => {
                    assert!(pending_crash.insert(*node, *at).is_none());
                }
                FaultEvent::Restart { node } => {
                    let t = pending_crash.remove(node).expect("restart without crash");
                    assert!(*at > t, "restart not after crash");
                }
                FaultEvent::Partition { .. } => {
                    assert!(pending_part.is_none(), "overlapping partitions");
                    pending_part = Some(*at);
                }
                FaultEvent::Heal => {
                    let t = pending_part.take().expect("heal without partition");
                    assert!(*at > t);
                }
                _ => {}
            }
        }
        assert!(pending_crash.is_empty(), "unrestarted crash victims");
        assert!(pending_part.is_none(), "unhealed partition");
        // The reserved middle slot crashes the root mid-epoch.
        let rc = rc_a.expect("crash_root set");
        assert_eq!(rc % cfg.epoch_ms, cfg.epoch_ms / 2, "root crash mid-epoch");
    }

    #[test]
    fn short_soak_heals_and_reports_once() {
        // A bounded smoke of the full pipeline: one minute of churn over a
        // small ring, every invariant checked. The simulated-hours runs
        // live in tests/soak_churn.rs.
        let cfg = SoakConfig {
            nodes: 24,
            seed: 3,
            epoch_ms: 2_000,
            warmup_ms: 20_000,
            churn_ms: 60_000,
            quiesce_ms: 60_000,
            episodes: 3,
            crash_root: false,
            ..SoakConfig::default()
        };
        let out = run_soak(&cfg);
        assert!(
            out.violations.is_empty(),
            "replay with seed {}: {:#?}",
            out.seed,
            out.violations
        );
        assert_eq!(out.final_contributors, 24);
        assert!((out.final_ratio - 1.0).abs() < 1e-9);
        assert!(out
            .recovery_epochs
            .is_some_and(|e| e <= out.recovery_bound_epochs));
    }
}
