//! Gray-failure soak harness: slow nodes, half-open links, overload
//! bursts and flapping peers against one continuous aggregation.
//!
//! The churn soak ([`crate::soak`]) exercises *clean* failures — crashes,
//! partitions, loss — which the RTO machinery alone recovers from. This
//! harness exercises the failures it cannot see: nodes that answer late
//! rather than never ([`crate::FaultEvent::Slowdown`]), links degraded in
//! one direction only ([`crate::FaultEvent::DegradeLink`]), junk floods
//! ([`crate::FaultEvent::Overload`]) and peers that oscillate between
//! healthy and slow. The health plane — phi-accrual suspicion, proactive
//! re-parenting, flap-damping quarantine, bounded inboxes — is what keeps
//! reports flowing, and the scored invariants check exactly that:
//!
//! * reports never stall: no gap between consecutive root reports exceeds
//!   one epoch plus `2 × RTO` (plus the drain-step quantization);
//! * degradation is *reported*, not hidden: completeness dips below 1.0
//!   while the faults are live, and returns to 1.0 in the quiesce tail;
//! * the suspicion path actually fires: at least one proactive re-parent
//!   (phi-triggered, ahead of any timeout) happens fleet-wide;
//! * flappers are quarantined and, once stable, rejoin;
//! * overload is shed (counted, visible) instead of queued unboundedly;
//! * every new counter renders into valid Prometheus exposition.
//!
//! Every run is fully determined by [`GrayConfig::seed`]; the generated
//! [`FaultPlan`]'s digest is the replay fingerprint.

// New module: failures here must carry context, never a bare unwrap panic.
#![deny(clippy::unwrap_used)]

use dat_chord::{ChordConfig, HealthConfig, Id, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use dat_core::tree::DatTree;
use dat_core::{AggregationMode, DatConfig, DatEvent, InboxPolicy, StackNode};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fault::{FaultPlan, LinkFault};
use crate::harness::{addr_book, prestabilized_dat};
use crate::net::SimNet;
use crate::soak::SoakReport;

/// The attribute every node registers and feeds with `1.0`.
pub const GRAY_ATTR: &str = "cpu-usage";

/// Parameters of one gray-failure soak run.
#[derive(Clone, Copy, Debug)]
pub struct GrayConfig {
    /// Ring size.
    pub nodes: usize,
    /// Identifier-space width (bits).
    pub space_bits: u8,
    /// Seed for ring construction and the transport.
    pub seed: u64,
    /// Aggregation epoch length, ms.
    pub epoch_ms: u64,
    /// Fault-free head (ring warms up, detector learns its baselines).
    pub warmup_ms: u64,
    /// Length of the slow-parent and flapper episodes, ms.
    pub episode_ms: u64,
    /// Fault-free tail (quarantine expiry, rejoin and healing land here).
    pub quiesce_ms: u64,
}

impl Default for GrayConfig {
    fn default() -> Self {
        GrayConfig {
            nodes: 32,
            space_bits: 32,
            seed: 1,
            epoch_ms: 5_000,
            warmup_ms: 40_000,
            episode_ms: 45_000,
            quiesce_ms: 90_000,
        }
    }
}

impl GrayConfig {
    /// Episode schedule: `(slow_at, degrade_at, overload_at, flap_at,
    /// faults_end)`. Episodes run back-to-back so each failure mode gets a
    /// clean window.
    fn schedule(&self) -> (u64, u64, u64, u64, u64) {
        let slow_at = self.warmup_ms;
        let degrade_at = slow_at + self.episode_ms;
        let overload_at = degrade_at + self.episode_ms / 2;
        let flap_at = overload_at + self.episode_ms / 2;
        let faults_end = flap_at + self.episode_ms;
        (slow_at, degrade_at, overload_at, flap_at, faults_end)
    }

    /// Total virtual run length, ms.
    pub fn total_ms(&self) -> u64 {
        self.schedule().4 + self.quiesce_ms
    }
}

/// Everything a gray run measured. `violations` embeds the seed, so
/// asserting emptiness prints the replay handle for free.
#[derive(Clone, Debug)]
pub struct GrayOutcome {
    /// The seed that produced this run.
    pub seed: u64,
    /// Digest of the generated fault schedule.
    pub digest: u64,
    /// Virtual run length, ms.
    pub sim_ms: u64,
    /// Discrete events the simulator processed.
    pub events_processed: u64,
    /// Every root report observed, in drain order.
    pub log: Vec<SoakReport>,
    /// Invariant breaches (empty for a healthy run).
    pub violations: Vec<String>,
    /// Largest gap between consecutive root reports after warmup, ms.
    pub max_report_gap_ms: u64,
    /// Lowest coverage ratio while faults were live.
    pub min_ratio_during_faults: f64,
    /// Coverage ratio of the final report.
    pub final_ratio: f64,
    /// Fleet-wide Healthy → Suspect transitions.
    pub fleet_suspects: u64,
    /// Fleet-wide flap-damping quarantines.
    pub fleet_quarantines: u64,
    /// Fleet-wide quarantine → Healthy rejoins.
    pub fleet_rejoins: u64,
    /// Fleet-wide phi-triggered re-parents (ahead of any RTO).
    pub fleet_proactive_reparents: u64,
    /// Fleet-wide payloads shed by the bounded inboxes (all classes).
    pub fleet_sheds: u64,
}

/// Run one gray-failure soak: pre-stabilized ring, deterministic victim
/// selection from the implicit DAT, four failure episodes, scored tail.
pub fn run_gray(cfg: &GrayConfig) -> GrayOutcome {
    let space = IdSpace::new(cfg.space_bits);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let ring = StaticRing::build(space, cfg.nodes, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 2_500,
        fix_fingers_ms: 1_000,
        check_pred_ms: 2_000,
        req_timeout_ms: 1_200,
        rto_max_ms: 4_000,
        max_retries: 1,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: cfg.epoch_ms,
        hold_ms: 500,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net: SimNet<StackNode> = prestabilized_dat(&ring, ccfg, dcfg, cfg.seed);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let key = dat_chord::hash_to_id(space, GRAY_ATTR.as_bytes());
    // Health plane tuned for the soak's timescales: shorter quarantine so
    // rejoin lands inside the quiesce tail, and a flap window wide enough
    // to catch the injected oscillation.
    let hcfg = HealthConfig {
        quarantine_ms: 25_000,
        flap_window_ms: 60_000,
        flap_threshold: 3,
        ..HealthConfig::default()
    };
    // Bounded inboxes on: the overload burst must be shed, not queued.
    let inbox = InboxPolicy {
        service_ms: 20,
        agg_capacity: 64,
        stats_capacity: 8,
    };
    for &id in ring.ids() {
        if let Some(node) = net.node_mut(book[&id]) {
            let k = node.register(GRAY_ATTR, AggregationMode::Continuous);
            node.set_local(k, 1.0);
            node.set_health_config(hcfg);
            node.set_inbox_policy(inbox);
        }
    }

    // Deterministic victim selection from the implicit DAT: interior
    // (parent) nodes carry subtrees, so slowing one visibly degrades
    // completeness without silencing the root. Ranked by branching so the
    // slow-parent episode hits the biggest subtree.
    let tree = DatTree::build(&ring, key, RoutingScheme::Balanced);
    let root_id = tree.root();
    let mut interior: Vec<Id> = tree.interior_nodes().filter(|v| *v != root_id).collect();
    interior.sort_by_key(|v| (std::cmp::Reverse(tree.branching(*v)), v.0));
    // Leaves (for the flapper / overload victims) — nodes whose slowness
    // must be *detected* but whose subtree loss is small.
    let mut leaves: Vec<Id> = tree
        .all_ids()
        .copied()
        .filter(|v| *v != root_id && tree.branching(*v) == 0)
        .collect();
    leaves.sort_by_key(|v| v.0);
    let slow_victim = book[interior.first().unwrap_or(&ring.ids()[0])];
    let degrade_victim = book[interior.get(1).or(leaves.first()).unwrap_or(&ring.ids()[0])];
    let degrade_parent = tree
        .parent(*interior.get(1).or(leaves.first()).unwrap_or(&ring.ids()[0]))
        .map(|p| book[&p])
        .unwrap_or(book[&root_id]);
    let overload_victim = book[leaves.first().unwrap_or(&ring.ids()[0])];
    let flap_victim = book[leaves.get(1).unwrap_or(&ring.ids()[0])];

    let (slow_at, degrade_at, overload_at, flap_at, faults_end) = cfg.schedule();
    let mut plan = FaultPlan::new()
        // Episode 1 — slow parent: serializes every delivery through a
        // multi-second processing budget. Children must suspect it and
        // re-parent proactively; the root keeps reporting with degraded
        // completeness.
        .slowdown_at(slow_at, slow_victim, 3_000, cfg.episode_ms)
        // Episode 2 — half-open link: the victim's traffic toward its DAT
        // parent is mostly lost and jittered, the reverse direction is
        // clean. The parent must suspect the child and stop waiting on it.
        .degrade_link_at(
            degrade_at,
            degrade_victim,
            degrade_parent,
            LinkFault {
                loss: 0.9,
                extra_latency_ms: 400,
            },
            300,
            cfg.episode_ms / 2,
        )
        // Episode 3 — overload burst: junk floods one node faster than its
        // virtual service rate; the bounded inbox must shed, not stall.
        .overload_at(overload_at, overload_victim, 400, 2_000);
    // Episode 4 — flapper: short slowdowns with clean gaps, oscillating
    // Suspect → recover until flap damping quarantines the peer.
    let cycle = 15_000u64;
    let mut t = flap_at;
    while t + cycle <= faults_end {
        plan = plan.slowdown_at(t, flap_victim, 3_000, 10_000);
        t += cycle;
    }
    let digest = plan.digest();
    net.set_fault_plan(plan);

    // Drive in half-epoch steps, draining every node's reports.
    let total = cfg.total_ms();
    let step = (cfg.epoch_ms / 2).max(1);
    let mut log: Vec<SoakReport> = Vec::new();
    // Gray faults never change membership (nothing crashes), so one
    // sorted address snapshot serves the whole drive loop; the membership
    // epoch check is belt-and-braces against future fault kinds.
    let mut cached_addrs = net.addrs();
    let mut cached_epoch = net.membership_epoch();
    while net.now().as_millis() < total {
        let now = net.now().as_millis();
        net.run_for(step.min(total - now));
        let t = net.now().as_millis();
        if net.membership_epoch() != cached_epoch {
            cached_addrs = net.addrs();
            cached_epoch = net.membership_epoch();
        }
        for &addr in &cached_addrs {
            let Some(node) = net.node_mut(addr) else {
                continue;
            };
            for ev in node.take_events() {
                if let DatEvent::Report {
                    key: k,
                    epoch,
                    completeness,
                    ..
                } = ev
                {
                    if k == key {
                        log.push(SoakReport {
                            t_ms: t,
                            addr,
                            epoch,
                            completeness,
                        });
                    }
                }
            }
        }
    }

    let fleet = crate::obs::fleet_registry(&net);
    let fleet_suspects = fleet.counter_sum("suspects_total");
    let fleet_quarantines = fleet.counter_sum("quarantines_total");
    let fleet_rejoins = fleet.counter_sum("rejoins_total");
    let fleet_proactive_reparents = fleet.counter_sum("proactive_reparents_total");
    let fleet_sheds = fleet.counter_sum("engine_shed_total");

    let seed = cfg.seed;
    let n = cfg.nodes as u64;
    let mut violations = Vec::new();

    // The overloaded node's own exposition must carry the new counters and
    // parse as valid Prometheus text.
    match net.node(overload_victim) {
        Some(node) => {
            let text = node.render_prometheus();
            for series in ["engine_shed_total", "suspects_total"] {
                if !text.contains(series) {
                    violations.push(format!(
                        "seed {seed}: `{series}` missing from the Prometheus exposition"
                    ));
                }
            }
            if let Err(e) = dat_obs::validate_prometheus(&text) {
                violations.push(format!("seed {seed}: invalid Prometheus exposition: {e}"));
            }
        }
        None => violations.push(format!("seed {seed}: overload victim vanished")),
    }

    // No stalls: consecutive root reports never drift further apart than
    // one epoch plus 2×RTO (the proactive bound) plus drain quantization.
    let gap_bound = cfg.epoch_ms + 2 * ccfg.rto_max_ms + step;
    let mut max_gap = 0u64;
    let after_warmup: Vec<&SoakReport> = log.iter().filter(|r| r.t_ms >= cfg.warmup_ms).collect();
    if after_warmup.len() < 2 {
        violations.push(format!("seed {seed}: too few reports after warmup"));
    }
    for w in after_warmup.windows(2) {
        let gap = w[1].t_ms - w[0].t_ms;
        max_gap = max_gap.max(gap);
        if gap > gap_bound {
            violations.push(format!(
                "seed {seed}: epoch report stalled — {gap} ms between reports at {} ms \
                 exceeds the {gap_bound} ms bound (epoch + 2×RTO + drain step)",
                w[1].t_ms
            ));
        }
    }

    // Degradation must be *visible* in completeness while faults are live…
    let min_ratio_during_faults = log
        .iter()
        .filter(|r| r.t_ms >= slow_at && r.t_ms < faults_end)
        .map(|r| r.completeness.ratio)
        .fold(f64::INFINITY, f64::min);
    if min_ratio_during_faults >= 1.0 {
        violations.push(format!(
            "seed {seed}: completeness never dipped below 1.0 — the gray faults were \
             invisible to the accounting"
        ));
    }
    // …and healed by the end of the quiesce tail.
    let final_ratio = log.last().map(|r| r.completeness.ratio).unwrap_or(0.0);
    let healed = log
        .iter()
        .any(|r| r.t_ms >= faults_end && r.completeness.contributors >= n);
    if !healed {
        violations.push(format!(
            "seed {seed}: completeness never returned to full coverage after the \
             faults ended at {faults_end} ms"
        ));
    }

    // The suspicion machinery must have actually fired, each stage of it.
    if fleet_suspects == 0 {
        violations.push(format!(
            "seed {seed}: no peer was ever suspected — the detector slept through \
             the gray failures"
        ));
    }
    if fleet_proactive_reparents == 0 {
        violations.push(format!(
            "seed {seed}: no proactive re-parent — every failover waited for an RTO"
        ));
    }
    if fleet_quarantines == 0 {
        violations.push(format!(
            "seed {seed}: the flapping peer was never quarantined"
        ));
    }
    if fleet_rejoins == 0 {
        violations.push(format!(
            "seed {seed}: no quarantined peer ever rejoined after stabilizing"
        ));
    }
    if fleet_sheds == 0 {
        violations.push(format!(
            "seed {seed}: the overload burst was never shed — the inbox queued it all"
        ));
    }

    GrayOutcome {
        seed,
        digest,
        sim_ms: total,
        events_processed: net.events_processed(),
        max_report_gap_ms: max_gap,
        min_ratio_during_faults,
        final_ratio,
        log,
        violations,
        fleet_suspects,
        fleet_quarantines,
        fleet_rejoins,
        fleet_proactive_reparents,
        fleet_sheds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_ordered_and_bounded() {
        let cfg = GrayConfig::default();
        let (slow, degrade, overload, flap, end) = cfg.schedule();
        assert!(cfg.warmup_ms <= slow && slow < degrade);
        assert!(degrade < overload && overload < flap && flap < end);
        assert_eq!(cfg.total_ms(), end + cfg.quiesce_ms);
    }

    /// Two identically-seeded runs must inject the identical schedule and
    /// observe the identical report log — the replay guarantee the digest
    /// stands for. (Full invariant runs live in tests/gray_failures.rs.)
    #[test]
    fn gray_run_is_seed_replayable() {
        let cfg = GrayConfig {
            nodes: 12,
            warmup_ms: 20_000,
            episode_ms: 20_000,
            quiesce_ms: 30_000,
            seed: 7,
            ..GrayConfig::default()
        };
        let a = run_gray(&cfg);
        let b = run_gray(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.log.len(), b.log.len());
        for (x, y) in a.log.iter().zip(&b.log) {
            assert_eq!((x.t_ms, x.addr, x.epoch), (y.t_ms, y.addr, y.epoch));
            assert_eq!(x.completeness.contributors, y.completeness.contributors);
        }
    }
}
