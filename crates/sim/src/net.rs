//! The simulated network: hosts sans-io actors, delivers messages with
//! modeled latency/loss, and fires timers — all in deterministic virtual
//! time.

use std::collections::HashMap;

use dat_chord::{ChordMsg, ChordNode, Input, NodeAddr, Output, TimerKind, Upcall};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::latency::{LatencyModel, LossModel};
use crate::queue::EventQueue;
use crate::time::SimTime;

/// A protocol state machine the engine can host. Implemented for
/// [`ChordNode`] here and for `dat_core::DatNode` in
/// [`crate::harness`].
pub trait Actor {
    /// The transport endpoint this actor answers to.
    fn addr(&self) -> NodeAddr;
    /// Drive one input through the actor.
    fn on_input(&mut self, input: Input) -> Vec<Output>;
}

impl Actor for ChordNode {
    fn addr(&self) -> NodeAddr {
        self.me().addr
    }
    fn on_input(&mut self, input: Input) -> Vec<Output> {
        self.handle(input)
    }
}

/// Events the engine schedules internally.
#[derive(Clone, Debug)]
enum SimEvent {
    Deliver {
        to: NodeAddr,
        from: NodeAddr,
        msg: ChordMsg,
    },
    Timer {
        node: NodeAddr,
        kind: TimerKind,
    },
}

/// An upcall surfaced by some node, timestamped.
#[derive(Clone, Debug)]
pub struct UpcallRecord {
    /// When it fired.
    pub at: SimTime,
    /// Which node surfaced it.
    pub node: NodeAddr,
    /// The upcall payload.
    pub upcall: Upcall,
}

/// Per-node transport-level counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Messages this node handed to the transport.
    pub sent: u64,
    /// Messages delivered to this node.
    pub delivered: u64,
}

/// The discrete-event network engine.
///
/// Generic over the hosted [`Actor`] so the same engine runs bare Chord
/// overlays, DAT stacks, and the monitoring application — exactly the
/// layering of the paper's prototype simulator (§4).
pub struct SimNet<A: Actor> {
    queue: EventQueue<SimEvent>,
    nodes: HashMap<NodeAddr, A>,
    rng: SmallRng,
    latency: LatencyModel,
    loss: LossModel,
    upcalls: Vec<UpcallRecord>,
    record_upcalls: bool,
    stats: HashMap<NodeAddr, LinkStats>,
    /// Messages dropped by the loss model or sent to dead nodes.
    pub dropped: u64,
    events_processed: u64,
}

impl<A: Actor> SimNet<A> {
    /// A fresh engine with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        SimNet {
            queue: EventQueue::new(),
            nodes: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
            latency: LatencyModel::default(),
            loss: LossModel::NONE,
            upcalls: Vec::new(),
            record_upcalls: true,
            stats: HashMap::new(),
            dropped: 0,
            events_processed: 0,
        }
    }

    /// Replace the latency model.
    pub fn set_latency(&mut self, model: LatencyModel) {
        self.latency = model;
    }

    /// Replace the loss model.
    pub fn set_loss(&mut self, model: LossModel) {
        self.loss = model;
    }

    /// Stop/start recording upcalls (recording is on by default; long churn
    /// runs may want it off to bound memory).
    pub fn set_record_upcalls(&mut self, on: bool) {
        self.record_upcalls = on;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of hosted (live) nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes are hosted.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Pending events (messages in flight + armed timers).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Add a node. Panics if the address is taken.
    pub fn add_node(&mut self, actor: A) {
        let addr = actor.addr();
        let prev = self.nodes.insert(addr, actor);
        assert!(prev.is_none(), "duplicate node address {addr:?}");
        self.stats.entry(addr).or_default();
    }

    /// Immutable access to a node.
    pub fn node(&self, addr: NodeAddr) -> Option<&A> {
        self.nodes.get(&addr)
    }

    /// Mutable access to a node (does not process outputs — use
    /// [`Self::with_node`] to run protocol actions).
    pub fn node_mut(&mut self, addr: NodeAddr) -> Option<&mut A> {
        self.nodes.get_mut(&addr)
    }

    /// All live node addresses (unordered).
    pub fn addrs(&self) -> Vec<NodeAddr> {
        let mut a: Vec<NodeAddr> = self.nodes.keys().copied().collect();
        a.sort_unstable();
        a
    }

    /// Iterate over live nodes.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (&NodeAddr, &A)> {
        self.nodes.iter()
    }

    /// Run `f` against node `addr` and process the outputs it returns.
    /// This is how hosts start joins, trigger aggregations, etc.
    pub fn with_node<F, R>(&mut self, addr: NodeAddr, f: F) -> Option<R>
    where
        F: FnOnce(&mut A) -> (R, Vec<Output>),
    {
        let actor = self.nodes.get_mut(&addr)?;
        let (r, out) = f(actor);
        self.apply(addr, out);
        Some(r)
    }

    /// Crash a node: remove it abruptly. In-flight traffic to it is lost;
    /// peers discover the failure via timeouts (ungraceful churn).
    pub fn crash(&mut self, addr: NodeAddr) -> Option<A> {
        self.nodes.remove(&addr)
    }

    /// Process the outputs `from` produced.
    pub fn apply(&mut self, from: NodeAddr, outputs: Vec<Output>) {
        for o in outputs {
            match o {
                Output::Send { to, msg } => {
                    self.stats.entry(from).or_default().sent += 1;
                    if self.loss.drops(&mut self.rng) {
                        self.dropped += 1;
                        continue;
                    }
                    let delay = self.latency.sample(&mut self.rng);
                    self.queue.push_after(
                        delay,
                        SimEvent::Deliver {
                            to: to.addr,
                            from,
                            msg,
                        },
                    );
                }
                Output::SetTimer { kind, delay_ms } => {
                    self.queue
                        .push_after(delay_ms, SimEvent::Timer { node: from, kind });
                }
                Output::Upcall(upcall) => {
                    if self.record_upcalls {
                        self.upcalls.push(UpcallRecord {
                            at: self.queue.now(),
                            node: from,
                            upcall,
                        });
                    }
                }
            }
        }
    }

    /// Pop and process a single event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.events_processed += 1;
        match ev.event {
            SimEvent::Deliver { to, from, msg } => {
                let Some(node) = self.nodes.get_mut(&to) else {
                    self.dropped += 1; // destination crashed
                    return true;
                };
                self.stats.entry(to).or_default().delivered += 1;
                let out = node.on_input(Input::Message { from, msg });
                self.apply(to, out);
            }
            SimEvent::Timer { node: addr, kind } => {
                let Some(node) = self.nodes.get_mut(&addr) else {
                    return true; // node gone; timer dies silently
                };
                let out = node.on_input(Input::Timer(kind));
                self.apply(addr, out);
            }
        }
        true
    }

    /// Run until virtual time reaches `t` (events at exactly `t` included)
    /// or the queue drains.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        // Land exactly on the deadline so that back-to-back bounded runs
        // cover contiguous, exact windows.
        self.queue.advance_to(t);
    }

    /// Run for `ms` more virtual milliseconds.
    pub fn run_for(&mut self, ms: u64) {
        let deadline = self.now() + ms;
        self.run_until(deadline);
    }

    /// Drain the recorded upcalls.
    pub fn take_upcalls(&mut self) -> Vec<UpcallRecord> {
        std::mem::take(&mut self.upcalls)
    }

    /// Transport counters for one node.
    pub fn link_stats(&self, addr: NodeAddr) -> LinkStats {
        self.stats.get(&addr).copied().unwrap_or_default()
    }

    /// Reset all transport counters (e.g. after warm-up).
    pub fn reset_link_stats(&mut self) {
        for s in self.stats.values_mut() {
            *s = LinkStats::default();
        }
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{ChordConfig, Id, IdSpace};

    fn cfg() -> ChordConfig {
        ChordConfig {
            space: IdSpace::new(16),
            ..ChordConfig::default()
        }
    }

    fn two_node_net() -> SimNet<ChordNode> {
        let mut net = SimNet::new(7);
        let mut a = ChordNode::new(cfg(), Id(100), NodeAddr(1));
        let out = a.start_create();
        net.add_node(a);
        net.apply(NodeAddr(1), out);
        let mut b = ChordNode::new(cfg(), Id(40_000), NodeAddr(2));
        let bootstrap = net.node(NodeAddr(1)).unwrap().me();
        let out = b.start_join(bootstrap);
        net.add_node(b);
        net.apply(NodeAddr(2), out);
        net
    }

    #[test]
    fn two_nodes_converge_to_a_ring() {
        let mut net = two_node_net();
        net.run_for(30_000);
        let a = net.node(NodeAddr(1)).unwrap();
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(a.table().successor().unwrap().id, Id(40_000));
        assert_eq!(b.table().successor().unwrap().id, Id(100));
        assert_eq!(a.table().predecessor().unwrap().id, Id(40_000));
        assert_eq!(b.table().predecessor().unwrap().id, Id(100));
    }

    #[test]
    fn joined_upcall_recorded() {
        let mut net = two_node_net();
        net.run_for(30_000);
        let ups = net.take_upcalls();
        assert!(ups
            .iter()
            .any(|u| u.node == NodeAddr(2) && matches!(u.upcall, Upcall::Joined { .. })));
        // Drained.
        assert!(net.take_upcalls().is_empty());
    }

    #[test]
    fn crash_is_discovered_by_timeout() {
        let mut net = two_node_net();
        net.run_for(30_000);
        net.crash(NodeAddr(2));
        net.run_for(30_000);
        let a = net.node(NodeAddr(1)).unwrap();
        // Successor list purged; back alone in the ring.
        assert!(a.table().successor().is_none());
        assert!(a.table().predecessor().is_none());
        assert!(net.dropped > 0);
    }

    #[test]
    fn lookup_resolves_across_nodes() {
        let mut net = two_node_net();
        net.run_for(30_000);
        net.take_upcalls();
        // From node 1, look up a key owned by node 2.
        let req = net
            .with_node(NodeAddr(1), |n| n.lookup(Id(20_000)))
            .unwrap();
        net.run_for(5_000);
        let ups = net.take_upcalls();
        let done = ups
            .iter()
            .find_map(|u| match &u.upcall {
                Upcall::LookupDone { req: r, owner, .. } if *r == req => Some(owner.id),
                _ => None,
            })
            .expect("lookup must complete");
        assert_eq!(done, Id(40_000));
    }

    #[test]
    fn loss_model_drops_messages() {
        let mut net = two_node_net();
        net.set_loss(LossModel::new(1.0));
        net.run_for(10_000);
        // With total loss nothing converges...
        assert!(net.dropped > 0);
        let b = net.node(NodeAddr(2)).unwrap();
        assert_ne!(
            b.status(),
            dat_chord::NodeStatus::Active,
            "node joined through a fully lossy network?!"
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut net = two_node_net();
            net.set_latency(LatencyModel::Uniform { lo: 5, hi: 50 });
            net.run_for(60_000);
            (
                net.events_processed(),
                net.link_stats(NodeAddr(1)).sent,
                net.link_stats(NodeAddr(2)).delivered,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn link_stats_count_both_directions() {
        let mut net = two_node_net();
        net.run_for(30_000);
        let s1 = net.link_stats(NodeAddr(1));
        let s2 = net.link_stats(NodeAddr(2));
        assert!(s1.sent > 0 && s1.delivered > 0);
        assert!(s2.sent > 0 && s2.delivered > 0);
        net.reset_link_stats();
        assert_eq!(net.link_stats(NodeAddr(1)).sent, 0);
    }
}
