//! The simulated network: hosts sans-io actors, delivers messages with
//! modeled latency/loss, and fires timers — all in deterministic virtual
//! time.
//!
//! ## Storage layout (the million-node hot path)
//!
//! Nodes live in an arena (`Vec<Slot>`) addressed by dense indices, with a
//! generation counter per slot so crash/restart can reuse both slots and
//! transport addresses without aliasing. Every internally scheduled event
//! carries a `(slot, generation)` hint captured at schedule time: on the
//! fast path a delivery resolves its target with a single `Vec` index and
//! a generation compare instead of the five `HashMap` probes (`nodes`,
//! `stats`, `slow`, `busy_until`, plus the delivered-counter update) the
//! old layout paid. Per-link counters, slowdown state and busy horizons
//! are fields of the same slot, so one cache line serves the whole
//! delivery. A stale hint (the target crashed, and possibly a new node
//! took its address) falls back to the address map, which preserves the
//! original semantics exactly: in-flight traffic to a re-used address
//! reaches the *new* incarnation, and traffic to a dead address is
//! counted in [`SimNet::dropped`].
//!
//! Messages pass between co-hosted actors zero-copy: the decoded
//! [`ChordMsg`] moves through the queue by value and payload bytes are
//! shared `Arc` buffers ([`dat_chord::Payload`]). The optional codec
//! parity mode ([`SimNet::set_codec_parity`]) re-encodes and decodes every
//! delivered message through the real wire codec and asserts equality,
//! proving in-memory delivery and wire delivery agree byte for byte.

#![deny(clippy::unwrap_used)]

use std::collections::HashMap;

use dat_chord::{ChordMsg, Id, Input, NodeAddr, NodeRef, Output, TimerKind, Upcall};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fault::{CorruptMode, FaultAction, FaultController, FaultPlan};
use crate::latency::{LatencyModel, LossModel};
use crate::queue::{EventQueue, SchedulerKind};
use crate::time::SimTime;

pub use dat_chord::Actor;

/// A `(slot index, generation)` pair captured when an event is scheduled.
/// Resolving it is one bounds check + one compare; a mismatch (slot reused
/// after a crash) falls back to the address map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SlotHint {
    idx: u32,
    gen: u32,
}

impl SlotHint {
    const NONE: SlotHint = SlotHint {
        idx: u32::MAX,
        gen: u32::MAX,
    };
}

/// Events the engine schedules internally.
#[derive(Clone, Debug)]
enum SimEvent {
    Deliver {
        to: NodeAddr,
        hint: SlotHint,
        from: NodeAddr,
        msg: ChordMsg,
    },
    Timer {
        node: NodeAddr,
        hint: SlotHint,
        kind: TimerKind,
    },
    /// The `i`-th event of the installed [`FaultPlan`] comes due.
    Fault(usize),
}

/// An upcall surfaced by some node, timestamped.
#[derive(Clone, Debug)]
pub struct UpcallRecord {
    /// When it fired.
    pub at: SimTime,
    /// Which node surfaced it.
    pub node: NodeAddr,
    /// The upcall payload.
    pub upcall: Upcall,
}

/// Per-node transport-level counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Messages this node handed to the transport.
    pub sent: u64,
    /// Messages delivered to this node.
    pub delivered: u64,
}

/// One arena cell: the hosted actor plus all per-node engine state that
/// the delivery hot path touches.
struct Slot<A> {
    /// Transport address of the current (or last) occupant.
    addr: NodeAddr,
    /// Bumped every time the slot is re-occupied; stale hints miss on it.
    gen: u32,
    /// The hosted actor; `None` after a crash until the slot is reused.
    actor: Option<A>,
    /// Live transport counters of the occupant.
    stats: LinkStats,
    /// Active processing slowdown: `(process_ms, episode end)`.
    slow: Option<(u64, SimTime)>,
    /// Virtual-time busy horizon of a slowed node: deliveries landing
    /// before it are requeued, so a slow node answers *late*, not never.
    busy_until: SimTime,
}

/// The discrete-event network engine.
///
/// Generic over the hosted [`Actor`] so the same engine runs bare Chord
/// overlays, DAT stacks, and the monitoring application — exactly the
/// layering of the paper's prototype simulator (§4).
pub struct SimNet<A: Actor> {
    queue: EventQueue<SimEvent>,
    /// Arena of node slots; crashed slots are reused via `free`.
    slots: Vec<Slot<A>>,
    free: Vec<u32>,
    /// Address → slot index for the cold paths (API lookups, stale hints).
    addr_map: HashMap<NodeAddr, u32>,
    live: usize,
    /// Bumped on every add/crash so hosts can cache membership-derived
    /// structures (address lists, id maps) and rebuild only on change.
    membership_epoch: u64,
    rng: SmallRng,
    latency: LatencyModel,
    loss: LossModel,
    upcalls: Vec<UpcallRecord>,
    record_upcalls: bool,
    /// Counters of nodes that crashed, frozen at crash time (accumulated
    /// across repeated crashes of the same address).
    retired_stats: HashMap<NodeAddr, LinkStats>,
    faults: Option<FaultController>,
    /// Builds a fresh actor (plus its start outputs) for a
    /// [`crate::FaultEvent::Restart`] of the given address.
    #[allow(clippy::type_complexity)]
    restart_fn: Option<Box<dyn FnMut(NodeAddr) -> Option<(A, Vec<Output>)>>>,
    /// Round-trip every delivered message through the wire codec and
    /// assert equality (zero-copy parity proof; costs an encode+decode
    /// per delivery, so it is opt-in).
    codec_parity: bool,
    /// Messages dropped by the loss model, an active partition/link fault,
    /// or addressed to dead nodes.
    pub dropped: u64,
    /// Wire-corruption bookkeeping (all zero unless a
    /// [`crate::FaultEvent::CorruptLink`] episode fired).
    pub corruption: CorruptionStats,
    events_processed: u64,
}

/// Counters for byte-level wire corruption injected by
/// [`crate::FaultEvent::CorruptLink`] episodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorruptionStats {
    /// Frames whose bytes were actually mutated (the per-message coin
    /// landed inside an active episode).
    pub injected: u64,
    /// Mutated frames the decoder rejected — delivered to the victim as
    /// [`Input::BadFrame`] so its containment layer sees the attack.
    pub rejected: u64,
    /// Mutated frames that still decoded — either the mutation was a
    /// no-op (random bytes matched the originals) or a hostile rewrite
    /// produced a different-but-valid frame. Delivered as whatever the
    /// decoder produced, because that is exactly what a real receiver
    /// would see.
    pub passed: u64,
}

impl<A: Actor> SimNet<A> {
    /// A fresh engine with the given determinism seed (timer-wheel
    /// scheduler).
    pub fn new(seed: u64) -> Self {
        Self::with_scheduler(seed, SchedulerKind::Wheel)
    }

    /// A fresh engine with an explicit event-scheduler backend. Both
    /// backends produce byte-identical schedules; the heap exists for
    /// parity tests and benchmarks.
    pub fn with_scheduler(seed: u64, kind: SchedulerKind) -> Self {
        SimNet {
            queue: EventQueue::with_scheduler(kind),
            slots: Vec::new(),
            free: Vec::new(),
            addr_map: HashMap::new(),
            live: 0,
            membership_epoch: 0,
            rng: SmallRng::seed_from_u64(seed),
            latency: LatencyModel::default(),
            loss: LossModel::NONE,
            upcalls: Vec::new(),
            record_upcalls: true,
            retired_stats: HashMap::new(),
            faults: None,
            restart_fn: None,
            codec_parity: false,
            dropped: 0,
            corruption: CorruptionStats::default(),
            events_processed: 0,
        }
    }

    /// Which scheduler backs the event queue.
    pub fn scheduler(&self) -> SchedulerKind {
        self.queue.scheduler()
    }

    /// Install a fault schedule. Each event becomes a queue event at its
    /// `at_ms`, so the whole schedule replays identically for a given seed.
    /// Must be installed before the engine runs past the first event time;
    /// a second call replaces the previous plan (its un-fired events keep
    /// firing but hit the new controller's indices — don't do that; install
    /// one plan per run).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for (i, (at_ms, _)) in plan.events().iter().enumerate() {
            self.queue.push_at(SimTime(*at_ms), SimEvent::Fault(i));
        }
        self.faults = Some(FaultController::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Install the hook that [`crate::FaultEvent::Restart`] uses to build
    /// a replacement actor (fresh state — a restart never resurrects the
    /// crashed actor's memory). Return `None` to skip a restart.
    pub fn set_restart_fn<F>(&mut self, f: F)
    where
        F: FnMut(NodeAddr) -> Option<(A, Vec<Output>)> + 'static,
    {
        self.restart_fn = Some(Box::new(f));
    }

    /// Replace the latency model.
    pub fn set_latency(&mut self, model: LatencyModel) {
        self.latency = model;
    }

    /// Replace the loss model.
    pub fn set_loss(&mut self, model: LossModel) {
        self.loss = model;
    }

    /// Stop/start recording upcalls (recording is on by default; long churn
    /// runs may want it off to bound memory).
    pub fn set_record_upcalls(&mut self, on: bool) {
        self.record_upcalls = on;
    }

    /// Enable the zero-copy/wire parity proof: every delivered message is
    /// encoded with [`dat_chord::codec`], decoded back, and compared. Any
    /// divergence panics with the offending message. Off by default.
    pub fn set_codec_parity(&mut self, on: bool) {
        self.codec_parity = on;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of hosted (live) nodes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no nodes are hosted.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Pending events (messages in flight + armed timers).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Events that were scheduled in the past and clamped to "now" by the
    /// queue. Persistently growing values point at stale-deadline bugs in
    /// hosts; surfaced here so scale runs can assert on it.
    pub fn clamped_events(&self) -> u64 {
        self.queue.clamped_events()
    }

    /// Bumped on every membership change (add or crash). Hosts that
    /// derive per-node structures from the address list can cache them
    /// keyed on this epoch instead of rebuilding each iteration.
    pub fn membership_epoch(&self) -> u64 {
        self.membership_epoch
    }

    /// Add a node. Panics if the address is taken.
    pub fn add_node(&mut self, actor: A) {
        let addr = actor.addr();
        assert!(
            !self.addr_map.contains_key(&addr),
            "duplicate node address {addr:?}"
        );
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                slot.addr = addr;
                slot.gen = slot.gen.wrapping_add(1);
                slot.actor = Some(actor);
                slot.stats = LinkStats::default();
                slot.slow = None;
                slot.busy_until = SimTime::ZERO;
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    addr,
                    gen: 0,
                    actor: Some(actor),
                    stats: LinkStats::default(),
                    slow: None,
                    busy_until: SimTime::ZERO,
                });
                idx
            }
        };
        self.addr_map.insert(addr, idx);
        self.live += 1;
        self.membership_epoch += 1;
    }

    /// Slot index of a live node.
    fn idx_of(&self, addr: NodeAddr) -> Option<usize> {
        let idx = *self.addr_map.get(&addr)? as usize;
        self.slots[idx].actor.as_ref()?;
        Some(idx)
    }

    /// Resolve a delivery target: generation-checked arena hit first,
    /// address-map fallback second (slot reused, or event scheduled before
    /// the target existed).
    fn resolve(&self, to: NodeAddr, hint: SlotHint) -> Option<usize> {
        let idx = hint.idx as usize;
        if idx < self.slots.len() {
            let s = &self.slots[idx];
            if s.gen == hint.gen && s.actor.is_some() {
                debug_assert_eq!(s.addr, to, "hint generation matched a different address");
                return Some(idx);
            }
        }
        self.idx_of(to)
    }

    /// The hint to stamp on an event targeting `addr` right now.
    fn hint_for(&self, addr: NodeAddr) -> SlotHint {
        match self.addr_map.get(&addr) {
            Some(&idx) => SlotHint {
                idx,
                gen: self.slots[idx as usize].gen,
            },
            None => SlotHint::NONE,
        }
    }

    /// Immutable access to a node.
    pub fn node(&self, addr: NodeAddr) -> Option<&A> {
        self.slots[self.idx_of(addr)?].actor.as_ref()
    }

    /// Mutable access to a node (does not process outputs — use
    /// [`Self::with_node`] to run protocol actions).
    pub fn node_mut(&mut self, addr: NodeAddr) -> Option<&mut A> {
        let idx = self.idx_of(addr)?;
        self.slots[idx].actor.as_mut()
    }

    /// All live node addresses (sorted).
    pub fn addrs(&self) -> Vec<NodeAddr> {
        let mut a: Vec<NodeAddr> = self
            .slots
            .iter()
            .filter(|s| s.actor.is_some())
            .map(|s| s.addr)
            .collect();
        a.sort_unstable();
        a
    }

    /// Iterate over live nodes (arena order: insertion order with slot
    /// reuse after crashes — deterministic, unlike the old map order).
    pub fn iter_nodes(&self) -> impl Iterator<Item = (&NodeAddr, &A)> {
        self.slots
            .iter()
            .filter_map(|s| s.actor.as_ref().map(|a| (&s.addr, a)))
    }

    /// Run `f` against node `addr` and process the outputs it returns.
    /// This is how hosts start joins, trigger aggregations, etc.
    pub fn with_node<F, R>(&mut self, addr: NodeAddr, f: F) -> Option<R>
    where
        F: FnOnce(&mut A) -> (R, Vec<Output>),
    {
        let now = self.queue.now().as_millis();
        let idx = self.idx_of(addr)?;
        let actor = self.slots[idx].actor.as_mut()?;
        actor.set_now(now);
        let (r, out) = f(actor);
        self.apply_from(Some(idx), addr, out);
        Some(r)
    }

    /// Crash a node: remove it abruptly. In-flight traffic to it is lost
    /// (counted in [`SimNet::dropped`]), its pending timers die silently,
    /// and its transport counters are retired into
    /// [`SimNet::retired_link_stats`] rather than left to go stale; peers
    /// discover the failure via timeouts (ungraceful churn).
    pub fn crash(&mut self, addr: NodeAddr) -> Option<A> {
        let idx = *self.addr_map.get(&addr)?;
        let slot = &mut self.slots[idx as usize];
        let actor = slot.actor.take()?;
        let s = slot.stats;
        slot.stats = LinkStats::default();
        slot.slow = None;
        slot.busy_until = SimTime::ZERO;
        let r = self.retired_stats.entry(addr).or_default();
        r.sent += s.sent;
        r.delivered += s.delivered;
        self.addr_map.remove(&addr);
        self.free.push(idx);
        self.live -= 1;
        self.membership_epoch += 1;
        Some(actor)
    }

    /// Process the outputs `from` produced.
    pub fn apply(&mut self, from: NodeAddr, outputs: Vec<Output>) {
        let idx = self.idx_of(from);
        self.apply_from(idx, from, outputs);
    }

    /// Output processing with the sender's slot already resolved (the hot
    /// path hands it down so sends don't re-probe the address map).
    fn apply_from(&mut self, from_idx: Option<usize>, from: NodeAddr, outputs: Vec<Output>) {
        for o in outputs {
            match o {
                Output::Send { to, msg } => {
                    if let Some(i) = from_idx {
                        self.slots[i].stats.sent += 1;
                    }
                    // Consult the fault controller first; when no plan is
                    // installed this consumes no randomness, preserving
                    // traces of fault-free runs byte for byte.
                    let now = self.queue.now();
                    let (blocked, link, degrade, dup_prob) = match self.faults.as_mut() {
                        Some(fc) => (
                            fc.blocked(from, to.addr),
                            fc.link(from, to.addr, now),
                            fc.degrade(from, to.addr, now),
                            fc.dup_prob(),
                        ),
                        None => (false, None, None, 0.0),
                    };
                    if blocked || self.loss.drops(&mut self.rng) {
                        self.dropped += 1;
                        continue;
                    }
                    if let Some(lf) = link {
                        if lf.loss > 0.0 && self.rng.random::<f64>() < lf.loss {
                            self.dropped += 1;
                            continue;
                        }
                    }
                    // Gray degradation composes on top of any plain link
                    // override: its own loss coin, then extra latency plus
                    // uniform per-message jitter.
                    if let Some((lf, _)) = degrade {
                        if lf.loss > 0.0 && self.rng.random::<f64>() < lf.loss {
                            self.dropped += 1;
                            continue;
                        }
                    }
                    let mut extra = link.map_or(0, |l| l.extra_latency_ms);
                    if let Some((lf, jitter)) = degrade {
                        extra += lf.extra_latency_ms;
                        if jitter > 0 {
                            extra += self.rng.random_range(0..=jitter);
                        }
                    }
                    let hint = self.hint_for(to.addr);
                    if dup_prob > 0.0 && self.rng.random::<f64>() < dup_prob {
                        let delay = self.latency.sample(&mut self.rng) + extra;
                        self.queue.push_after(
                            delay,
                            SimEvent::Deliver {
                                to: to.addr,
                                hint,
                                from,
                                // Shared payload buffers make this clone a
                                // refcount bump, not a byte copy.
                                msg: msg.clone(),
                            },
                        );
                    }
                    let delay = self.latency.sample(&mut self.rng) + extra;
                    self.queue.push_after(
                        delay,
                        SimEvent::Deliver {
                            to: to.addr,
                            hint,
                            from,
                            msg,
                        },
                    );
                }
                Output::SetTimer { kind, delay_ms } => {
                    let hint = match from_idx {
                        Some(i) => SlotHint {
                            idx: i as u32,
                            gen: self.slots[i].gen,
                        },
                        None => SlotHint::NONE,
                    };
                    self.queue.push_after(
                        delay_ms,
                        SimEvent::Timer {
                            node: from,
                            hint,
                            kind,
                        },
                    );
                }
                Output::Upcall(upcall) => {
                    if self.record_upcalls {
                        self.upcalls.push(UpcallRecord {
                            at: self.queue.now(),
                            node: from,
                            upcall,
                        });
                    }
                }
            }
        }
    }

    /// Deliver one admitted message to the resolved slot: wire corruption
    /// (if an episode covers the link), parity check, counters, actor
    /// input, output processing.
    fn deliver_one(&mut self, idx: usize, from: NodeAddr, msg: ChordMsg) {
        let to_addr = self.slots[idx].addr;
        // Byte-level corruption rides the real codec path: the message is
        // encoded, its bytes damaged, and the damaged frame decoded —
        // whatever the decoder makes of it is what the victim receives.
        // The `any_corrupt` gate plus per-link lookup mean clean runs draw
        // zero randomness here, keeping their seeded digests byte-identical.
        let mut input = None;
        if let Some(fc) = self.faults.as_mut() {
            if fc.any_corrupt() {
                let now = self.queue.now();
                if let Some((prob, mode)) = fc.corrupt(from, to_addr, now) {
                    if prob > 0.0 && self.rng.random::<f64>() < prob {
                        self.corruption.injected += 1;
                        let mut bytes = dat_chord::codec::encode(&msg);
                        corrupt_frame(&mut bytes, mode, &mut self.rng);
                        input = Some(match dat_chord::codec::decode(&bytes) {
                            Ok(survived) => {
                                self.corruption.passed += 1;
                                Input::Message {
                                    from,
                                    msg: survived,
                                }
                            }
                            Err(error) => {
                                self.corruption.rejected += 1;
                                Input::BadFrame {
                                    from: Some(from),
                                    error,
                                }
                            }
                        });
                    }
                }
            }
        }
        let input = match input {
            Some(i) => i,
            None => {
                if self.codec_parity {
                    let bytes = dat_chord::codec::encode(&msg);
                    match dat_chord::codec::decode(&bytes) {
                        Ok(rt) => {
                            assert_eq!(rt, msg, "codec parity: wire round-trip changed the message")
                        }
                        Err(e) => panic!("codec parity: {e} while round-tripping {:?}", msg.kind()),
                    }
                }
                Input::Message { from, msg }
            }
        };
        let now_ms = self.queue.now().as_millis();
        let slot = &mut self.slots[idx];
        slot.stats.delivered += 1;
        let Some(actor) = slot.actor.as_mut() else {
            return;
        };
        actor.set_now(now_ms);
        let out = actor.on_input(input);
        self.apply_from(Some(idx), to_addr, out);
    }

    /// Pop and process a single queue entry. Returns `false` when the
    /// queue is empty. A delivery additionally batch-drains the target's
    /// same-instant inbox (consecutive due deliveries to the same slot)
    /// without re-entering the pop machinery per message.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.events_processed += 1;
        let now_ms = self.queue.now().as_millis();
        match ev.event {
            SimEvent::Deliver {
                to,
                hint,
                from,
                msg,
            } => {
                let Some(idx) = self.resolve(to, hint) else {
                    self.dropped += 1; // destination crashed
                    return true;
                };
                // Gray slowdown: a slowed node serializes processing in
                // virtual time. A delivery landing while the node is busy
                // is requeued at the busy horizon (never dropped — the
                // node answers late, which is the whole point); an
                // admitted delivery pushes the horizon out by the per-
                // message processing cost. Episodes expire lazily.
                let slot = &mut self.slots[idx];
                if let Some((process_ms, until)) = slot.slow {
                    let now = self.queue.now();
                    if now >= until {
                        slot.slow = None;
                        slot.busy_until = SimTime::ZERO;
                    } else {
                        let busy = slot.busy_until;
                        if busy > now {
                            let hint = SlotHint {
                                idx: idx as u32,
                                gen: slot.gen,
                            };
                            self.queue.push_at(
                                busy,
                                SimEvent::Deliver {
                                    to,
                                    hint,
                                    from,
                                    msg,
                                },
                            );
                            return true;
                        }
                        slot.busy_until = now + process_ms;
                    }
                }
                self.deliver_one(idx, from, msg);
                // Batch drain: take the rest of this node's due inbox —
                // consecutive head-of-queue deliveries at the same instant
                // whose hints match this slot's current generation. Taking
                // only head events preserves the exact sequential order,
                // and outputs pushed mid-batch carry later sequence
                // numbers, so the schedule is byte-identical to stepping.
                // Slowed nodes are excluded (each admission must move the
                // busy horizon through the requeue path above).
                let gen = self.slots[idx].gen;
                let want = SlotHint {
                    idx: idx as u32,
                    gen,
                };
                while self.slots[idx].slow.is_none() {
                    let next = self
                        .queue
                        .pop_if(|e| matches!(e, SimEvent::Deliver { hint, .. } if *hint == want));
                    let Some(next) = next else {
                        break;
                    };
                    self.events_processed += 1;
                    let SimEvent::Deliver { from, msg, .. } = next.event else {
                        break;
                    };
                    self.deliver_one(idx, from, msg);
                }
            }
            SimEvent::Timer {
                node: addr,
                hint,
                kind,
            } => {
                let Some(idx) = self.resolve(addr, hint) else {
                    return true; // node gone; timer dies silently
                };
                let Some(node) = self.slots[idx].actor.as_mut() else {
                    return true;
                };
                node.set_now(now_ms);
                let out = node.on_input(Input::Timer(kind));
                self.apply_from(Some(idx), addr, out);
            }
            SimEvent::Fault(i) => {
                let now = self.queue.now();
                let action = self.faults.as_mut().and_then(|fc| fc.apply(i, now));
                match action {
                    Some(FaultAction::Crash(node)) => {
                        let _ = self.crash(node);
                    }
                    Some(FaultAction::Restart(node)) if self.idx_of(node).is_none() => {
                        let spawned = self.restart_fn.as_mut().and_then(|f| f(node));
                        if let Some((actor, out)) = spawned {
                            let addr = actor.addr();
                            self.add_node(actor);
                            self.apply(addr, out);
                        }
                    }
                    Some(FaultAction::Slow(node, process_ms, for_ms)) => {
                        if let Some(idx) = self.idx_of(node) {
                            self.slots[idx].slow = Some((process_ms, now + for_ms));
                        }
                    }
                    Some(FaultAction::Overload(node, msgs, spread_ms)) => {
                        // Junk DAT-proto messages from a sentinel sender:
                        // they burn inbox slots on delivery and fail to
                        // decode at the protocol layer (counted dropped).
                        // Scheduled deterministically — no RNG consumed.
                        // One shared payload buffer for the whole burst.
                        let junk = NodeRef::new(Id(u64::MAX), NodeAddr(u64::MAX));
                        let junk_payload = dat_chord::Payload::from(vec![0xFF]);
                        let hint = self.hint_for(node);
                        for i in 0..msgs {
                            let delay = if msgs > 1 {
                                i * spread_ms / (msgs - 1)
                            } else {
                                0
                            };
                            self.queue.push_after(
                                delay,
                                SimEvent::Deliver {
                                    to: node,
                                    hint,
                                    from: NodeAddr(u64::MAX),
                                    msg: ChordMsg::App {
                                        proto: 1,
                                        from: junk,
                                        payload: junk_payload.clone(),
                                    },
                                },
                            );
                        }
                    }
                    // Restart of a still-live node, or no action due.
                    _ => {}
                }
            }
        }
        true
    }

    /// Run until virtual time reaches `t` (events at exactly `t` included)
    /// or the queue drains.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        // Land exactly on the deadline so that back-to-back bounded runs
        // cover contiguous, exact windows.
        self.queue.advance_to(t);
    }

    /// Run for `ms` more virtual milliseconds.
    pub fn run_for(&mut self, ms: u64) {
        let deadline = self.now() + ms;
        self.run_until(deadline);
    }

    /// Drain the recorded upcalls.
    pub fn take_upcalls(&mut self) -> Vec<UpcallRecord> {
        std::mem::take(&mut self.upcalls)
    }

    /// Transport counters for one node.
    pub fn link_stats(&self, addr: NodeAddr) -> LinkStats {
        match self.idx_of(addr) {
            Some(idx) => self.slots[idx].stats,
            None => LinkStats::default(),
        }
    }

    /// Transport counters retired when `addr` crashed (zero if it never
    /// did). Live counters move here at crash time so [`SimNet::link_stats`]
    /// never reports stale numbers for a dead node.
    pub fn retired_link_stats(&self, addr: NodeAddr) -> LinkStats {
        self.retired_stats.get(&addr).copied().unwrap_or_default()
    }

    /// Reset all transport counters (e.g. after warm-up).
    pub fn reset_link_stats(&mut self) {
        for s in &mut self.slots {
            s.stats = LinkStats::default();
        }
        self.dropped = 0;
        self.corruption = CorruptionStats::default();
    }
}

/// Damage an encoded frame in place according to `mode`. All randomness
/// comes from the engine's seeded generator, so a corruption episode
/// replays byte-identically for a given seed.
fn corrupt_frame(bytes: &mut Vec<u8>, mode: CorruptMode, rng: &mut SmallRng) {
    if bytes.is_empty() {
        return;
    }
    match mode {
        CorruptMode::BitFlip => {
            let bit = rng.random_range(0..bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        CorruptMode::Truncate => {
            let keep = rng.random_range(0..bytes.len());
            bytes.truncate(keep);
        }
        CorruptMode::Garbage => {
            let start = rng.random_range(0..bytes.len());
            let len = rng.random_range(1..=bytes.len() - start);
            for b in &mut bytes[start..start + len] {
                *b = rng.random();
            }
        }
        CorruptMode::TagRewrite => {
            // A hostile *writer*, not line noise: rewrite the message tag
            // and recompute a valid checksum, so the decoder's own tag and
            // structure validation — not the CRC — must catch the frame.
            let trailer = dat_chord::codec::CRC_TRAILER;
            if bytes.len() > 2 + trailer {
                bytes[2] = rng.random();
                let body_end = bytes.len() - trailer;
                let crc = dat_chord::wire::crc32c(&bytes[..body_end]);
                bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
            }
        }
    }
}

#[allow(clippy::unwrap_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{ChordConfig, ChordNode, Id, IdSpace};

    fn cfg() -> ChordConfig {
        ChordConfig {
            space: IdSpace::new(16),
            ..ChordConfig::default()
        }
    }

    fn two_node_net() -> SimNet<ChordNode> {
        let mut net = SimNet::new(7);
        let mut a = ChordNode::new(cfg(), Id(100), NodeAddr(1));
        let out = a.start_create();
        net.add_node(a);
        net.apply(NodeAddr(1), out);
        let mut b = ChordNode::new(cfg(), Id(40_000), NodeAddr(2));
        let bootstrap = net.node(NodeAddr(1)).unwrap().me();
        let out = b.start_join(bootstrap);
        net.add_node(b);
        net.apply(NodeAddr(2), out);
        net
    }

    #[test]
    fn two_nodes_converge_to_a_ring() {
        let mut net = two_node_net();
        net.run_for(30_000);
        let a = net.node(NodeAddr(1)).unwrap();
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(a.table().successor().unwrap().id, Id(40_000));
        assert_eq!(b.table().successor().unwrap().id, Id(100));
        assert_eq!(a.table().predecessor().unwrap().id, Id(40_000));
        assert_eq!(b.table().predecessor().unwrap().id, Id(100));
    }

    #[test]
    fn joined_upcall_recorded() {
        let mut net = two_node_net();
        net.run_for(30_000);
        let ups = net.take_upcalls();
        assert!(ups
            .iter()
            .any(|u| u.node == NodeAddr(2) && matches!(u.upcall, Upcall::Joined { .. })));
        // Drained.
        assert!(net.take_upcalls().is_empty());
    }

    #[test]
    fn crash_is_discovered_by_timeout() {
        let mut net = two_node_net();
        net.run_for(30_000);
        net.crash(NodeAddr(2));
        net.run_for(30_000);
        let a = net.node(NodeAddr(1)).unwrap();
        // Successor list purged; back alone in the ring.
        assert!(a.table().successor().is_none());
        assert!(a.table().predecessor().is_none());
        assert!(net.dropped > 0);
    }

    #[test]
    fn lookup_resolves_across_nodes() {
        let mut net = two_node_net();
        net.run_for(30_000);
        net.take_upcalls();
        // From node 1, look up a key owned by node 2.
        let req = net
            .with_node(NodeAddr(1), |n| n.lookup(Id(20_000)))
            .unwrap();
        net.run_for(5_000);
        let ups = net.take_upcalls();
        let done = ups
            .iter()
            .find_map(|u| match &u.upcall {
                Upcall::LookupDone { req: r, owner, .. } if *r == req => Some(owner.id),
                _ => None,
            })
            .expect("lookup must complete");
        assert_eq!(done, Id(40_000));
    }

    #[test]
    fn loss_model_drops_messages() {
        let mut net = two_node_net();
        net.set_loss(LossModel::new(1.0));
        net.run_for(10_000);
        // With total loss nothing converges...
        assert!(net.dropped > 0);
        let b = net.node(NodeAddr(2)).unwrap();
        assert_ne!(
            b.status(),
            dat_chord::NodeStatus::Active,
            "node joined through a fully lossy network?!"
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut net = two_node_net();
            net.set_latency(LatencyModel::Uniform { lo: 5, hi: 50 });
            net.run_for(60_000);
            (
                net.events_processed(),
                net.link_stats(NodeAddr(1)).sent,
                net.link_stats(NodeAddr(2)).delivered,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn corruption_episode_is_detected_counted_and_deterministic() {
        let run = || {
            let mut net = two_node_net();
            net.run_for(30_000);
            // Every frame 1 → 2 is bit-flipped for 10 s. CRC32C detects
            // all single-bit errors, so every injected frame must be
            // rejected and surfaced as a BadFrame — never silently
            // delivered damaged.
            let plan = FaultPlan::new().corrupt_link_at(
                30_000,
                NodeAddr(1),
                NodeAddr(2),
                1.0,
                CorruptMode::BitFlip,
                10_000,
            );
            net.set_fault_plan(plan);
            net.run_for(60_000);
            net.corruption
        };
        let stats = run();
        assert!(stats.injected > 0, "traffic flowed through the episode");
        assert_eq!(
            stats.rejected, stats.injected,
            "a single bit flip must never survive the checksum"
        );
        assert_eq!(stats.passed, 0);
        assert_eq!(run(), stats, "corruption replays byte-identically");

        // The ring survives: the episode expires and stabilization heals.
        let mut net = two_node_net();
        net.run_for(30_000);
        net.set_fault_plan(FaultPlan::new().corrupt_link_at(
            30_000,
            NodeAddr(1),
            NodeAddr(2),
            1.0,
            CorruptMode::Garbage,
            10_000,
        ));
        net.run_for(60_000);
        let a = net.node(NodeAddr(1)).unwrap();
        assert_eq!(a.table().successor().unwrap().id, Id(40_000));
    }

    #[test]
    fn idle_corruption_episode_leaves_the_run_untouched() {
        // An episode on a link that carries no traffic must not perturb
        // the rest of the run: no coins drawn, identical transport stats.
        let baseline = || {
            let mut net = two_node_net();
            net.run_for(60_000);
            (
                net.link_stats(NodeAddr(1)).sent,
                net.link_stats(NodeAddr(2)).delivered,
                net.dropped,
            )
        };
        let with_idle_episode = || {
            let mut net = two_node_net();
            net.set_fault_plan(FaultPlan::new().corrupt_link_at(
                1_000,
                NodeAddr(77),
                NodeAddr(78),
                1.0,
                CorruptMode::Garbage,
                50_000,
            ));
            net.run_for(60_000);
            assert_eq!(net.corruption, CorruptionStats::default());
            (
                net.link_stats(NodeAddr(1)).sent,
                net.link_stats(NodeAddr(2)).delivered,
                net.dropped,
            )
        };
        assert_eq!(baseline(), with_idle_episode());
    }

    #[test]
    fn tag_rewrite_forges_valid_checksums() {
        // TagRewrite models a hostile writer who computes correct CRCs:
        // rejections must come from structural validation (BadTag and
        // friends), and some frames may legitimately survive — decoding
        // as a different-but-valid message. What matters is that nothing
        // panics and the episode is fully accounted.
        let mut net = two_node_net();
        net.run_for(30_000);
        net.set_fault_plan(FaultPlan::new().corrupt_link_at(
            30_000,
            NodeAddr(2),
            NodeAddr(1),
            1.0,
            CorruptMode::TagRewrite,
            10_000,
        ));
        net.run_for(60_000);
        let stats = net.corruption;
        assert!(stats.injected > 0);
        assert_eq!(stats.rejected + stats.passed, stats.injected);
        assert!(stats.rejected > 0, "random tags are mostly invalid");
    }

    #[test]
    fn crash_retires_stats_kills_timers_and_drops_inflight() {
        let mut net = two_node_net();
        net.run_for(30_000);
        let before = net.link_stats(NodeAddr(2));
        assert!(before.sent > 0 && before.delivered > 0);
        let dropped_before = net.dropped;
        let pending_before = net.pending_events();
        assert!(pending_before > 0, "stabilization keeps timers armed");
        net.crash(NodeAddr(2));
        // Live counters are retired, not left stale.
        assert_eq!(net.link_stats(NodeAddr(2)).sent, 0);
        assert_eq!(net.link_stats(NodeAddr(2)).delivered, 0);
        let retired = net.retired_link_stats(NodeAddr(2));
        assert_eq!(retired.sent, before.sent);
        assert_eq!(retired.delivered, before.delivered);
        // In-flight deliveries and post-crash sends to the dead node are
        // counted in `dropped`; node 2's timers fire into the void without
        // panicking or producing traffic.
        net.run_for(30_000);
        assert!(net.dropped > dropped_before);
        assert_eq!(
            net.retired_link_stats(NodeAddr(2)).delivered,
            retired.delivered
        );
        assert_eq!(net.len(), 1);
    }

    #[test]
    fn partitioned_ring_reunifies_after_heal() {
        let mut net = two_node_net();
        net.set_fault_plan(
            FaultPlan::new()
                .partition_at(30_000, vec![NodeAddr(2)])
                .heal_at(90_000),
        );
        net.run_for(30_000); // converge before the cut
        assert_eq!(
            net.node(NodeAddr(1))
                .unwrap()
                .table()
                .successor()
                .unwrap()
                .id,
            Id(40_000)
        );
        let dropped_before = net.dropped;
        net.run_for(60_000); // partitioned window
        assert!(net.dropped > dropped_before, "partition blocks traffic");
        let a = net.node(NodeAddr(1)).unwrap();
        assert!(a.table().successor().is_none(), "peer evicted during cut");
        // After the heal the fallen-peer probes rediscover the other side
        // and the two singleton rings merge back into one.
        net.run_for(120_000);
        let a = net.node(NodeAddr(1)).unwrap();
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(a.table().successor().unwrap().id, Id(40_000));
        assert_eq!(b.table().successor().unwrap().id, Id(100));
    }

    #[test]
    fn plan_crash_and_restart_rejoin_with_fresh_state() {
        let mut net = two_node_net();
        net.set_fault_plan(
            FaultPlan::new()
                .crash_at(30_000, NodeAddr(2))
                .restart_at(75_000, NodeAddr(2)),
        );
        net.set_restart_fn(|addr| {
            let mut n = ChordNode::new(cfg(), Id(40_000), addr);
            let out = n.start_join(dat_chord::NodeRef::new(Id(100), NodeAddr(1)));
            Some((n, out))
        });
        net.run_for(60_000);
        assert_eq!(net.len(), 1, "crash event removed node 2");
        let retired = net.retired_link_stats(NodeAddr(2));
        assert!(retired.sent > 0);
        net.run_for(60_000);
        assert_eq!(net.len(), 2, "restart hook re-created node 2");
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(b.status(), dat_chord::NodeStatus::Active);
        assert_eq!(b.table().successor().unwrap().id, Id(100));
        // The retired counters stay frozen at their crash-time values; the
        // reborn node accumulates live stats from zero under the same
        // address.
        assert_eq!(net.retired_link_stats(NodeAddr(2)).sent, retired.sent);
        assert!(net.link_stats(NodeAddr(2)).sent > 0);
    }

    #[test]
    fn link_fault_blocks_until_cleared() {
        let mut net = two_node_net();
        net.set_fault_plan(
            FaultPlan::new()
                .link_fault_at(
                    0,
                    NodeAddr(1),
                    NodeAddr(2),
                    crate::fault::LinkFault {
                        loss: 1.0,
                        extra_latency_ms: 0,
                    },
                )
                .clear_link_at(20_000, NodeAddr(1), NodeAddr(2)),
        );
        net.run_for(15_000);
        // Join replies all travel 1 → 2 and the directed override eats them.
        let b = net.node(NodeAddr(2)).unwrap();
        assert_ne!(b.status(), dat_chord::NodeStatus::Active);
        assert!(net.dropped > 0);
        net.run_for(60_000);
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(
            b.status(),
            dat_chord::NodeStatus::Active,
            "cleared link heals"
        );
    }

    #[test]
    fn duplication_inflates_delivery_counts() {
        // Keep the rate in the realistic regime: duplication compounds per
        // forwarding hop (each copy of a routed message is a fresh
        // transmission), so rates near 1.0 amplify deep `find_successor`
        // chains exponentially.
        let mut net = two_node_net();
        net.set_fault_plan(FaultPlan::new().duplication_at(0, 0.05));
        net.run_for(30_000);
        let sent = net.link_stats(NodeAddr(1)).sent + net.link_stats(NodeAddr(2)).sent;
        let delivered =
            net.link_stats(NodeAddr(1)).delivered + net.link_stats(NodeAddr(2)).delivered;
        assert!(
            delivered > sent + sent / 50,
            "5% duplication should measurably inflate deliveries ({delivered} vs {sent})"
        );
    }

    #[test]
    fn fault_schedule_replays_identically_for_a_seed() {
        let run = || {
            let mut net = two_node_net();
            net.set_latency(LatencyModel::Uniform { lo: 5, hi: 50 });
            let plan = FaultPlan::new()
                .partition_at(20_000, vec![NodeAddr(2)])
                .duplication_at(25_000, 0.3)
                .heal_at(45_000)
                .crash_at(70_000, NodeAddr(2))
                .restart_at(80_000, NodeAddr(2));
            let digest = plan.digest();
            net.set_fault_plan(plan);
            net.set_restart_fn(|addr| {
                let mut n = ChordNode::new(cfg(), Id(40_000), addr);
                let out = n.start_join(dat_chord::NodeRef::new(Id(100), NodeAddr(1)));
                Some((n, out))
            });
            net.run_for(120_000);
            (
                digest,
                net.events_processed(),
                net.dropped,
                net.link_stats(NodeAddr(1)).sent,
                net.link_stats(NodeAddr(1)).delivered,
                net.link_stats(NodeAddr(2)).sent,
                net.retired_link_stats(NodeAddr(2)).delivered,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slowdown_delays_but_never_silences() {
        // A slowed node still answers — late. Compare time-to-converge
        // of a join under a slowdown episode vs the same seed without.
        let run = |slow: bool| {
            let mut net = two_node_net();
            if slow {
                net.set_fault_plan(FaultPlan::new().slowdown_at(0, NodeAddr(1), 400, 20_000));
            }
            net.run_for(15_000);
            let b = net.node(NodeAddr(2)).unwrap();
            (b.status(), net.events_processed())
        };
        let (status_slow, ev_slow) = run(true);
        let (status_fast, ev_fast) = run(false);
        assert_eq!(status_fast, dat_chord::NodeStatus::Active);
        // The slowed run serializes every delivery through a 400 ms
        // processing budget, so it requeues (extra events) and falls
        // behind — but nothing is dropped by the slowdown itself.
        assert!(ev_slow != ev_fast, "slowdown must perturb the schedule");
        // After the episode ends the backlog drains and the join finishes.
        let mut net = two_node_net();
        net.set_fault_plan(FaultPlan::new().slowdown_at(0, NodeAddr(1), 400, 20_000));
        net.run_for(60_000);
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(b.status(), dat_chord::NodeStatus::Active);
        let _ = status_slow;
    }

    #[test]
    fn degraded_link_is_asymmetric() {
        // Degrade only 1 → 2 with total loss: node 2's requests still
        // reach node 1 (the healthy direction keeps `delivered` climbing)
        // but every reply wanders into the void, so the join stalls —
        // the half-open-link shape.
        let mut net = two_node_net();
        net.set_fault_plan(FaultPlan::new().degrade_link_at(
            0,
            NodeAddr(1),
            NodeAddr(2),
            crate::fault::LinkFault {
                loss: 1.0,
                extra_latency_ms: 0,
            },
            25,
            20_000,
        ));
        net.run_for(15_000);
        let b = net.node(NodeAddr(2)).unwrap();
        assert_ne!(b.status(), dat_chord::NodeStatus::Active);
        assert!(net.dropped > 0, "degradation loss coin must fire");
        assert!(
            net.link_stats(NodeAddr(1)).delivered > 0,
            "reverse direction must stay clean"
        );
        // Episode expires; the retry machinery completes the join.
        net.run_for(120_000);
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(b.status(), dat_chord::NodeStatus::Active);
    }

    #[test]
    fn overload_burst_delivers_junk_deterministically() {
        let run = || {
            let mut net = two_node_net();
            net.run_for(30_000);
            let before = net.link_stats(NodeAddr(1)).delivered;
            net.set_fault_plan(FaultPlan::new().overload_at(31_000, NodeAddr(1), 50, 2_000));
            net.run_for(30_000);
            (before, net.link_stats(NodeAddr(1)).delivered)
        };
        let (before, after) = run();
        assert!(
            after >= before + 50,
            "all 50 junk messages must be delivered ({before} → {after})"
        );
        assert_eq!(run(), (before, after), "burst replays identically");
    }

    #[test]
    fn link_stats_count_both_directions() {
        let mut net = two_node_net();
        net.run_for(30_000);
        let s1 = net.link_stats(NodeAddr(1));
        let s2 = net.link_stats(NodeAddr(2));
        assert!(s1.sent > 0 && s1.delivered > 0);
        assert!(s2.sent > 0 && s2.delivered > 0);
        net.reset_link_stats();
        assert_eq!(net.link_stats(NodeAddr(1)).sent, 0);
    }

    #[test]
    fn codec_parity_mode_round_trips_all_traffic() {
        // Every message a converging two-node ring exchanges must survive
        // a wire round-trip unchanged, or delivery panics.
        let mut net = two_node_net();
        net.set_codec_parity(true);
        net.run_for(30_000);
        assert!(net.link_stats(NodeAddr(1)).delivered > 0);
        let a = net.node(NodeAddr(1)).unwrap();
        assert_eq!(
            a.table().successor().unwrap().id,
            Id(40_000),
            "ring must converge with parity checks on"
        );
    }

    #[test]
    fn clamped_events_are_counted() {
        let mut net = two_node_net();
        assert_eq!(net.clamped_events(), 0);
        net.run_for(10_000);
        // A fault plan whose event time is already in the past gets
        // clamped to "now" by the queue — and counted.
        let plan = FaultPlan::new().crash_at(5_000, NodeAddr(2));
        net.set_fault_plan(plan);
        assert_eq!(net.clamped_events(), 1);
        net.run_for(1_000);
        assert!(net.node(NodeAddr(2)).is_none(), "clamped crash still fires");
    }

    #[test]
    fn membership_epoch_tracks_adds_and_crashes() {
        let mut net: SimNet<ChordNode> = SimNet::new(1);
        assert_eq!(net.membership_epoch(), 0);
        let mut a = ChordNode::new(cfg(), Id(100), NodeAddr(1));
        let out = a.start_create();
        net.add_node(a);
        net.apply(NodeAddr(1), out);
        assert_eq!(net.membership_epoch(), 1);
        let b = ChordNode::new(cfg(), Id(200), NodeAddr(2));
        net.add_node(b);
        assert_eq!(net.membership_epoch(), 2);
        net.crash(NodeAddr(2));
        assert_eq!(net.membership_epoch(), 3);
        // Crashing an unknown address is a no-op on the epoch.
        net.crash(NodeAddr(99));
        assert_eq!(net.membership_epoch(), 3);
    }

    #[test]
    fn slot_reuse_after_crash_keeps_addresses_distinct() {
        // Crash a node, add a *different* address: the freed slot is
        // reused with a bumped generation, and lookups stay correct.
        let mut net: SimNet<ChordNode> = SimNet::new(1);
        let mut a = ChordNode::new(cfg(), Id(100), NodeAddr(1));
        let out = a.start_create();
        net.add_node(a);
        net.apply(NodeAddr(1), out);
        let b = ChordNode::new(cfg(), Id(200), NodeAddr(2));
        net.add_node(b);
        net.crash(NodeAddr(2));
        let c = ChordNode::new(cfg(), Id(300), NodeAddr(3));
        net.add_node(c);
        assert_eq!(net.len(), 2);
        assert!(net.node(NodeAddr(2)).is_none());
        assert!(net.node(NodeAddr(3)).is_some());
        let addrs = net.addrs();
        assert_eq!(addrs, vec![NodeAddr(1), NodeAddr(3)]);
    }

    #[test]
    fn heap_and_wheel_schedulers_produce_identical_runs() {
        // Same seed, same workload, both scheduler backends: every
        // externally observable counter must match exactly.
        let run = |kind: SchedulerKind| {
            let mut net = SimNet::with_scheduler(7, kind);
            let mut a = ChordNode::new(cfg(), Id(100), NodeAddr(1));
            let out = a.start_create();
            net.add_node(a);
            net.apply(NodeAddr(1), out);
            let mut b = ChordNode::new(cfg(), Id(40_000), NodeAddr(2));
            let bootstrap = net.node(NodeAddr(1)).unwrap().me();
            let out = b.start_join(bootstrap);
            net.add_node(b);
            net.apply(NodeAddr(2), out);
            net.run_for(60_000);
            let s1 = net.link_stats(NodeAddr(1));
            let s2 = net.link_stats(NodeAddr(2));
            (
                net.events_processed(),
                net.dropped,
                s1.sent,
                s1.delivered,
                s2.sent,
                s2.delivered,
                net.now(),
            )
        };
        assert_eq!(run(SchedulerKind::Wheel), run(SchedulerKind::Heap));
    }
}
