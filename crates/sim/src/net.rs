//! The simulated network: hosts sans-io actors, delivers messages with
//! modeled latency/loss, and fires timers — all in deterministic virtual
//! time.

use std::collections::HashMap;

use dat_chord::{ChordMsg, Id, Input, NodeAddr, NodeRef, Output, TimerKind, Upcall};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fault::{FaultAction, FaultController, FaultPlan};
use crate::latency::{LatencyModel, LossModel};
use crate::queue::EventQueue;
use crate::time::SimTime;

pub use dat_chord::Actor;

/// Events the engine schedules internally.
#[derive(Clone, Debug)]
enum SimEvent {
    Deliver {
        to: NodeAddr,
        from: NodeAddr,
        msg: ChordMsg,
    },
    Timer {
        node: NodeAddr,
        kind: TimerKind,
    },
    /// The `i`-th event of the installed [`FaultPlan`] comes due.
    Fault(usize),
}

/// An upcall surfaced by some node, timestamped.
#[derive(Clone, Debug)]
pub struct UpcallRecord {
    /// When it fired.
    pub at: SimTime,
    /// Which node surfaced it.
    pub node: NodeAddr,
    /// The upcall payload.
    pub upcall: Upcall,
}

/// Per-node transport-level counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Messages this node handed to the transport.
    pub sent: u64,
    /// Messages delivered to this node.
    pub delivered: u64,
}

/// The discrete-event network engine.
///
/// Generic over the hosted [`Actor`] so the same engine runs bare Chord
/// overlays, DAT stacks, and the monitoring application — exactly the
/// layering of the paper's prototype simulator (§4).
pub struct SimNet<A: Actor> {
    queue: EventQueue<SimEvent>,
    nodes: HashMap<NodeAddr, A>,
    rng: SmallRng,
    latency: LatencyModel,
    loss: LossModel,
    upcalls: Vec<UpcallRecord>,
    record_upcalls: bool,
    stats: HashMap<NodeAddr, LinkStats>,
    /// Counters of nodes that crashed, frozen at crash time (accumulated
    /// across repeated crashes of the same address).
    retired_stats: HashMap<NodeAddr, LinkStats>,
    faults: Option<FaultController>,
    /// Active processing slowdowns: `addr → (process_ms, episode end)`.
    slow: HashMap<NodeAddr, (u64, SimTime)>,
    /// Virtual-time busy horizon of each slowed node: deliveries landing
    /// before it are requeued, so a slow node answers *late*, not never.
    busy_until: HashMap<NodeAddr, SimTime>,
    /// Builds a fresh actor (plus its start outputs) for a
    /// [`crate::FaultEvent::Restart`] of the given address.
    #[allow(clippy::type_complexity)]
    restart_fn: Option<Box<dyn FnMut(NodeAddr) -> Option<(A, Vec<Output>)>>>,
    /// Messages dropped by the loss model, an active partition/link fault,
    /// or addressed to dead nodes.
    pub dropped: u64,
    events_processed: u64,
}

impl<A: Actor> SimNet<A> {
    /// A fresh engine with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        SimNet {
            queue: EventQueue::new(),
            nodes: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
            latency: LatencyModel::default(),
            loss: LossModel::NONE,
            upcalls: Vec::new(),
            record_upcalls: true,
            stats: HashMap::new(),
            retired_stats: HashMap::new(),
            faults: None,
            slow: HashMap::new(),
            busy_until: HashMap::new(),
            restart_fn: None,
            dropped: 0,
            events_processed: 0,
        }
    }

    /// Install a fault schedule. Each event becomes a queue event at its
    /// `at_ms`, so the whole schedule replays identically for a given seed.
    /// Must be installed before the engine runs past the first event time;
    /// a second call replaces the previous plan (its un-fired events keep
    /// firing but hit the new controller's indices — don't do that; install
    /// one plan per run).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for (i, (at_ms, _)) in plan.events().iter().enumerate() {
            self.queue.push_at(SimTime(*at_ms), SimEvent::Fault(i));
        }
        self.faults = Some(FaultController::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Install the hook that [`crate::FaultEvent::Restart`] uses to build
    /// a replacement actor (fresh state — a restart never resurrects the
    /// crashed actor's memory). Return `None` to skip a restart.
    pub fn set_restart_fn<F>(&mut self, f: F)
    where
        F: FnMut(NodeAddr) -> Option<(A, Vec<Output>)> + 'static,
    {
        self.restart_fn = Some(Box::new(f));
    }

    /// Replace the latency model.
    pub fn set_latency(&mut self, model: LatencyModel) {
        self.latency = model;
    }

    /// Replace the loss model.
    pub fn set_loss(&mut self, model: LossModel) {
        self.loss = model;
    }

    /// Stop/start recording upcalls (recording is on by default; long churn
    /// runs may want it off to bound memory).
    pub fn set_record_upcalls(&mut self, on: bool) {
        self.record_upcalls = on;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of hosted (live) nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes are hosted.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Pending events (messages in flight + armed timers).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Add a node. Panics if the address is taken.
    pub fn add_node(&mut self, actor: A) {
        let addr = actor.addr();
        let prev = self.nodes.insert(addr, actor);
        assert!(prev.is_none(), "duplicate node address {addr:?}");
        self.stats.entry(addr).or_default();
    }

    /// Immutable access to a node.
    pub fn node(&self, addr: NodeAddr) -> Option<&A> {
        self.nodes.get(&addr)
    }

    /// Mutable access to a node (does not process outputs — use
    /// [`Self::with_node`] to run protocol actions).
    pub fn node_mut(&mut self, addr: NodeAddr) -> Option<&mut A> {
        self.nodes.get_mut(&addr)
    }

    /// All live node addresses (unordered).
    pub fn addrs(&self) -> Vec<NodeAddr> {
        let mut a: Vec<NodeAddr> = self.nodes.keys().copied().collect();
        a.sort_unstable();
        a
    }

    /// Iterate over live nodes.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (&NodeAddr, &A)> {
        self.nodes.iter()
    }

    /// Run `f` against node `addr` and process the outputs it returns.
    /// This is how hosts start joins, trigger aggregations, etc.
    pub fn with_node<F, R>(&mut self, addr: NodeAddr, f: F) -> Option<R>
    where
        F: FnOnce(&mut A) -> (R, Vec<Output>),
    {
        let now = self.queue.now().as_millis();
        let actor = self.nodes.get_mut(&addr)?;
        actor.set_now(now);
        let (r, out) = f(actor);
        self.apply(addr, out);
        Some(r)
    }

    /// Crash a node: remove it abruptly. In-flight traffic to it is lost
    /// (counted in [`SimNet::dropped`]), its pending timers die silently,
    /// and its transport counters are retired into
    /// [`SimNet::retired_link_stats`] rather than left to go stale; peers
    /// discover the failure via timeouts (ungraceful churn).
    pub fn crash(&mut self, addr: NodeAddr) -> Option<A> {
        let actor = self.nodes.remove(&addr)?;
        self.slow.remove(&addr);
        self.busy_until.remove(&addr);
        if let Some(s) = self.stats.remove(&addr) {
            let r = self.retired_stats.entry(addr).or_default();
            r.sent += s.sent;
            r.delivered += s.delivered;
        }
        Some(actor)
    }

    /// Process the outputs `from` produced.
    pub fn apply(&mut self, from: NodeAddr, outputs: Vec<Output>) {
        for o in outputs {
            match o {
                Output::Send { to, msg } => {
                    self.stats.entry(from).or_default().sent += 1;
                    // Consult the fault controller first; when no plan is
                    // installed this consumes no randomness, preserving
                    // traces of fault-free runs byte for byte.
                    let now = self.queue.now();
                    let (blocked, link, degrade, dup_prob) = match self.faults.as_mut() {
                        Some(fc) => (
                            fc.blocked(from, to.addr),
                            fc.link(from, to.addr, now),
                            fc.degrade(from, to.addr, now),
                            fc.dup_prob(),
                        ),
                        None => (false, None, None, 0.0),
                    };
                    if blocked || self.loss.drops(&mut self.rng) {
                        self.dropped += 1;
                        continue;
                    }
                    if let Some(lf) = link {
                        if lf.loss > 0.0 && self.rng.random::<f64>() < lf.loss {
                            self.dropped += 1;
                            continue;
                        }
                    }
                    // Gray degradation composes on top of any plain link
                    // override: its own loss coin, then extra latency plus
                    // uniform per-message jitter.
                    if let Some((lf, _)) = degrade {
                        if lf.loss > 0.0 && self.rng.random::<f64>() < lf.loss {
                            self.dropped += 1;
                            continue;
                        }
                    }
                    let mut extra = link.map_or(0, |l| l.extra_latency_ms);
                    if let Some((lf, jitter)) = degrade {
                        extra += lf.extra_latency_ms;
                        if jitter > 0 {
                            extra += self.rng.random_range(0..=jitter);
                        }
                    }
                    if dup_prob > 0.0 && self.rng.random::<f64>() < dup_prob {
                        let delay = self.latency.sample(&mut self.rng) + extra;
                        self.queue.push_after(
                            delay,
                            SimEvent::Deliver {
                                to: to.addr,
                                from,
                                msg: msg.clone(),
                            },
                        );
                    }
                    let delay = self.latency.sample(&mut self.rng) + extra;
                    self.queue.push_after(
                        delay,
                        SimEvent::Deliver {
                            to: to.addr,
                            from,
                            msg,
                        },
                    );
                }
                Output::SetTimer { kind, delay_ms } => {
                    self.queue
                        .push_after(delay_ms, SimEvent::Timer { node: from, kind });
                }
                Output::Upcall(upcall) => {
                    if self.record_upcalls {
                        self.upcalls.push(UpcallRecord {
                            at: self.queue.now(),
                            node: from,
                            upcall,
                        });
                    }
                }
            }
        }
    }

    /// Pop and process a single event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.events_processed += 1;
        let now_ms = self.queue.now().as_millis();
        match ev.event {
            SimEvent::Deliver { to, from, msg } => {
                // Gray slowdown: a slowed node serializes processing in
                // virtual time. A delivery landing while the node is busy
                // is requeued at the busy horizon (never dropped — the
                // node answers late, which is the whole point); an
                // admitted delivery pushes the horizon out by the per-
                // message processing cost. Episodes expire lazily.
                if self.nodes.contains_key(&to) {
                    if let Some(&(process_ms, until)) = self.slow.get(&to) {
                        let now = self.queue.now();
                        if now >= until {
                            self.slow.remove(&to);
                            self.busy_until.remove(&to);
                        } else {
                            let busy = self.busy_until.get(&to).copied().unwrap_or(now);
                            if busy > now {
                                self.queue
                                    .push_at(busy, SimEvent::Deliver { to, from, msg });
                                return true;
                            }
                            self.busy_until.insert(to, now + process_ms);
                        }
                    }
                }
                let Some(node) = self.nodes.get_mut(&to) else {
                    self.dropped += 1; // destination crashed
                    return true;
                };
                self.stats.entry(to).or_default().delivered += 1;
                node.set_now(now_ms);
                let out = node.on_input(Input::Message { from, msg });
                self.apply(to, out);
            }
            SimEvent::Timer { node: addr, kind } => {
                let Some(node) = self.nodes.get_mut(&addr) else {
                    return true; // node gone; timer dies silently
                };
                node.set_now(now_ms);
                let out = node.on_input(Input::Timer(kind));
                self.apply(addr, out);
            }
            SimEvent::Fault(i) => {
                let now = self.queue.now();
                let action = self.faults.as_mut().and_then(|fc| fc.apply(i, now));
                match action {
                    Some(FaultAction::Crash(node)) => {
                        let _ = self.crash(node);
                    }
                    Some(FaultAction::Restart(node)) if !self.nodes.contains_key(&node) => {
                        let spawned = self.restart_fn.as_mut().and_then(|f| f(node));
                        if let Some((actor, out)) = spawned {
                            let addr = actor.addr();
                            self.add_node(actor);
                            self.apply(addr, out);
                        }
                    }
                    Some(FaultAction::Slow(node, process_ms, for_ms)) => {
                        self.slow.insert(node, (process_ms, now + for_ms));
                    }
                    Some(FaultAction::Overload(node, msgs, spread_ms)) => {
                        // Junk DAT-proto messages from a sentinel sender:
                        // they burn inbox slots on delivery and fail to
                        // decode at the protocol layer (counted dropped).
                        // Scheduled deterministically — no RNG consumed.
                        let junk = NodeRef::new(Id(u64::MAX), NodeAddr(u64::MAX));
                        for i in 0..msgs {
                            let delay = if msgs > 1 {
                                i * spread_ms / (msgs - 1)
                            } else {
                                0
                            };
                            self.queue.push_after(
                                delay,
                                SimEvent::Deliver {
                                    to: node,
                                    from: NodeAddr(u64::MAX),
                                    msg: ChordMsg::App {
                                        proto: 1,
                                        from: junk,
                                        payload: vec![0xFF],
                                    },
                                },
                            );
                        }
                    }
                    // Restart of a still-live node, or no action due.
                    _ => {}
                }
            }
        }
        true
    }

    /// Run until virtual time reaches `t` (events at exactly `t` included)
    /// or the queue drains.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        // Land exactly on the deadline so that back-to-back bounded runs
        // cover contiguous, exact windows.
        self.queue.advance_to(t);
    }

    /// Run for `ms` more virtual milliseconds.
    pub fn run_for(&mut self, ms: u64) {
        let deadline = self.now() + ms;
        self.run_until(deadline);
    }

    /// Drain the recorded upcalls.
    pub fn take_upcalls(&mut self) -> Vec<UpcallRecord> {
        std::mem::take(&mut self.upcalls)
    }

    /// Transport counters for one node.
    pub fn link_stats(&self, addr: NodeAddr) -> LinkStats {
        self.stats.get(&addr).copied().unwrap_or_default()
    }

    /// Transport counters retired when `addr` crashed (zero if it never
    /// did). Live counters move here at crash time so [`SimNet::link_stats`]
    /// never reports stale numbers for a dead node.
    pub fn retired_link_stats(&self, addr: NodeAddr) -> LinkStats {
        self.retired_stats.get(&addr).copied().unwrap_or_default()
    }

    /// Reset all transport counters (e.g. after warm-up).
    pub fn reset_link_stats(&mut self) {
        for s in self.stats.values_mut() {
            *s = LinkStats::default();
        }
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{ChordConfig, ChordNode, Id, IdSpace};

    fn cfg() -> ChordConfig {
        ChordConfig {
            space: IdSpace::new(16),
            ..ChordConfig::default()
        }
    }

    fn two_node_net() -> SimNet<ChordNode> {
        let mut net = SimNet::new(7);
        let mut a = ChordNode::new(cfg(), Id(100), NodeAddr(1));
        let out = a.start_create();
        net.add_node(a);
        net.apply(NodeAddr(1), out);
        let mut b = ChordNode::new(cfg(), Id(40_000), NodeAddr(2));
        let bootstrap = net.node(NodeAddr(1)).unwrap().me();
        let out = b.start_join(bootstrap);
        net.add_node(b);
        net.apply(NodeAddr(2), out);
        net
    }

    #[test]
    fn two_nodes_converge_to_a_ring() {
        let mut net = two_node_net();
        net.run_for(30_000);
        let a = net.node(NodeAddr(1)).unwrap();
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(a.table().successor().unwrap().id, Id(40_000));
        assert_eq!(b.table().successor().unwrap().id, Id(100));
        assert_eq!(a.table().predecessor().unwrap().id, Id(40_000));
        assert_eq!(b.table().predecessor().unwrap().id, Id(100));
    }

    #[test]
    fn joined_upcall_recorded() {
        let mut net = two_node_net();
        net.run_for(30_000);
        let ups = net.take_upcalls();
        assert!(ups
            .iter()
            .any(|u| u.node == NodeAddr(2) && matches!(u.upcall, Upcall::Joined { .. })));
        // Drained.
        assert!(net.take_upcalls().is_empty());
    }

    #[test]
    fn crash_is_discovered_by_timeout() {
        let mut net = two_node_net();
        net.run_for(30_000);
        net.crash(NodeAddr(2));
        net.run_for(30_000);
        let a = net.node(NodeAddr(1)).unwrap();
        // Successor list purged; back alone in the ring.
        assert!(a.table().successor().is_none());
        assert!(a.table().predecessor().is_none());
        assert!(net.dropped > 0);
    }

    #[test]
    fn lookup_resolves_across_nodes() {
        let mut net = two_node_net();
        net.run_for(30_000);
        net.take_upcalls();
        // From node 1, look up a key owned by node 2.
        let req = net
            .with_node(NodeAddr(1), |n| n.lookup(Id(20_000)))
            .unwrap();
        net.run_for(5_000);
        let ups = net.take_upcalls();
        let done = ups
            .iter()
            .find_map(|u| match &u.upcall {
                Upcall::LookupDone { req: r, owner, .. } if *r == req => Some(owner.id),
                _ => None,
            })
            .expect("lookup must complete");
        assert_eq!(done, Id(40_000));
    }

    #[test]
    fn loss_model_drops_messages() {
        let mut net = two_node_net();
        net.set_loss(LossModel::new(1.0));
        net.run_for(10_000);
        // With total loss nothing converges...
        assert!(net.dropped > 0);
        let b = net.node(NodeAddr(2)).unwrap();
        assert_ne!(
            b.status(),
            dat_chord::NodeStatus::Active,
            "node joined through a fully lossy network?!"
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut net = two_node_net();
            net.set_latency(LatencyModel::Uniform { lo: 5, hi: 50 });
            net.run_for(60_000);
            (
                net.events_processed(),
                net.link_stats(NodeAddr(1)).sent,
                net.link_stats(NodeAddr(2)).delivered,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_retires_stats_kills_timers_and_drops_inflight() {
        let mut net = two_node_net();
        net.run_for(30_000);
        let before = net.link_stats(NodeAddr(2));
        assert!(before.sent > 0 && before.delivered > 0);
        let dropped_before = net.dropped;
        let pending_before = net.pending_events();
        assert!(pending_before > 0, "stabilization keeps timers armed");
        net.crash(NodeAddr(2));
        // Live counters are retired, not left stale.
        assert_eq!(net.link_stats(NodeAddr(2)).sent, 0);
        assert_eq!(net.link_stats(NodeAddr(2)).delivered, 0);
        let retired = net.retired_link_stats(NodeAddr(2));
        assert_eq!(retired.sent, before.sent);
        assert_eq!(retired.delivered, before.delivered);
        // In-flight deliveries and post-crash sends to the dead node are
        // counted in `dropped`; node 2's timers fire into the void without
        // panicking or producing traffic.
        net.run_for(30_000);
        assert!(net.dropped > dropped_before);
        assert_eq!(
            net.retired_link_stats(NodeAddr(2)).delivered,
            retired.delivered
        );
        assert_eq!(net.len(), 1);
    }

    #[test]
    fn partitioned_ring_reunifies_after_heal() {
        let mut net = two_node_net();
        net.set_fault_plan(
            FaultPlan::new()
                .partition_at(30_000, vec![NodeAddr(2)])
                .heal_at(90_000),
        );
        net.run_for(30_000); // converge before the cut
        assert_eq!(
            net.node(NodeAddr(1))
                .unwrap()
                .table()
                .successor()
                .unwrap()
                .id,
            Id(40_000)
        );
        let dropped_before = net.dropped;
        net.run_for(60_000); // partitioned window
        assert!(net.dropped > dropped_before, "partition blocks traffic");
        let a = net.node(NodeAddr(1)).unwrap();
        assert!(a.table().successor().is_none(), "peer evicted during cut");
        // After the heal the fallen-peer probes rediscover the other side
        // and the two singleton rings merge back into one.
        net.run_for(120_000);
        let a = net.node(NodeAddr(1)).unwrap();
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(a.table().successor().unwrap().id, Id(40_000));
        assert_eq!(b.table().successor().unwrap().id, Id(100));
    }

    #[test]
    fn plan_crash_and_restart_rejoin_with_fresh_state() {
        let mut net = two_node_net();
        net.set_fault_plan(
            FaultPlan::new()
                .crash_at(30_000, NodeAddr(2))
                .restart_at(75_000, NodeAddr(2)),
        );
        net.set_restart_fn(|addr| {
            let mut n = ChordNode::new(cfg(), Id(40_000), addr);
            let out = n.start_join(dat_chord::NodeRef::new(Id(100), NodeAddr(1)));
            Some((n, out))
        });
        net.run_for(60_000);
        assert_eq!(net.len(), 1, "crash event removed node 2");
        let retired = net.retired_link_stats(NodeAddr(2));
        assert!(retired.sent > 0);
        net.run_for(60_000);
        assert_eq!(net.len(), 2, "restart hook re-created node 2");
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(b.status(), dat_chord::NodeStatus::Active);
        assert_eq!(b.table().successor().unwrap().id, Id(100));
        // The retired counters stay frozen at their crash-time values; the
        // reborn node accumulates live stats from zero under the same
        // address.
        assert_eq!(net.retired_link_stats(NodeAddr(2)).sent, retired.sent);
        assert!(net.link_stats(NodeAddr(2)).sent > 0);
    }

    #[test]
    fn link_fault_blocks_until_cleared() {
        let mut net = two_node_net();
        net.set_fault_plan(
            FaultPlan::new()
                .link_fault_at(
                    0,
                    NodeAddr(1),
                    NodeAddr(2),
                    crate::fault::LinkFault {
                        loss: 1.0,
                        extra_latency_ms: 0,
                    },
                )
                .clear_link_at(20_000, NodeAddr(1), NodeAddr(2)),
        );
        net.run_for(15_000);
        // Join replies all travel 1 → 2 and the directed override eats them.
        let b = net.node(NodeAddr(2)).unwrap();
        assert_ne!(b.status(), dat_chord::NodeStatus::Active);
        assert!(net.dropped > 0);
        net.run_for(60_000);
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(
            b.status(),
            dat_chord::NodeStatus::Active,
            "cleared link heals"
        );
    }

    #[test]
    fn duplication_inflates_delivery_counts() {
        // Keep the rate in the realistic regime: duplication compounds per
        // forwarding hop (each copy of a routed message is a fresh
        // transmission), so rates near 1.0 amplify deep `find_successor`
        // chains exponentially.
        let mut net = two_node_net();
        net.set_fault_plan(FaultPlan::new().duplication_at(0, 0.05));
        net.run_for(30_000);
        let sent = net.link_stats(NodeAddr(1)).sent + net.link_stats(NodeAddr(2)).sent;
        let delivered =
            net.link_stats(NodeAddr(1)).delivered + net.link_stats(NodeAddr(2)).delivered;
        assert!(
            delivered > sent + sent / 50,
            "5% duplication should measurably inflate deliveries ({delivered} vs {sent})"
        );
    }

    #[test]
    fn fault_schedule_replays_identically_for_a_seed() {
        let run = || {
            let mut net = two_node_net();
            net.set_latency(LatencyModel::Uniform { lo: 5, hi: 50 });
            let plan = FaultPlan::new()
                .partition_at(20_000, vec![NodeAddr(2)])
                .duplication_at(25_000, 0.3)
                .heal_at(45_000)
                .crash_at(70_000, NodeAddr(2))
                .restart_at(80_000, NodeAddr(2));
            let digest = plan.digest();
            net.set_fault_plan(plan);
            net.set_restart_fn(|addr| {
                let mut n = ChordNode::new(cfg(), Id(40_000), addr);
                let out = n.start_join(dat_chord::NodeRef::new(Id(100), NodeAddr(1)));
                Some((n, out))
            });
            net.run_for(120_000);
            (
                digest,
                net.events_processed(),
                net.dropped,
                net.link_stats(NodeAddr(1)).sent,
                net.link_stats(NodeAddr(1)).delivered,
                net.link_stats(NodeAddr(2)).sent,
                net.retired_link_stats(NodeAddr(2)).delivered,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slowdown_delays_but_never_silences() {
        // A slowed node still answers — late. Compare time-to-converge
        // of a join under a slowdown episode vs the same seed without.
        let run = |slow: bool| {
            let mut net = two_node_net();
            if slow {
                net.set_fault_plan(FaultPlan::new().slowdown_at(0, NodeAddr(1), 400, 20_000));
            }
            net.run_for(15_000);
            let b = net.node(NodeAddr(2)).unwrap();
            (b.status(), net.events_processed())
        };
        let (status_slow, ev_slow) = run(true);
        let (status_fast, ev_fast) = run(false);
        assert_eq!(status_fast, dat_chord::NodeStatus::Active);
        // The slowed run serializes every delivery through a 400 ms
        // processing budget, so it requeues (extra events) and falls
        // behind — but nothing is dropped by the slowdown itself.
        assert!(ev_slow != ev_fast, "slowdown must perturb the schedule");
        // After the episode ends the backlog drains and the join finishes.
        let mut net = two_node_net();
        net.set_fault_plan(FaultPlan::new().slowdown_at(0, NodeAddr(1), 400, 20_000));
        net.run_for(60_000);
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(b.status(), dat_chord::NodeStatus::Active);
        let _ = status_slow;
    }

    #[test]
    fn degraded_link_is_asymmetric() {
        // Degrade only 1 → 2 with total loss: node 2's requests still
        // reach node 1 (the healthy direction keeps `delivered` climbing)
        // but every reply wanders into the void, so the join stalls —
        // the half-open-link shape.
        let mut net = two_node_net();
        net.set_fault_plan(FaultPlan::new().degrade_link_at(
            0,
            NodeAddr(1),
            NodeAddr(2),
            crate::fault::LinkFault {
                loss: 1.0,
                extra_latency_ms: 0,
            },
            25,
            20_000,
        ));
        net.run_for(15_000);
        let b = net.node(NodeAddr(2)).unwrap();
        assert_ne!(b.status(), dat_chord::NodeStatus::Active);
        assert!(net.dropped > 0, "degradation loss coin must fire");
        assert!(
            net.link_stats(NodeAddr(1)).delivered > 0,
            "reverse direction must stay clean"
        );
        // Episode expires; the retry machinery completes the join.
        net.run_for(120_000);
        let b = net.node(NodeAddr(2)).unwrap();
        assert_eq!(b.status(), dat_chord::NodeStatus::Active);
    }

    #[test]
    fn overload_burst_delivers_junk_deterministically() {
        let run = || {
            let mut net = two_node_net();
            net.run_for(30_000);
            let before = net.link_stats(NodeAddr(1)).delivered;
            net.set_fault_plan(FaultPlan::new().overload_at(31_000, NodeAddr(1), 50, 2_000));
            net.run_for(30_000);
            (before, net.link_stats(NodeAddr(1)).delivered)
        };
        let (before, after) = run();
        assert!(
            after >= before + 50,
            "all 50 junk messages must be delivered ({before} → {after})"
        );
        assert_eq!(run(), (before, after), "burst replays identically");
    }

    #[test]
    fn link_stats_count_both_directions() {
        let mut net = two_node_net();
        net.run_for(30_000);
        let s1 = net.link_stats(NodeAddr(1));
        let s2 = net.link_stats(NodeAddr(2));
        assert!(s1.sent > 0 && s1.delivered > 0);
        assert!(s2.sent > 0 && s2.delivered > 0);
        net.reset_link_stats();
        assert_eq!(net.link_stats(NodeAddr(1)).sent, 0);
    }
}
