//! Scale harness: drive the event engine with 10⁴–10⁶-node overlays and
//! measure what it costs.
//!
//! The paper evaluates up to 8192 nodes; this module is how we push the
//! engine itself well past that (100k in CI, 1M offline) and track the
//! throughput trajectory release over release. A run builds a
//! pre-stabilized Chord overlay of `n` nodes, executes a window of
//! virtual time — pure protocol maintenance: stabilization timers,
//! finger fixes, the resulting message traffic — and reports wall-clock
//! throughput (events/sec, ns/event) plus engine health counters
//! (clamped events, drops, backlog) and process memory.
//!
//! Determinism is preserved: a [`ScaleConfig`] with a fixed seed produces
//! the same virtual schedule on every run and on both scheduler
//! backends; only the wall-clock numbers vary by machine.

#![deny(clippy::unwrap_used)]

use std::time::Instant;

use dat_chord::{ChordConfig, ChordNode, IdPolicy, IdSpace, StaticRing};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::net::SimNet;
use crate::queue::SchedulerKind;
use crate::shard::ShardedNet;

/// Parameters of one scale run.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Overlay size (number of nodes).
    pub n: usize,
    /// Virtual window to simulate, in milliseconds.
    pub virtual_ms: u64,
    /// Determinism seed (ring build + engine).
    pub seed: u64,
    /// Identifier-space width in bits.
    pub bits: u8,
    /// Scheduler backend to drive.
    pub scheduler: SchedulerKind,
    /// Worker shards. `0` (the default) drives the single-core
    /// [`SimNet`] engine on `scheduler`; `1..` drives the multi-core
    /// [`ShardedNet`] engine with that many shards, whose seeded digest
    /// is invariant in this value (`1` and `8` fingerprint identically).
    pub shards: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            n: 8192,
            virtual_ms: 10_000,
            seed: 0x5ca1e,
            bits: 40,
            scheduler: SchedulerKind::Wheel,
            shards: 0,
        }
    }
}

/// What one scale run measured.
#[derive(Clone, Copy, Debug)]
pub struct ScaleReport {
    /// Overlay size.
    pub n: usize,
    /// Virtual window simulated, in milliseconds.
    pub virtual_ms: u64,
    /// Scheduler backend driven.
    pub scheduler: SchedulerKind,
    /// Worker shards driven (0 = single-core [`SimNet`] engine).
    pub shards: usize,
    /// Wall-clock cost of building the overlay, in milliseconds.
    pub build_wall_ms: u64,
    /// Wall-clock cost of the simulated window, in milliseconds.
    pub run_wall_ms: u64,
    /// Events processed inside the window.
    pub events: u64,
    /// Events per wall-clock second (0 when the window was too fast to
    /// time, which does not happen at the sizes this harness targets).
    pub events_per_sec: f64,
    /// Mean wall-clock nanoseconds per event.
    pub ns_per_event: f64,
    /// Messages the transport dropped (loss/faults/dead targets).
    pub dropped: u64,
    /// Past-scheduled events clamped to "now" (stale-deadline signal —
    /// expected to be 0 for pure maintenance).
    pub clamped: u64,
    /// Events still queued when the window closed (engine backlog).
    pub backlog: usize,
    /// Peak resident set of the whole process, in MiB (`VmHWM`), if the
    /// platform exposes it. Monotone across a process's lifetime: when
    /// sweeping sizes in one process, sweep ascending so each report's
    /// peak reflects its own size.
    pub peak_rss_mib: Option<u64>,
    /// FNV-1a fingerprint of the run's observable outcome: event/drop
    /// counts, backlog, and every node's transport counters in global
    /// index order. A pure function of `(seed, n, virtual_ms, bits)` —
    /// never of shard count or wall-clock — so any two sharded runs of
    /// the same config must match bit for bit. (The single-core and
    /// sharded engines consume randomness differently, so digests are
    /// comparable only within one engine.)
    pub digest: u64,
}

impl ScaleReport {
    /// One-line human rendering.
    pub fn summary(&self) -> String {
        format!(
            "n={} sched={:?} shards={} build={}ms run={}ms events={} ({:.0}/s, {:.0} ns/event) \
             dropped={} clamped={} backlog={} peak_rss={} digest={:016x}",
            self.n,
            self.scheduler,
            self.shards,
            self.build_wall_ms,
            self.run_wall_ms,
            self.events,
            self.events_per_sec,
            self.ns_per_event,
            self.dropped,
            self.clamped,
            self.backlog,
            match self.peak_rss_mib {
                Some(m) => format!("{m}MiB"),
                None => "n/a".into(),
            },
            self.digest
        )
    }
}

/// Peak resident set size of this process in MiB (`VmHWM` from
/// `/proc/self/status`), if the platform exposes it.
pub fn peak_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb / 1024);
        }
    }
    None
}

/// Incremental FNV-1a over little-endian `u64` words — the run digest.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Run one scale epoch: build an `n`-node pre-stabilized overlay, simulate
/// `virtual_ms` of maintenance, measure. `cfg.shards == 0` drives the
/// single-core [`SimNet`]; `cfg.shards >= 1` drives the multi-core
/// [`ShardedNet`].
pub fn run_scale(cfg: ScaleConfig) -> ScaleReport {
    if cfg.shards > 0 {
        run_scale_sharded(cfg)
    } else {
        run_scale_simnet(cfg)
    }
}

fn run_scale_simnet(cfg: ScaleConfig) -> ScaleReport {
    let space = IdSpace::new(cfg.bits);
    let ccfg = ChordConfig {
        space,
        ..ChordConfig::default()
    };
    let build_start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let ring = StaticRing::build(space, cfg.n, IdPolicy::Random, &mut rng);
    let mut net: SimNet<ChordNode> = {
        // Same construction as `prestabilized_chord`, but on the requested
        // scheduler backend.
        let book = crate::harness::addr_book(&ring);
        let addr_of = |id| book[&id];
        let mut net = SimNet::with_scheduler(cfg.seed, cfg.scheduler);
        for &id in ring.ids() {
            let mut node = ChordNode::new(ccfg, id, addr_of(id));
            let table = ring.table_of_with(id, ccfg.succ_list_len, &addr_of);
            let outs = node.start_with_table(table);
            let addr = node.me().addr;
            net.add_node(node);
            net.apply(addr, outs);
        }
        net
    };
    let build_wall_ms = build_start.elapsed().as_millis() as u64;
    // Upcall records would grow without bound over a long window.
    net.set_record_upcalls(false);

    let run_start = Instant::now();
    let before = net.events_processed();
    net.run_for(cfg.virtual_ms);
    let run_wall = run_start.elapsed();
    let events = net.events_processed() - before;
    let mut fnv = Fnv::new();
    fnv.word(events);
    fnv.word(net.dropped);
    fnv.word(net.pending_events() as u64);
    for a in net.addrs() {
        let s = net.link_stats(a);
        fnv.word(a.0);
        fnv.word(s.sent);
        fnv.word(s.delivered);
    }
    finish_report(
        cfg,
        build_wall_ms,
        run_wall,
        events,
        ReportTail {
            dropped: net.dropped,
            clamped: net.clamped_events(),
            backlog: net.pending_events(),
            digest: fnv.0,
        },
    )
}

/// The same workload as [`run_scale_simnet`] on the multi-core engine:
/// identical ring build, identical per-node protocol stack, executed by
/// `cfg.shards` worker threads under the conservative window protocol.
fn run_scale_sharded(cfg: ScaleConfig) -> ScaleReport {
    let space = IdSpace::new(cfg.bits);
    let ccfg = ChordConfig {
        space,
        ..ChordConfig::default()
    };
    let build_start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let ring = StaticRing::build(space, cfg.n, IdPolicy::Random, &mut rng);
    let book = crate::harness::addr_book(&ring);
    let addr_of = |id| book[&id];
    let mut net: ShardedNet<ChordNode> = ShardedNet::new(cfg.seed, cfg.shards);
    for &id in ring.ids() {
        let mut node = ChordNode::new(ccfg, id, addr_of(id));
        let table = ring.table_of_with(id, ccfg.succ_list_len, &addr_of);
        let outs = node.start_with_table(table);
        let addr = node.me().addr;
        net.add_node(node);
        net.apply(addr, outs);
    }
    let build_wall_ms = build_start.elapsed().as_millis() as u64;

    let run_start = Instant::now();
    let before = net.events_processed();
    net.run_for(cfg.virtual_ms);
    let run_wall = run_start.elapsed();
    let events = net.events_processed() - before;
    let mut fnv = Fnv::new();
    fnv.word(events);
    fnv.word(net.dropped());
    fnv.word(net.pending_events() as u64);
    for a in net.addrs() {
        let s = net.link_stats(a);
        fnv.word(a.0);
        fnv.word(s.sent);
        fnv.word(s.delivered);
    }
    finish_report(
        cfg,
        build_wall_ms,
        run_wall,
        events,
        ReportTail {
            dropped: net.dropped(),
            clamped: net.clamped_events(),
            backlog: net.pending_events(),
            digest: fnv.0,
        },
    )
}

/// Engine-health fields that differ per engine, bundled so the two run
/// paths share one report constructor.
struct ReportTail {
    dropped: u64,
    clamped: u64,
    backlog: usize,
    digest: u64,
}

fn finish_report(
    cfg: ScaleConfig,
    build_wall_ms: u64,
    run_wall: std::time::Duration,
    events: u64,
    tail: ReportTail,
) -> ScaleReport {
    let secs = run_wall.as_secs_f64();
    ScaleReport {
        n: cfg.n,
        virtual_ms: cfg.virtual_ms,
        scheduler: cfg.scheduler,
        shards: cfg.shards,
        build_wall_ms,
        run_wall_ms: run_wall.as_millis() as u64,
        events,
        events_per_sec: if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        },
        ns_per_event: if events > 0 {
            run_wall.as_nanos() as f64 / events as f64
        } else {
            0.0
        },
        dropped: tail.dropped,
        clamped: tail.clamped,
        backlog: tail.backlog,
        peak_rss_mib: peak_rss_mib(),
        digest: tail.digest,
    }
}

/// Sanity check used by doctests/smokes: the same config must process the
/// same number of events on both scheduler backends.
pub fn schedulers_agree(cfg: ScaleConfig) -> bool {
    let w = run_scale(ScaleConfig {
        scheduler: SchedulerKind::Wheel,
        ..cfg
    });
    let h = run_scale(ScaleConfig {
        scheduler: SchedulerKind::Heap,
        ..cfg
    });
    w.events == h.events && w.dropped == h.dropped && w.backlog == h.backlog
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_run_reports_sane_numbers() {
        let r = run_scale(ScaleConfig {
            n: 64,
            virtual_ms: 3_000,
            ..ScaleConfig::default()
        });
        assert_eq!(r.n, 64);
        assert!(r.events > 0, "maintenance must generate events");
        assert!(r.ns_per_event > 0.0);
        assert_eq!(r.clamped, 0, "maintenance never schedules in the past");
        assert!(!r.summary().is_empty());
    }

    #[test]
    fn wheel_and_heap_process_identical_event_counts() {
        assert!(schedulers_agree(ScaleConfig {
            n: 48,
            virtual_ms: 3_000,
            ..ScaleConfig::default()
        }));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_readable_on_linux() {
        assert!(peak_rss_mib().is_some());
    }

    #[test]
    fn sharded_scale_digest_is_shard_count_invariant() {
        let cfg = |shards| ScaleConfig {
            n: 48,
            virtual_ms: 2_000,
            shards,
            ..ScaleConfig::default()
        };
        let base = run_scale(cfg(1));
        assert!(base.events > 0, "maintenance must generate events");
        assert_eq!(base.clamped, 0, "conservative window violated");
        assert_eq!(base.shards, 1);
        for s in [2usize, 4] {
            let r = run_scale(cfg(s));
            assert_eq!(r.digest, base.digest, "{s}-shard digest diverged");
            assert_eq!(
                (r.events, r.dropped, r.backlog),
                (base.events, base.dropped, base.backlog)
            );
            assert_eq!(r.clamped, 0);
        }
    }

    #[test]
    fn simnet_digest_is_stable_across_runs_and_backends() {
        let cfg = ScaleConfig {
            n: 48,
            virtual_ms: 2_000,
            ..ScaleConfig::default()
        };
        let a = run_scale(cfg);
        let b = run_scale(cfg);
        assert_eq!(
            a.digest, b.digest,
            "same config must fingerprint identically"
        );
        let h = run_scale(ScaleConfig {
            scheduler: SchedulerKind::Heap,
            ..cfg
        });
        assert_eq!(a.digest, h.digest, "wheel and heap digests diverged");
    }
}
