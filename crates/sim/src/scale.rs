//! Scale harness: drive the event engine with 10⁴–10⁶-node overlays and
//! measure what it costs.
//!
//! The paper evaluates up to 8192 nodes; this module is how we push the
//! engine itself well past that (100k in CI, 1M offline) and track the
//! throughput trajectory release over release. A run builds a
//! pre-stabilized Chord overlay of `n` nodes, executes a window of
//! virtual time — pure protocol maintenance: stabilization timers,
//! finger fixes, the resulting message traffic — and reports wall-clock
//! throughput (events/sec, ns/event) plus engine health counters
//! (clamped events, drops, backlog) and process memory.
//!
//! Determinism is preserved: a [`ScaleConfig`] with a fixed seed produces
//! the same virtual schedule on every run and on both scheduler
//! backends; only the wall-clock numbers vary by machine.

#![deny(clippy::unwrap_used)]

use std::time::Instant;

use dat_chord::{ChordConfig, ChordNode, IdPolicy, IdSpace, StaticRing};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::net::SimNet;
use crate::queue::SchedulerKind;

/// Parameters of one scale run.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Overlay size (number of nodes).
    pub n: usize,
    /// Virtual window to simulate, in milliseconds.
    pub virtual_ms: u64,
    /// Determinism seed (ring build + engine).
    pub seed: u64,
    /// Identifier-space width in bits.
    pub bits: u8,
    /// Scheduler backend to drive.
    pub scheduler: SchedulerKind,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            n: 8192,
            virtual_ms: 10_000,
            seed: 0x5ca1e,
            bits: 40,
            scheduler: SchedulerKind::Wheel,
        }
    }
}

/// What one scale run measured.
#[derive(Clone, Copy, Debug)]
pub struct ScaleReport {
    /// Overlay size.
    pub n: usize,
    /// Virtual window simulated, in milliseconds.
    pub virtual_ms: u64,
    /// Scheduler backend driven.
    pub scheduler: SchedulerKind,
    /// Wall-clock cost of building the overlay, in milliseconds.
    pub build_wall_ms: u64,
    /// Wall-clock cost of the simulated window, in milliseconds.
    pub run_wall_ms: u64,
    /// Events processed inside the window.
    pub events: u64,
    /// Events per wall-clock second (0 when the window was too fast to
    /// time, which does not happen at the sizes this harness targets).
    pub events_per_sec: f64,
    /// Mean wall-clock nanoseconds per event.
    pub ns_per_event: f64,
    /// Messages the transport dropped (loss/faults/dead targets).
    pub dropped: u64,
    /// Past-scheduled events clamped to "now" (stale-deadline signal —
    /// expected to be 0 for pure maintenance).
    pub clamped: u64,
    /// Events still queued when the window closed (engine backlog).
    pub backlog: usize,
    /// Peak resident set of the whole process, in MiB (`VmHWM`), if the
    /// platform exposes it. Monotone across a process's lifetime: when
    /// sweeping sizes in one process, sweep ascending so each report's
    /// peak reflects its own size.
    pub peak_rss_mib: Option<u64>,
}

impl ScaleReport {
    /// One-line human rendering.
    pub fn summary(&self) -> String {
        format!(
            "n={} sched={:?} build={}ms run={}ms events={} ({:.0}/s, {:.0} ns/event) \
             dropped={} clamped={} backlog={} peak_rss={}",
            self.n,
            self.scheduler,
            self.build_wall_ms,
            self.run_wall_ms,
            self.events,
            self.events_per_sec,
            self.ns_per_event,
            self.dropped,
            self.clamped,
            self.backlog,
            match self.peak_rss_mib {
                Some(m) => format!("{m}MiB"),
                None => "n/a".into(),
            }
        )
    }
}

/// Peak resident set size of this process in MiB (`VmHWM` from
/// `/proc/self/status`), if the platform exposes it.
pub fn peak_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb / 1024);
        }
    }
    None
}

/// Run one scale epoch: build an `n`-node pre-stabilized overlay, simulate
/// `virtual_ms` of maintenance, measure.
pub fn run_scale(cfg: ScaleConfig) -> ScaleReport {
    let space = IdSpace::new(cfg.bits);
    let ccfg = ChordConfig {
        space,
        ..ChordConfig::default()
    };
    let build_start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let ring = StaticRing::build(space, cfg.n, IdPolicy::Random, &mut rng);
    let mut net: SimNet<ChordNode> = {
        // Same construction as `prestabilized_chord`, but on the requested
        // scheduler backend.
        let book = crate::harness::addr_book(&ring);
        let addr_of = |id| book[&id];
        let mut net = SimNet::with_scheduler(cfg.seed, cfg.scheduler);
        for &id in ring.ids() {
            let mut node = ChordNode::new(ccfg, id, addr_of(id));
            let table = ring.table_of_with(id, ccfg.succ_list_len, &addr_of);
            let outs = node.start_with_table(table);
            let addr = node.me().addr;
            net.add_node(node);
            net.apply(addr, outs);
        }
        net
    };
    let build_wall_ms = build_start.elapsed().as_millis() as u64;
    // Upcall records would grow without bound over a long window.
    net.set_record_upcalls(false);

    let run_start = Instant::now();
    let before = net.events_processed();
    net.run_for(cfg.virtual_ms);
    let run_wall = run_start.elapsed();
    let events = net.events_processed() - before;
    let secs = run_wall.as_secs_f64();
    ScaleReport {
        n: cfg.n,
        virtual_ms: cfg.virtual_ms,
        scheduler: cfg.scheduler,
        build_wall_ms,
        run_wall_ms: run_wall.as_millis() as u64,
        events,
        events_per_sec: if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        },
        ns_per_event: if events > 0 {
            run_wall.as_nanos() as f64 / events as f64
        } else {
            0.0
        },
        dropped: net.dropped,
        clamped: net.clamped_events(),
        backlog: net.pending_events(),
        peak_rss_mib: peak_rss_mib(),
    }
}

/// Sanity check used by doctests/smokes: the same config must process the
/// same number of events on both scheduler backends.
pub fn schedulers_agree(cfg: ScaleConfig) -> bool {
    let w = run_scale(ScaleConfig {
        scheduler: SchedulerKind::Wheel,
        ..cfg
    });
    let h = run_scale(ScaleConfig {
        scheduler: SchedulerKind::Heap,
        ..cfg
    });
    w.events == h.events && w.dropped == h.dropped && w.backlog == h.backlog
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_run_reports_sane_numbers() {
        let r = run_scale(ScaleConfig {
            n: 64,
            virtual_ms: 3_000,
            ..ScaleConfig::default()
        });
        assert_eq!(r.n, 64);
        assert!(r.events > 0, "maintenance must generate events");
        assert!(r.ns_per_event > 0.0);
        assert_eq!(r.clamped, 0, "maintenance never schedules in the past");
        assert!(!r.summary().is_empty());
    }

    #[test]
    fn wheel_and_heap_process_identical_event_counts() {
        assert!(schedulers_agree(ScaleConfig {
            n: 48,
            virtual_ms: 3_000,
            ..ScaleConfig::default()
        }));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_readable_on_linux() {
        assert!(peak_rss_mib().is_some());
    }
}
