//! The multi-core simulation engine: conservative parallel discrete-event
//! execution with a deterministic cross-shard merge.
//!
//! [`ShardedNet`] partitions the node arena across `S` shards (node →
//! shard by `global index % S`, the same dense-index assignment the
//! single-core engine's `SlotHint`s rely on). Each shard owns a private
//! [`EventQueue`] (timer wheel) and runs its nodes' deliveries and timers
//! on its own worker thread; cross-shard sends become time-stamped
//! messages drained at a barrier.
//!
//! ## The determinism contract
//!
//! Every seeded run must produce the same digest **regardless of shard
//! count**. Three rules make that hold:
//!
//! 1. **Keys are assigned at push time, never at arrival time.** Each
//!    event carries `global_seq = (ctr << IDX_BITS) | sender_idx`, where
//!    `ctr` is the sending node's private monotone counter. Which shard's
//!    mailbox a message lands in first — or which thread happens to run
//!    ahead — can never influence the key, so the total order
//!    `(at, global_seq)` is a pure function of the seed.
//! 2. **Randomness is per node, not per engine.** Every node owns a
//!    `SmallRng` stream seeded from `(engine seed, node index)`. A node's
//!    events are processed in `(at, key)` order by whichever single shard
//!    owns it, so its stream is consumed in the same order for any `S` —
//!    which in turn makes every latency sample, loss coin and key
//!    identical for any `S`. (This is the one place the sharded engine
//!    deliberately differs from [`crate::net::SimNet`], whose single
//!    global RNG cannot survive parallel execution; the two engines'
//!    digests are therefore self-consistent but not mutually comparable.)
//! 3. **Conservative lookahead.** The minimum link latency
//!    ([`LatencyModel::min_ms`], always ≥ 1 ms) bounds how far any shard
//!    may run ahead: in each round the shards agree on the global minimum
//!    pending time `gmin` and execute only the window
//!    `[gmin, gmin + lookahead)`. Any message sent inside the window is
//!    delivered no earlier than `gmin + lookahead`, i.e. strictly after
//!    the window, so no shard can ever receive a message "from the past".
//!    Timers are shard-local and need no lookahead.
//!
//! The merge rule itself — next event is the `(at, key)` minimum across
//! shards — is proven single-threaded by `SchedulerKind::Sharded` in
//! [`crate::queue`], which runs the identical K-way merge under the full
//! existing stack and fingerprints byte-identical to the wheel.
//!
//! ## The barrier protocol
//!
//! Per round, two barriers and a pair of parity-indexed atomic minima:
//! each thread drains its inbound mailboxes, publishes its earliest
//! pending time with `fetch_min`, and crosses barrier A; all threads then
//! read the same `gmin`, execute the window, flush outbound mailboxes and
//! cross barrier B (shard 0 resets the *other* parity slot between the
//! barriers). `gmin > deadline` is observed by every thread in the same
//! round, so the loop exits uniformly with all mailboxes empty.
//!
//! Faults, crashes and wire corruption are not modeled here — the
//! single-core engine remains the reference for those planes; this engine
//! exists to scale the fault-free hot path (`sim::scale`) across cores.

#![deny(clippy::unwrap_used)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use dat_chord::{ChordMsg, Input, NodeAddr, Output, TimerKind};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::latency::{LatencyModel, LossModel};
use crate::net::{LinkStats, UpcallRecord};
use crate::queue::EventQueue;
use crate::time::SimTime;

pub use dat_chord::Actor;

/// Low bits of a key reserved for the sender's global node index; the
/// counter occupies the remaining 40 bits. 16.7M nodes × 1.1T events per
/// node before either field saturates.
const IDX_BITS: u32 = 24;

/// splitmix64 finalizer — decorrelates per-node RNG seeds.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Events a shard schedules on its private queue.
enum ShardEvent {
    /// Deliver `msg` to the local node at arena index `to`.
    Deliver {
        to: u32,
        from: NodeAddr,
        msg: ChordMsg,
    },
    /// Fire a protocol timer on the local node at arena index `node`.
    Timer { node: u32, kind: TimerKind },
}

/// A cross-shard send in flight: everything the destination shard needs
/// to schedule the delivery, with the key already assigned by the sender.
struct CrossMsg {
    at: SimTime,
    key: u64,
    to_local: u32,
    from: NodeAddr,
    msg: ChordMsg,
}

/// One hosted node: the actor plus the per-node determinism state.
struct ShardNode<A> {
    addr: NodeAddr,
    actor: A,
    stats: LinkStats,
    /// Private RNG stream — every latency sample and loss coin this node's
    /// sends consume comes from here, in event order.
    rng: SmallRng,
    /// Private monotone counter — the high bits of every key this node
    /// assigns.
    ctr: u64,
    /// Dense global index (the low bits of every key).
    gidx: u32,
}

impl<A> ShardNode<A> {
    fn next_key(&mut self) -> u64 {
        let key = (self.ctr << IDX_BITS) | u64::from(self.gidx);
        self.ctr += 1;
        key
    }
}

/// Read-only engine parameters shared by every worker thread.
#[derive(Clone, Copy)]
struct Env<'a> {
    latency: LatencyModel,
    loss: LossModel,
    shards: usize,
    record_upcalls: bool,
    addr_to_gidx: &'a HashMap<NodeAddr, u32>,
}

/// One shard: a private event queue plus the nodes it owns. All mutation
/// during a run happens from exactly one worker thread.
struct Shard<A> {
    id: usize,
    queue: EventQueue<ShardEvent>,
    nodes: Vec<ShardNode<A>>,
    events: u64,
    dropped: u64,
    /// Upcalls tagged with the key drawn at emission time, so the merged
    /// fleet-wide order is `(at, key)` — deterministic for any shard count.
    upcalls: Vec<(u64, UpcallRecord)>,
}

impl<A: Actor> Shard<A> {
    /// Execute every pending event with `at < wend`. Local sends and
    /// timers go straight onto the private queue (and may fire within
    /// this same window); cross-shard sends accumulate in `cross` for the
    /// caller to flush after the window.
    fn run_window(&mut self, wend: u64, env: &Env<'_>, cross: &mut [Vec<CrossMsg>]) {
        while self.queue.peek_time().is_some_and(|t| t.0 < wend) {
            let Some(ev) = self.queue.pop() else {
                break;
            };
            self.events += 1;
            let at = ev.at;
            match ev.event {
                ShardEvent::Deliver { to, from, msg } => {
                    self.deliver(to, at, from, msg, env, cross);
                    // Batch drain: take the rest of this node's due inbox
                    // (consecutive head-of-queue deliveries at the same
                    // instant) without re-entering the pop machinery per
                    // message. Order-preserving: only exact head events
                    // are taken, and mid-batch outputs carry later keys.
                    loop {
                        let next = self.queue.pop_if(
                            |e| matches!(e, ShardEvent::Deliver { to: t2, .. } if *t2 == to),
                        );
                        let Some(next) = next else {
                            break;
                        };
                        self.events += 1;
                        let ShardEvent::Deliver { from, msg, .. } = next.event else {
                            break;
                        };
                        self.deliver(to, at, from, msg, env, cross);
                    }
                }
                ShardEvent::Timer { node, kind } => {
                    let n = &mut self.nodes[node as usize];
                    n.actor.set_now(at.as_millis());
                    let out = n.actor.on_input(Input::Timer(kind));
                    self.apply_outputs(node, at, out, env, cross);
                }
            }
        }
    }

    fn deliver(
        &mut self,
        to: u32,
        at: SimTime,
        from: NodeAddr,
        msg: ChordMsg,
        env: &Env<'_>,
        cross: &mut [Vec<CrossMsg>],
    ) {
        let n = &mut self.nodes[to as usize];
        n.stats.delivered += 1;
        n.actor.set_now(at.as_millis());
        let out = n.actor.on_input(Input::Message { from, msg });
        self.apply_outputs(to, at, out, env, cross);
    }

    /// Process one node's outputs. Every RNG draw and key assignment
    /// comes from the *sender's* private streams, in output order — the
    /// whole determinism contract reduces to this function being a pure
    /// function of (node state, outputs).
    fn apply_outputs(
        &mut self,
        sender: u32,
        at: SimTime,
        outputs: Vec<Output>,
        env: &Env<'_>,
        cross: &mut [Vec<CrossMsg>],
    ) {
        for o in outputs {
            match o {
                Output::Send { to, msg } => {
                    let n = &mut self.nodes[sender as usize];
                    n.stats.sent += 1;
                    if env.loss.drops(&mut n.rng) {
                        self.dropped += 1;
                        continue;
                    }
                    let delay = env.latency.sample(&mut n.rng);
                    let key = n.next_key();
                    let from = n.addr;
                    let Some(&gidx) = env.addr_to_gidx.get(&to.addr) else {
                        // Unknown destination (membership is static here);
                        // the coin, sample and key above are still drawn so
                        // the sender's streams do not depend on the lookup.
                        self.dropped += 1;
                        continue;
                    };
                    let deliver_at = at + delay;
                    let to_local = gidx / env.shards as u32;
                    let dst = (gidx as usize) % env.shards;
                    if dst == self.id {
                        self.queue.push_at_keyed(
                            deliver_at,
                            key,
                            ShardEvent::Deliver {
                                to: to_local,
                                from,
                                msg,
                            },
                        );
                    } else {
                        cross[dst].push(CrossMsg {
                            at: deliver_at,
                            key,
                            to_local,
                            from,
                            msg,
                        });
                    }
                }
                Output::SetTimer { kind, delay_ms } => {
                    let n = &mut self.nodes[sender as usize];
                    let key = n.next_key();
                    self.queue.push_at_keyed(
                        at + delay_ms,
                        key,
                        ShardEvent::Timer { node: sender, kind },
                    );
                }
                Output::Upcall(upcall) => {
                    if env.record_upcalls {
                        let n = &mut self.nodes[sender as usize];
                        let key = n.next_key();
                        let node = n.addr;
                        self.upcalls.push((key, UpcallRecord { at, node, upcall }));
                    }
                }
            }
        }
    }
}

/// The multi-core discrete-event engine. Same hosting surface as
/// [`crate::net::SimNet`] (minus fault injection): add actors, inject
/// outputs, run bounded windows of virtual time, read stats and upcalls.
pub struct ShardedNet<A: Actor> {
    shards: Vec<Shard<A>>,
    /// `S × S` mailboxes, indexed `src * S + dst`. Only the worker threads
    /// touch these, between the barriers of the round protocol.
    grid: Vec<Mutex<Vec<CrossMsg>>>,
    addr_to_gidx: HashMap<NodeAddr, u32>,
    /// Insertion order — node `i` here has global index `i`.
    addr_order: Vec<NodeAddr>,
    seed: u64,
    latency: LatencyModel,
    loss: LossModel,
    record_upcalls: bool,
    now: SimTime,
}

impl<A: Actor> ShardedNet<A> {
    /// A fresh engine with `shards` worker shards (`0` behaves as `1`).
    pub fn new(seed: u64, shards: usize) -> Self {
        let s = shards.max(1);
        ShardedNet {
            shards: (0..s)
                .map(|id| Shard {
                    id,
                    queue: EventQueue::new(),
                    nodes: Vec::new(),
                    events: 0,
                    dropped: 0,
                    upcalls: Vec::new(),
                })
                .collect(),
            grid: (0..s * s).map(|_| Mutex::new(Vec::new())).collect(),
            addr_to_gidx: HashMap::new(),
            addr_order: Vec::new(),
            seed,
            latency: LatencyModel::default(),
            loss: LossModel::NONE,
            record_upcalls: false,
            now: SimTime::ZERO,
        }
    }

    /// Number of shards (== worker threads during a run).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Replace the latency model (also sets the lookahead bound via
    /// [`LatencyModel::min_ms`]).
    pub fn set_latency(&mut self, model: LatencyModel) {
        self.latency = model;
    }

    /// Replace the loss model.
    pub fn set_loss(&mut self, model: LossModel) {
        self.loss = model;
    }

    /// Record upcalls for [`ShardedNet::take_upcalls`].
    pub fn set_record_upcalls(&mut self, on: bool) {
        self.record_upcalls = on;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Host an actor. Nodes are assigned dense global indices in insertion
    /// order and distributed round-robin across shards (`gidx % S`), so
    /// identical insertion sequences give identical per-node RNG streams
    /// for any shard count.
    pub fn add_node(&mut self, actor: A) {
        let gidx = self.addr_order.len() as u32;
        assert!(u64::from(gidx) < 1 << IDX_BITS, "node index overflows key");
        let addr = actor.addr();
        let prev = self.addr_to_gidx.insert(addr, gidx);
        assert!(prev.is_none(), "duplicate node address {addr:?}");
        self.addr_order.push(addr);
        let s = self.shards.len();
        self.shards[gidx as usize % s].nodes.push(ShardNode {
            addr,
            actor,
            stats: LinkStats::default(),
            rng: SmallRng::seed_from_u64(mix64(self.seed ^ mix64(u64::from(gidx)))),
            ctr: 0,
            gidx,
        });
    }

    /// Inject outputs on behalf of `from` (setup traffic: initial timers,
    /// seed messages). Runs on the caller's thread; cross-shard sends are
    /// routed immediately.
    pub fn apply(&mut self, from: NodeAddr, outputs: Vec<Output>) {
        let Some(&gidx) = self.addr_to_gidx.get(&from) else {
            return;
        };
        let s = self.shards.len();
        let env = Env {
            latency: self.latency,
            loss: self.loss,
            shards: s,
            record_upcalls: self.record_upcalls,
            addr_to_gidx: &self.addr_to_gidx,
        };
        let mut cross: Vec<Vec<CrossMsg>> = (0..s).map(|_| Vec::new()).collect();
        let now = self.now;
        let local = gidx / s as u32;
        self.shards[gidx as usize % s].apply_outputs(local, now, outputs, &env, &mut cross);
        for (dst, buf) in cross.into_iter().enumerate() {
            for m in buf {
                self.shards[dst].queue.push_at_keyed(
                    m.at,
                    m.key,
                    ShardEvent::Deliver {
                        to: m.to_local,
                        from: m.from,
                        msg: m.msg,
                    },
                );
            }
        }
    }

    /// Borrow a node's actor.
    pub fn node(&self, addr: NodeAddr) -> Option<&A> {
        let &gidx = self.addr_to_gidx.get(&addr)?;
        let s = self.shards.len();
        Some(&self.shards[gidx as usize % s].nodes[(gidx / s as u32) as usize].actor)
    }

    /// Mutably borrow a node's actor. Outputs produced while holding the
    /// borrow are not routed — prefer [`ShardedNet::with_node`].
    pub fn node_mut(&mut self, addr: NodeAddr) -> Option<&mut A> {
        let &gidx = self.addr_to_gidx.get(&addr)?;
        let s = self.shards.len();
        Some(&mut self.shards[gidx as usize % s].nodes[(gidx / s as u32) as usize].actor)
    }

    /// Run `f` against a node and route the outputs it returns.
    pub fn with_node<F, R>(&mut self, addr: NodeAddr, f: F) -> Option<R>
    where
        F: FnOnce(&mut A) -> (R, Vec<Output>),
    {
        let actor = self.node_mut(addr)?;
        let (r, out) = f(actor);
        self.apply(addr, out);
        Some(r)
    }

    /// All hosted addresses, in insertion (global index) order.
    pub fn addrs(&self) -> Vec<NodeAddr> {
        self.addr_order.clone()
    }

    /// Transport counters for one node.
    pub fn link_stats(&self, addr: NodeAddr) -> LinkStats {
        let s = self.shards.len();
        match self.addr_to_gidx.get(&addr) {
            Some(&gidx) => self.shards[gidx as usize % s].nodes[(gidx / s as u32) as usize].stats,
            None => LinkStats::default(),
        }
    }

    /// Total events executed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Messages dropped (loss model or unknown destination).
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Events still pending across all shard queues.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Events scheduled in the past and clamped (always 0 under the
    /// conservative window protocol; exported so a violation is visible).
    pub fn clamped_events(&self) -> u64 {
        self.shards.iter().map(|s| s.queue.clamped_events()).sum()
    }

    /// Drain recorded upcalls, merged into the deterministic `(at, key)`
    /// order — identical for any shard count.
    pub fn take_upcalls(&mut self) -> Vec<UpcallRecord> {
        let mut all: Vec<(u64, UpcallRecord)> = Vec::new();
        for sh in &mut self.shards {
            all.append(&mut sh.upcalls);
        }
        all.sort_by_key(|(key, rec)| (rec.at, *key));
        all.into_iter().map(|(_, rec)| rec).collect()
    }

    /// Run for `ms` more virtual milliseconds.
    pub fn run_for(&mut self, ms: u64) {
        let deadline = self.now + ms;
        self.run_until(deadline);
    }

    /// Run until virtual time reaches `t` (events at exactly `t`
    /// included), spawning one worker thread per shard when `S > 1`.
    pub fn run_until(&mut self, t: SimTime) {
        let deadline = t.0;
        let lookahead = self.latency.min_ms();
        let s = self.shards.len();
        let env = Env {
            latency: self.latency,
            loss: self.loss,
            shards: s,
            record_upcalls: self.record_upcalls,
            addr_to_gidx: &self.addr_to_gidx,
        };
        if s == 1 {
            // Single shard: the window protocol degenerates to "run
            // everything due" — no threads, no barriers, no mailboxes.
            let mut cross: Vec<Vec<CrossMsg>> = vec![Vec::new()];
            self.shards[0].run_window(deadline.saturating_add(1), &env, &mut cross);
            debug_assert!(cross[0].is_empty(), "self-send routed cross-shard");
        } else {
            let grid = &self.grid;
            let barrier = Barrier::new(s);
            let mins = [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)];
            std::thread::scope(|scope| {
                for shard in self.shards.iter_mut() {
                    let barrier = &barrier;
                    let mins = &mins;
                    scope.spawn(move || {
                        let mut cross: Vec<Vec<CrossMsg>> = (0..s).map(|_| Vec::new()).collect();
                        let mut round = 0usize;
                        loop {
                            // Drain inbound mailboxes. Barrier B of the
                            // previous round guarantees every message sent
                            // in that round is already here, so the local
                            // minimum below is exact.
                            for src in 0..s {
                                let mut cell = grid[src * s + shard.id].lock();
                                for m in cell.drain(..) {
                                    shard.queue.push_at_keyed(
                                        m.at,
                                        m.key,
                                        ShardEvent::Deliver {
                                            to: m.to_local,
                                            from: m.from,
                                            msg: m.msg,
                                        },
                                    );
                                }
                            }
                            let local_min = shard.queue.peek_time().map_or(u64::MAX, |t| t.0);
                            let p = round & 1;
                            mins[p].fetch_min(local_min, Ordering::AcqRel);
                            barrier.wait(); // A: all minima published
                            let gmin = mins[p].load(Ordering::Acquire);
                            if gmin > deadline {
                                // Uniform exit: every thread reads the same
                                // gmin in the same round, after draining,
                                // having flushed nothing since — so all
                                // mailboxes are empty and every event
                                // ≤ deadline has been executed.
                                break;
                            }
                            let wend = gmin
                                .saturating_add(lookahead)
                                .min(deadline.saturating_add(1));
                            shard.run_window(wend, &env, &mut cross);
                            for (dst, buf) in cross.iter_mut().enumerate() {
                                if !buf.is_empty() {
                                    grid[shard.id * s + dst].lock().append(buf);
                                }
                            }
                            if shard.id == 0 {
                                // Reset the *other* parity slot for the
                                // round after next; everyone is past its
                                // last read (barrier A) and before its next
                                // write (barrier B).
                                mins[1 - p].store(u64::MAX, Ordering::Release);
                            }
                            barrier.wait(); // B: all sends flushed
                            round += 1;
                        }
                    });
                }
            });
            debug_assert!(
                self.grid.iter().all(|c| c.lock().is_empty()),
                "cross-shard mailboxes not drained at exit"
            );
        }
        // Land exactly on the deadline so that back-to-back bounded runs
        // cover contiguous, exact windows.
        for shard in &mut self.shards {
            shard.queue.advance_to(t);
        }
        self.now = t;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dat_chord::{Id, NodeRef, Payload, Upcall};

    /// A toy protocol that generates dense cross-shard traffic: every
    /// timer tick fans a message out to all peers, every third delivery
    /// echoes back to the sender, every seventh surfaces an upcall.
    struct PingActor {
        me: NodeRef,
        peers: Vec<NodeAddr>,
        rounds: u32,
        delivered: u64,
        now: u64,
    }

    impl Actor for PingActor {
        fn addr(&self) -> NodeAddr {
            self.me.addr
        }

        fn on_input(&mut self, input: Input) -> Vec<Output> {
            match input {
                Input::Timer(TimerKind::App(k)) => {
                    if self.rounds == 0 {
                        return vec![];
                    }
                    self.rounds -= 1;
                    let mut out: Vec<Output> = self
                        .peers
                        .iter()
                        .map(|&p| Output::Send {
                            to: NodeRef::new(Id(p.0), p),
                            msg: ChordMsg::App {
                                proto: 7,
                                from: self.me,
                                payload: Payload::from(vec![k as u8]),
                            },
                        })
                        .collect();
                    out.push(Output::SetTimer {
                        kind: TimerKind::App(k),
                        delay_ms: 25,
                    });
                    out
                }
                Input::Message { from, .. } => {
                    self.delivered += 1;
                    if self.delivered.is_multiple_of(3) {
                        vec![Output::Send {
                            to: NodeRef::new(Id(from.0), from),
                            msg: ChordMsg::App {
                                proto: 7,
                                from: self.me,
                                payload: Payload::from(vec![0xEE]),
                            },
                        }]
                    } else if self.delivered.is_multiple_of(7) {
                        vec![Output::Upcall(Upcall::Joined {
                            id: Id(self.delivered),
                        })]
                    } else {
                        vec![]
                    }
                }
                _ => vec![],
            }
        }

        fn set_now(&mut self, now_ms: u64) {
            self.now = now_ms;
        }
    }

    /// Full observable state of a run, for digest comparison.
    type Digest = (u64, u64, u64, Vec<(u64, u64, u64)>, Vec<(u64, u64)>);

    fn run(shards: usize, n: usize, latency: LatencyModel, loss: f64, ms: u64) -> Digest {
        let mut net: ShardedNet<PingActor> = ShardedNet::new(0xD1CE, shards);
        net.set_latency(latency);
        net.set_loss(LossModel::new(loss));
        net.set_record_upcalls(true);
        let addrs: Vec<NodeAddr> = (0..n as u64).map(|i| NodeAddr(1000 + i)).collect();
        for (i, &a) in addrs.iter().enumerate() {
            let peers = addrs
                .iter()
                .copied()
                .filter(|&p| p != a)
                .collect::<Vec<_>>();
            net.add_node(PingActor {
                me: NodeRef::new(Id(a.0), a),
                peers,
                rounds: 4 + (i as u32 % 3),
                delivered: 0,
                now: 0,
            });
        }
        for (i, &a) in addrs.iter().enumerate() {
            net.apply(
                a,
                vec![Output::SetTimer {
                    kind: TimerKind::App(i as u64),
                    delay_ms: 1 + (i as u64 % 5),
                }],
            );
        }
        // Split the horizon into two bounded runs to cover the
        // window-resume path (advance_to landing between events).
        net.run_for(ms / 2);
        net.run_until(SimTime(ms));
        let stats = addrs
            .iter()
            .map(|&a| {
                let s = net.link_stats(a);
                (a.0, s.sent, s.delivered)
            })
            .collect();
        let ups = net
            .take_upcalls()
            .into_iter()
            .map(|u| (u.at.0, u.node.0))
            .collect();
        assert_eq!(net.clamped_events(), 0, "conservative window violated");
        assert_eq!(net.now(), SimTime(ms));
        (
            net.events_processed(),
            net.dropped(),
            net.pending_events() as u64,
            stats,
            ups,
        )
    }

    #[test]
    fn digest_is_shard_count_invariant_lan() {
        // Constant 1 ms latency — the minimum lookahead, so the window
        // protocol runs the maximum number of rounds.
        let base = run(1, 10, LatencyModel::Constant(1), 0.0, 400);
        assert!(base.0 > 500, "workload too small: {} events", base.0);
        for s in [2usize, 3, 4, 8] {
            assert_eq!(
                run(s, 10, LatencyModel::Constant(1), 0.0, 400),
                base,
                "{s}-shard digest diverged from 1-shard"
            );
        }
    }

    #[test]
    fn digest_is_shard_count_invariant_with_jitter_and_loss() {
        // Uniform jitter exercises per-node latency streams; loss
        // exercises per-node coin streams. Both must stay byte-identical
        // for any shard count.
        let model = LatencyModel::Uniform { lo: 3, hi: 9 };
        let base = run(1, 12, model, 0.08, 600);
        assert!(base.1 > 0, "loss model never fired");
        assert!(!base.4.is_empty(), "no upcalls recorded");
        for s in [2usize, 4, 5, 8] {
            assert_eq!(run(s, 12, model, 0.08, 600), base);
        }
    }

    #[test]
    fn more_shards_than_nodes_is_fine() {
        let base = run(1, 3, LatencyModel::Constant(2), 0.0, 200);
        assert_eq!(run(8, 3, LatencyModel::Constant(2), 0.0, 200), base);
    }

    #[test]
    fn upcall_merge_is_globally_time_ordered() {
        let mut net: ShardedNet<PingActor> = ShardedNet::new(1, 4);
        net.set_record_upcalls(true);
        let addrs: Vec<NodeAddr> = (0..8u64).map(NodeAddr).collect();
        for &a in &addrs {
            let peers = addrs.iter().copied().filter(|&p| p != a).collect();
            net.add_node(PingActor {
                me: NodeRef::new(Id(a.0), a),
                peers,
                rounds: 6,
                delivered: 0,
                now: 0,
            });
        }
        for &a in &addrs {
            net.apply(
                a,
                vec![Output::SetTimer {
                    kind: TimerKind::App(0),
                    delay_ms: 1,
                }],
            );
        }
        net.run_for(500);
        let ups = net.take_upcalls();
        assert!(!ups.is_empty());
        assert!(
            ups.windows(2).all(|w| w[0].at <= w[1].at),
            "merged upcalls out of time order"
        );
    }

    #[test]
    fn with_node_routes_outputs() {
        let mut net: ShardedNet<PingActor> = ShardedNet::new(2, 2);
        let a = NodeAddr(1);
        let b = NodeAddr(2);
        for &x in &[a, b] {
            net.add_node(PingActor {
                me: NodeRef::new(Id(x.0), x),
                peers: vec![],
                rounds: 0,
                delivered: 0,
                now: 0,
            });
        }
        net.with_node(a, |actor| {
            let me = actor.me;
            (
                (),
                vec![Output::Send {
                    to: NodeRef::new(Id(b.0), b),
                    msg: ChordMsg::App {
                        proto: 7,
                        from: me,
                        payload: Payload::from(vec![1]),
                    },
                }],
            )
        });
        assert_eq!(net.pending_events(), 1);
        net.run_for(50);
        assert_eq!(net.link_stats(a).sent, 1);
        assert_eq!(net.link_stats(b).delivered, 1);
        assert_eq!(net.events_processed(), 1);
    }
}
