//! Deterministic structure-aware decode fuzzing for every wire codec in
//! the workspace.
//!
//! No nightly toolchain, no external fuzzing engine: a seeded mutator
//! ([`rand::rngs::SmallRng`]) damages frames drawn from a corpus of valid
//! encodings and feeds them to the real decoder. Two properties are
//! enforced per mutation:
//!
//! 1. **Decode never panics.** Whatever the bytes, the decoder must
//!    return `Ok` or `Err` — a panic in a decoder is remote-triggerable
//!    denial of service. Each decode runs under `catch_unwind` so a
//!    failure reports the exact seed, iteration, and hex bytes needed to
//!    replay it.
//! 2. **Re-encode stability.** When damaged bytes *do* decode (a hostile
//!    writer can always forge valid frames), re-encoding the decoded
//!    message and decoding again must reproduce it exactly. A decoder
//!    that "helpfully" normalises on the way in would make message
//!    identity transport-dependent.
//!
//! Runs are pure functions of `(target, seed, iterations)`, so a CI smoke
//! (`scripts/ci.sh`) and a failure replay execute byte-identical
//! schedules.

#![deny(clippy::unwrap_used)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dat_chord::{ChordMsg, Id, NodeAddr, NodeRef};
use dat_core::aggregate::AggPartial;
use dat_core::codec::DatMsg;
use dat_maan::{MaanMsg, Predicate, Resource};

/// Which decoder a fuzz run targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzTarget {
    /// The chord overlay frame codec ([`dat_chord::codec`]).
    Chord,
    /// The DAT aggregation payload codec ([`dat_core::codec::DatMsg`]).
    Dat,
    /// The MAAN registration/query payload codec ([`dat_maan::MaanMsg`]).
    Maan,
    /// The Prometheus text parser ([`dat_obs::validate_prometheus`]) —
    /// attacker-reachable through [`dat_chord::ChordMsg::StatsReply`].
    Stats,
}

/// All fuzzable targets, for matrix runs.
pub const ALL_TARGETS: [FuzzTarget; 4] = [
    FuzzTarget::Chord,
    FuzzTarget::Dat,
    FuzzTarget::Maan,
    FuzzTarget::Stats,
];

impl FuzzTarget {
    /// Stable label (reports, CI output).
    pub fn label(self) -> &'static str {
        match self {
            FuzzTarget::Chord => "chord",
            FuzzTarget::Dat => "dat",
            FuzzTarget::Maan => "maan",
            FuzzTarget::Stats => "stats",
        }
    }
}

/// Outcome tallies of one fuzz run. The run itself panics on any decoder
/// panic or re-encode instability; a returned report means both
/// properties held for every mutation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuzzReport {
    /// Mutations fed to the decoder.
    pub iterations: u64,
    /// Mutated inputs the decoder rejected with a clean error.
    pub rejected: u64,
    /// Mutated inputs that still decoded (and passed the re-encode
    /// stability check). Non-zero is expected: some mutations are no-ops
    /// or hit don't-care bytes.
    pub survived: u64,
    /// Valid frames in the seed corpus.
    pub corpus: usize,
}

/// Run `iterations` seeded mutations against `target`'s decoder.
///
/// Panics — with the seed, iteration index, and a hex dump of the
/// offending input — if the decoder panics or violates re-encode
/// stability. Deterministic: same `(target, seed, iterations)`, same
/// mutation sequence, same report.
pub fn fuzz_codec(target: FuzzTarget, seed: u64, iterations: u64) -> FuzzReport {
    let corpus = corpus_for(target);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut report = FuzzReport {
        corpus: corpus.len(),
        ..FuzzReport::default()
    };
    for i in 0..iterations {
        let base = &corpus[rng.random_range(0..corpus.len())];
        let mutated = mutate(base, &mut rng);
        let decoded_ok = match catch_unwind(AssertUnwindSafe(|| check_one(target, &mutated))) {
            Ok(ok) => ok,
            Err(_) => panic!(
                "decoder panic: target={} seed={seed:#x} iteration={i} input={}",
                target.label(),
                hex(&mutated)
            ),
        };
        report.iterations += 1;
        if decoded_ok {
            report.survived += 1;
        } else {
            report.rejected += 1;
        }
    }
    report
}

/// Hex-encode bytes for replay lines.
fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Apply one randomly chosen mutation to a copy of `base`.
fn mutate(base: &[u8], rng: &mut SmallRng) -> Vec<u8> {
    let mut bytes = base.to_vec();
    match rng.random_range(0..7u32) {
        // Flip 1–4 random bits.
        0 if !bytes.is_empty() => {
            for _ in 0..rng.random_range(1..=4u32) {
                let bit = rng.random_range(0..bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
        }
        // Truncate at a random offset (possibly to empty).
        1 => {
            let keep = rng.random_range(0..=bytes.len());
            bytes.truncate(keep);
        }
        // Append random garbage.
        2 => {
            for _ in 0..rng.random_range(1..=16u32) {
                bytes.push(rng.random());
            }
        }
        // Overwrite a random run with random bytes.
        3 if !bytes.is_empty() => {
            let start = rng.random_range(0..bytes.len());
            let len = rng.random_range(1..=bytes.len() - start);
            for b in &mut bytes[start..start + len] {
                *b = rng.random();
            }
        }
        // Insert random bytes at a random offset.
        4 => {
            let at = rng.random_range(0..=bytes.len());
            let n = rng.random_range(1..=8u32);
            for _ in 0..n {
                bytes.insert(at, rng.random());
            }
        }
        // Delete a random run.
        5 if !bytes.is_empty() => {
            let start = rng.random_range(0..bytes.len());
            let len = rng.random_range(1..=bytes.len() - start);
            bytes.drain(start..start + len);
        }
        // Replace with a fully random buffer (structure-free probing).
        _ => {
            let n = rng.random_range(0..64usize);
            bytes.clear();
            for _ in 0..n {
                bytes.push(rng.random());
            }
        }
    }
    bytes
}

/// Decode `bytes` with `target`'s decoder; on success enforce re-encode
/// stability. Returns whether the input decoded.
fn check_one(target: FuzzTarget, bytes: &[u8]) -> bool {
    match target {
        // Stability is checked on *bytes* (encode ∘ decode ∘ encode is a
        // fixed point), not message equality — a mutant can smuggle a NaN
        // into an f64 field, and NaN != NaN would flag a byte-faithful
        // round trip as unstable.
        FuzzTarget::Chord => match dat_chord::codec::decode(bytes) {
            Ok(msg) => {
                let re = dat_chord::codec::encode(&msg);
                let again = dat_chord::codec::decode(&re)
                    .expect("re-encode of a decoded chord message must decode");
                assert_eq!(
                    dat_chord::codec::encode(&again),
                    re,
                    "chord re-encode instability"
                );
                true
            }
            Err(_) => false,
        },
        FuzzTarget::Dat => match DatMsg::decode(bytes) {
            Ok(msg) => {
                let re = msg.encode();
                let again =
                    DatMsg::decode(&re).expect("re-encode of a decoded DAT message must decode");
                assert_eq!(again.encode(), re, "DAT re-encode instability");
                true
            }
            Err(_) => false,
        },
        FuzzTarget::Maan => match MaanMsg::decode(bytes) {
            Ok(msg) => {
                let re = msg.encode();
                let again =
                    MaanMsg::decode(&re).expect("re-encode of a decoded MAAN message must decode");
                assert_eq!(again.encode(), re, "MAAN re-encode instability");
                true
            }
            Err(_) => false,
        },
        FuzzTarget::Stats => match core::str::from_utf8(bytes) {
            // The parser's contract is Ok/Err on *any* string; invalid
            // UTF-8 never reaches it on the real path (`Reader::str`
            // rejects it first), so non-UTF-8 mutants count as rejected.
            Ok(text) => dat_obs::validate_prometheus(text).is_ok(),
            Err(_) => false,
        },
    }
}

/// Valid encodings for `target` — every message variant is represented so
/// mutations explore each decode path from a near-valid starting point.
fn corpus_for(target: FuzzTarget) -> Vec<Vec<u8>> {
    match target {
        FuzzTarget::Chord => chord_corpus()
            .iter()
            .map(dat_chord::codec::encode)
            .collect(),
        FuzzTarget::Dat => dat_corpus().iter().map(DatMsg::encode).collect(),
        FuzzTarget::Maan => maan_corpus().iter().map(MaanMsg::encode).collect(),
        FuzzTarget::Stats => stats_corpus(),
    }
}

fn nr(n: u64) -> NodeRef {
    NodeRef {
        id: Id(n.wrapping_mul(0x9e37_79b9)),
        addr: NodeAddr(n),
    }
}

/// One valid message per chord frame variant.
pub fn chord_corpus() -> Vec<ChordMsg> {
    vec![
        ChordMsg::FindSuccessor {
            req: 1,
            key: Id(u64::MAX),
            origin: nr(2),
            hops: 3,
        },
        ChordMsg::FoundSuccessor {
            req: 4,
            owner: nr(5),
            owner_pred: Some(nr(6)),
            owner_succ: None,
            hops: 7,
        },
        ChordMsg::GetNeighbors {
            req: 8,
            sender: nr(9),
        },
        ChordMsg::Neighbors {
            req: 10,
            me: nr(11),
            pred: None,
            succ_list: vec![nr(12), nr(13), nr(14)],
        },
        ChordMsg::Notify { sender: nr(15) },
        ChordMsg::Ping {
            req: 16,
            sender: nr(17),
        },
        ChordMsg::Pong {
            req: 18,
            sender: nr(19),
        },
        ChordMsg::ProbeJoin {
            req: 20,
            origin: nr(21),
        },
        ChordMsg::ProbeJoinReply {
            req: 22,
            designated: Id(23),
        },
        ChordMsg::LeaveToPred {
            leaver: nr(24),
            succ_list: vec![],
        },
        ChordMsg::LeaveToSucc {
            leaver: nr(25),
            pred: Some(nr(26)),
        },
        ChordMsg::Route {
            key: Id(27),
            payload: vec![1, 2, 3, 4, 5].into(),
            origin: nr(28),
            hops: 29,
        },
        ChordMsg::App {
            proto: 1,
            from: nr(30),
            payload: vec![7; 64].into(),
        },
        ChordMsg::Broadcast {
            limit: Id(31),
            payload: vec![9, 9].into(),
            origin: nr(32),
            depth: 33,
        },
        ChordMsg::StatsRequest {
            req: 34,
            sender: nr(35),
        },
        ChordMsg::StatsReply {
            req: 36,
            sender: nr(37),
            text: b"# TYPE sent_total counter\nsent_total 1\n".to_vec().into(),
        },
    ]
}

fn filled_partial() -> AggPartial {
    let mut p = AggPartial::identity_with_distinct(4);
    p.count = 5;
    p.sum = 42.5;
    p.sum_sq = 900.25;
    p.min = 1.5;
    p.max = 20.0;
    p.contributors = 5;
    p.age_epochs = 2;
    p.trace_id = 0xDEAD_BEEF;
    p.observe_item(b"site-a");
    p.observe_item(b"site-b");
    p
}

/// One valid message per DAT payload variant.
pub fn dat_corpus() -> Vec<DatMsg> {
    vec![
        DatMsg::Update {
            key: Id(1),
            epoch: 2,
            partial: filled_partial(),
            sender: nr(3),
        },
        DatMsg::Query {
            reqid: 4,
            key: Id(5),
            limit: Id(6),
            parent: nr(7),
            depth: 8,
        },
        DatMsg::Response {
            reqid: 9,
            key: Id(10),
            partial: AggPartial::identity(),
            sender: nr(11),
        },
        DatMsg::Result {
            reqid: 12,
            key: Id(13),
            partial: filled_partial(),
        },
        DatMsg::Request {
            reqid: 14,
            key: Id(15),
            requester: nr(16),
        },
        DatMsg::Prune {
            key: Id(17),
            sender: nr(18),
        },
        DatMsg::RootState {
            key: Id(19),
            seq: 20,
            root: nr(21),
            children: vec![
                (Id(22), filled_partial(), 1),
                (Id(23), AggPartial::identity(), 0),
            ],
            raw: vec![(Id(24), 3.5, 0)],
        },
        DatMsg::RawSample {
            key: Id(25),
            epoch: 26,
            value: 7.25,
            sender: nr(27),
        },
    ]
}

/// One valid message per MAAN payload variant.
pub fn maan_corpus() -> Vec<MaanMsg> {
    let res = Resource::new("grid://site-a/node-1")
        .with("cpu-speed", 2.4)
        .with("os", "linux");
    vec![
        MaanMsg::Register {
            attr: "cpu-speed".to_string(),
            value_id: Id(100),
            raw_num: Some(2.4),
            resource: res.clone(),
        },
        MaanMsg::RangeQuery {
            qid: 1,
            lo_id: Id(10),
            hi_id: Id(200),
            pred: Predicate::range("cpu-speed", 1.0, 3.0),
            origin: nr(2),
            hops_left: 16,
        },
        MaanMsg::Hits {
            qid: 3,
            resources: vec![res],
        },
        MaanMsg::Done { qid: 4 },
    ]
}

/// Valid Prometheus text exposition samples.
fn stats_corpus() -> Vec<Vec<u8>> {
    vec![
        b"# TYPE sent_total counter\nsent_total 1\n".to_vec(),
        b"# TYPE x counter\nx{layer=\"chord\"} 5\nx{layer=\"dat\"} 2\n".to_vec(),
        b"# HELP y bytes\n# TYPE y gauge\ny 3.25\n".to_vec(),
        b"bad_frames_total{kind=\"bad_checksum\"} 7\n".to_vec(),
    ]
}

#[allow(clippy::unwrap_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_valid_and_cover_every_variant() {
        assert_eq!(chord_corpus().len(), 16);
        assert_eq!(dat_corpus().len(), 8);
        assert_eq!(maan_corpus().len(), 4);
        for t in ALL_TARGETS {
            for frame in corpus_for(t) {
                assert!(
                    check_one(t, &frame),
                    "{} corpus entry failed to decode",
                    t.label()
                );
            }
        }
    }

    #[test]
    fn fuzz_is_deterministic_for_a_seed() {
        for t in ALL_TARGETS {
            let a = fuzz_codec(t, 0xF00D, 500);
            let b = fuzz_codec(t, 0xF00D, 500);
            assert_eq!(a, b, "{} run not deterministic", t.label());
            let c = fuzz_codec(t, 0xF00E, 500);
            assert_ne!(a, c, "{} seed has no effect?", t.label());
        }
    }

    #[test]
    fn smoke_every_target_briefly() {
        for t in ALL_TARGETS {
            let r = fuzz_codec(t, 0xDA7, 2_000);
            assert_eq!(r.iterations, 2_000);
            assert_eq!(r.rejected + r.survived, r.iterations);
            assert!(r.rejected > 0, "{}: mutations never rejected?", t.label());
        }
    }
}
