//! The deterministic event queue: a hierarchical timer wheel.
//!
//! The paper's prototype uses "a heap-based event queue … to insert and
//! fire those events in a chronological order" (§4). Ours additionally
//! breaks timestamp ties with a monotone sequence number, which makes every
//! simulation run fully deterministic for a given seed — equal-time events
//! fire in insertion order.
//!
//! At 10^5–10^6 simulated nodes the `O(log n)` sift per heap operation
//! dominates the engine, so the default scheduler is now a hierarchical
//! timer wheel ([`SchedulerKind::Wheel`]): six levels of 64 slots at 1 ms
//! granularity, spanning 2^36 ms (~2.2 years of virtual time) with `O(1)`
//! insertion. Events beyond the wheel span overflow into the old binary
//! heap and migrate in when the clock reaches their epoch. The original
//! heap scheduler is retained ([`SchedulerKind::Heap`]) so parity tests can
//! prove both produce byte-identical pop sequences: **both schedulers obey
//! the exact same strict `(at, seq)` order**, which is what the digest
//! tests in `tests/determinism.rs` rely on.
//!
//! ## Why the wheel preserves `(at, seq)` order
//!
//! * Every event in a level-0 slot shares one firing time: level-0 events
//!   differ from the cursor only in their low 6 bits, so a drained slot `s`
//!   holds exactly the events firing at `(now & !63) | s`. Sorting the
//!   drained slot by `seq` therefore restores full `(at, seq)` order no
//!   matter how cascading or overflow migration interleaved insertions.
//! * Higher-level slots are cascaded (redistributed one level down) when
//!   the cursor enters their period, never popped directly.
//! * Events pushed at exactly `now` go to a FIFO ready queue; their
//!   sequence numbers are monotone, so FIFO order is `seq` order.

#![deny(clippy::unwrap_used)]

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// An event scheduled at a point in virtual time.
#[derive(Clone, Debug)]
pub struct Scheduled<E> {
    /// Firing time.
    pub at: SimTime,
    /// Insertion sequence number (tie breaker).
    pub seq: u64,
    /// The event itself.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Which scheduler backs an [`EventQueue`].
///
/// Both produce the exact same pop order; the heap exists so determinism
/// parity can be proven against the original implementation and as a
/// reference for benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Hierarchical timer wheel with far-future overflow heap (default).
    Wheel,
    /// The original binary min-heap.
    Heap,
}

/// Bits consumed per wheel level (64 slots).
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of levels; the wheel spans `2^(LEVEL_BITS * LEVELS)` ms.
const LEVELS: usize = 6;

/// The hierarchical timer wheel. All time arithmetic is on raw `u64`
/// milliseconds; `now` is owned by the enclosing [`EventQueue`] and passed
/// in so the cursor and the public clock can never disagree.
#[derive(Debug)]
struct Wheel<E> {
    /// `LEVELS * SLOTS` buckets, level-major.
    slots: Vec<Vec<Scheduled<E>>>,
    /// One occupancy bitmap per level (bit `s` set ⇔ slot `s` non-empty).
    occupied: [u64; LEVELS],
    /// Events due exactly at `now`, in `seq` order.
    ready: VecDeque<Scheduled<E>>,
    /// Events beyond the wheel span, ordered by `(at, seq)`.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Total pending events across ready + slots + overflow.
    len: usize,
    /// Cached exact firing time of the earliest pending event.
    next_at: Option<SimTime>,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            slots: std::iter::repeat_with(Vec::new)
                .take(LEVELS * SLOTS)
                .collect(),
            occupied: [0; LEVELS],
            ready: VecDeque::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            next_at: None,
        }
    }

    /// Level an event at `at` belongs to, given cursor `now`:
    /// the highest 6-bit group in which `at` and `now` differ.
    /// `at == now` is the caller's problem (ready queue); `>= LEVELS`
    /// means overflow.
    fn level_of(now: u64, at: u64) -> usize {
        debug_assert!(at > now);
        ((63 - (at ^ now).leading_zeros()) / LEVEL_BITS) as usize
    }

    /// File one event relative to cursor `now`. `at >= now` required.
    fn place(&mut self, now: u64, ev: Scheduled<E>) {
        let at = ev.at.0;
        if at == now {
            // Monotone seq ⇒ FIFO append keeps the ready queue in
            // (at, seq) order.
            self.ready.push_back(ev);
            return;
        }
        let lvl = Self::level_of(now, at);
        if lvl >= LEVELS {
            self.overflow.push(ev);
            return;
        }
        let slot = ((at >> (LEVEL_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[lvl * SLOTS + slot].push(ev);
        self.occupied[lvl] |= 1u64 << slot;
    }

    fn push(&mut self, now: u64, ev: Scheduled<E>) {
        self.next_at = Some(match self.next_at {
            Some(n) => n.min(ev.at),
            None => ev.at,
        });
        self.len += 1;
        self.place(now, ev);
    }

    /// Make the ready queue non-empty if any event is pending, advancing
    /// the cursor no further than the earliest pending event's firing
    /// time. Returns `false` when the queue is empty.
    fn refill_ready(&mut self, now: &mut u64) -> bool {
        loop {
            // The cursor can be moved onto a pending event's exact firing
            // time from *outside* (`advance_to` is bounded by `peek_time`,
            // which is inclusive). Events due at `now` may then be parked
            // in two places a plain ready-first pop would miss, firing
            // them late and out of seq order behind fresh `at == now`
            // pushes:
            //
            // * the overflow heap, when `now` crossed a `2^36`-epoch
            //   boundary while the wheel still held events;
            // * a cursor-digit slot — the slot at `now`'s own digit of
            //   some level, the only slots whose period contains `now` —
            //   when the event was filed there relative to an older
            //   cursor.
            //
            // Sweep both into place relative to the current cursor before
            // consulting `ready`: due events join `ready`, everything
            // else lands at slots strictly past the cursor (a re-placed
            // event's highest digit differing from `now` is necessarily
            // larger than the cursor's, so this single ascending pass
            // never re-occupies a cursor-digit slot it already drained).
            let mut due_swept = false;
            while let Some(e) = self.overflow.peek() {
                if e.at.0 != *now && Self::level_of(*now, e.at.0) >= LEVELS {
                    break;
                }
                if let Some(e) = self.overflow.pop() {
                    due_swept |= e.at.0 == *now;
                    self.place(*now, e);
                }
            }
            for lvl in 0..LEVELS {
                let shift = LEVEL_BITS * lvl as u32;
                let s = (*now >> shift) & (SLOTS as u64 - 1);
                if self.occupied[lvl] & (1u64 << s) == 0 {
                    continue;
                }
                let idx = lvl * SLOTS + s as usize;
                let evs = std::mem::take(&mut self.slots[idx]);
                self.occupied[lvl] &= !(1u64 << s);
                for ev in evs {
                    debug_assert!(ev.at.0 >= *now, "pending event in the past");
                    due_swept |= ev.at.0 == *now;
                    self.place(*now, ev);
                }
            }
            if due_swept {
                // Everything in `ready` fires at exactly `now`; swept-in
                // events may carry smaller seqs than ones pushed after the
                // cursor arrived here, so restore seq order.
                self.ready.make_contiguous().sort_unstable_by_key(|e| e.seq);
            }
            if !self.ready.is_empty() {
                return true;
            }
            let Some(lvl) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Wheel empty: jump the cursor to the overflow epoch and
                // migrate everything within the new span in.
                let Some(t) = self.overflow.peek().map(|e| e.at.0) else {
                    return false;
                };
                debug_assert!(t >= *now, "overflow event in the past");
                *now = t;
                while let Some(e) = self.overflow.peek() {
                    if e.at.0 != *now && Self::level_of(*now, e.at.0) >= LEVELS {
                        break;
                    }
                    // Heap pops in (at, seq) order, so same-`at` events
                    // reach the ready queue already in seq order.
                    if let Some(e) = self.overflow.pop() {
                        self.place(*now, e);
                    }
                }
                continue;
            };
            let shift = LEVEL_BITS * lvl as u32;
            let cur = (*now >> shift) & (SLOTS as u64 - 1);
            let mask = self.occupied[lvl] & (!0u64 << cur);
            debug_assert!(mask != 0, "occupied slot behind the cursor at level {lvl}");
            let mask = if mask != 0 { mask } else { self.occupied[lvl] };
            let s = mask.trailing_zeros() as u64;
            let idx = lvl * SLOTS + s as usize;
            let mut evs = std::mem::take(&mut self.slots[idx]);
            self.occupied[lvl] &= !(1u64 << s);
            if lvl == 0 {
                // Every event here fires at the same instant (see module
                // docs); seq-sort restores insertion order exactly.
                let t0 = (*now & !(SLOTS as u64 - 1)) | s;
                debug_assert!(t0 >= *now, "level-0 slot in the past");
                debug_assert!(evs.iter().all(|e| e.at.0 == t0));
                *now = (*now).max(t0);
                evs.sort_unstable_by_key(|e| e.seq);
                self.ready = evs.into();
            } else {
                // Cascade: enter the slot's period and redistribute its
                // events to lower levels. `base` is the period start; all
                // events in the slot fire within [base, base + 64^lvl), so
                // advancing the cursor to it skips no pending event.
                let span_below = 1u64 << (shift + LEVEL_BITS);
                let base = (*now & !(span_below - 1)) | (s << shift);
                *now = (*now).max(base);
                for ev in evs {
                    self.place(*now, ev);
                }
            }
        }
    }

    /// Recompute the cached earliest firing time (exact, not a lower
    /// bound). Called after pops; pushes maintain the cache incrementally.
    fn recompute_next(&mut self, now: u64) {
        if let Some(front) = self.ready.front() {
            self.next_at = Some(front.at);
            return;
        }
        let mut best: Option<u64> = self.overflow.peek().map(|e| e.at.0);
        for lvl in 0..LEVELS {
            if self.occupied[lvl] == 0 {
                continue;
            }
            let shift = LEVEL_BITS * lvl as u32;
            let cur = (now >> shift) & (SLOTS as u64 - 1);
            let mask = self.occupied[lvl] & (!0u64 << cur);
            let mask = if mask != 0 { mask } else { self.occupied[lvl] };
            let s = mask.trailing_zeros() as u64;
            let cand = if lvl == 0 {
                // Level-0 slots hold a single firing time.
                (now & !(SLOTS as u64 - 1)) | s
            } else {
                // Earliest event within the level's first upcoming slot.
                self.slots[lvl * SLOTS + s as usize]
                    .iter()
                    .map(|e| e.at.0)
                    .min()
                    .unwrap_or(u64::MAX)
            };
            best = Some(match best {
                Some(b) => b.min(cand),
                None => cand,
            });
        }
        self.next_at = best.map(SimTime);
    }

    fn clear(&mut self) {
        for v in &mut self.slots {
            v.clear();
        }
        self.occupied = [0; LEVELS];
        self.ready.clear();
        self.overflow.clear();
        self.len = 0;
        self.next_at = None;
    }
}

#[derive(Debug)]
enum Inner<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Scheduled<E>>),
}

/// A deterministic queue of timestamped events: earliest `(at, seq)` first.
#[derive(Debug)]
pub struct EventQueue<E> {
    inner: Inner<E>,
    next_seq: u64,
    now: SimTime,
    clamped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero, backed by the timer wheel.
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::Wheel)
    }

    /// An empty queue at time zero with an explicit scheduler backend.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        EventQueue {
            inner: match kind {
                SchedulerKind::Wheel => Inner::Wheel(Wheel::new()),
                SchedulerKind::Heap => Inner::Heap(BinaryHeap::new()),
            },
            next_seq: 0,
            now: SimTime::ZERO,
            clamped: 0,
        }
    }

    /// Which scheduler backs this queue.
    pub fn scheduler(&self) -> SchedulerKind {
        match self.inner {
            Inner::Wheel(_) => SchedulerKind::Wheel,
            Inner::Heap(_) => SchedulerKind::Heap,
        }
    }

    /// Current virtual time: the firing time of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Wheel(w) => w.len,
            Inner::Heap(h) => h.len(),
        }
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were scheduled in the past and clamped to `now`.
    /// A non-zero value usually means a host computed a stale absolute
    /// deadline — harmless for determinism, but at scale it hides
    /// scheduling bugs, so the counter makes it observable.
    pub fn clamped_events(&self) -> u64 {
        self.clamped
    }

    /// Schedule `event` `delay_ms` after the current time.
    pub fn push_after(&mut self, delay_ms: u64, event: E) {
        self.push_at(self.now + delay_ms, event);
    }

    /// Schedule `event` at absolute time `at`. Events in the past fire
    /// "now" (they are clamped to the current time) — the engine never
    /// travels backwards. Clamped events are counted in
    /// [`EventQueue::clamped_events`].
    pub fn push_at(&mut self, at: SimTime, event: E) {
        if at < self.now {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Scheduled { at, seq, event };
        match &mut self.inner {
            Inner::Wheel(w) => w.push(self.now.0, ev),
            Inner::Heap(h) => h.push(ev),
        }
    }

    /// Pop the earliest event, advancing virtual time to its firing time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let ev = match &mut self.inner {
            Inner::Wheel(w) => {
                let mut cursor = self.now.0;
                if !w.refill_ready(&mut cursor) {
                    return None;
                }
                let ev = w.ready.pop_front()?;
                w.len -= 1;
                debug_assert!(ev.at.0 >= cursor);
                let cursor = cursor.max(ev.at.0);
                w.recompute_next(cursor);
                self.now = SimTime(cursor);
                ev
            }
            Inner::Heap(h) => h.pop()?,
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        Some(ev)
    }

    /// Pop the earliest event only if it fires at exactly the current time
    /// and satisfies `pred`. Never advances the clock on a `None` return —
    /// this is what batch-drain delivery uses to take the rest of a node's
    /// same-instant inbox without paying a full pop per message.
    pub fn pop_if(&mut self, pred: impl FnOnce(&E) -> bool) -> Option<Scheduled<E>> {
        if self.peek_time() != Some(self.now) {
            return None;
        }
        match &mut self.inner {
            Inner::Wheel(w) => {
                let mut cursor = self.now.0;
                if !w.refill_ready(&mut cursor) {
                    return None;
                }
                // next_at == now, so the refill cannot have moved the
                // cursor: every cascade/migration target is >= cursor and
                // the front event fires at exactly `now`.
                debug_assert!(cursor == self.now.0);
                let front = w.ready.front()?;
                debug_assert!(front.at == self.now);
                if !pred(&front.event) {
                    return None;
                }
                let ev = w.ready.pop_front()?;
                w.len -= 1;
                w.recompute_next(cursor);
                Some(ev)
            }
            Inner::Heap(h) => {
                let front = h.peek()?;
                if front.at != self.now || !pred(&front.event) {
                    return None;
                }
                h.pop()
            }
        }
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            Inner::Wheel(w) => w.next_at,
            Inner::Heap(h) => h.peek().map(|e| e.at),
        }
    }

    /// Advance the clock to `t` without firing anything (used by
    /// `run_until` so that consecutive bounded runs measure exact windows
    /// instead of drifting to the last event's timestamp).
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(
            self.peek_time().is_none_or(|n| n >= t),
            "advancing past pending events"
        );
        self.now = self.now.max(t);
    }

    /// Drop every pending event (used on teardown).
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Wheel(w) => w.clear(),
            Inner::Heap(h) => h.clear(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn both() -> [EventQueue<&'static str>; 2] {
        [
            EventQueue::with_scheduler(SchedulerKind::Wheel),
            EventQueue::with_scheduler(SchedulerKind::Heap),
        ]
    }

    #[test]
    fn chronological_order() {
        for mut q in both() {
            q.push_after(30, "c");
            q.push_after(10, "a");
            q.push_after(20, "b");
            assert_eq!(q.pop().unwrap().event, "a");
            assert_eq!(q.now(), SimTime(10));
            assert_eq!(q.pop().unwrap().event, "b");
            assert_eq!(q.pop().unwrap().event, "c");
            assert!(q.pop().is_none());
            assert_eq!(q.now(), SimTime(30));
        }
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut q = EventQueue::with_scheduler(kind);
            for i in 0..100 {
                q.push_at(SimTime(5), i);
            }
            let fired: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            assert_eq!(fired, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        for mut q in both() {
            q.push_after(10, "first");
            q.pop();
            q.push_after(10, "second"); // at t=20, not t=10
            let e = q.pop().unwrap();
            assert_eq!(e.at, SimTime(20));
        }
    }

    #[test]
    fn past_events_clamped_to_now_and_counted() {
        for mut q in both() {
            q.push_after(50, "later");
            q.pop();
            assert_eq!(q.clamped_events(), 0);
            q.push_at(SimTime(10), "stale");
            assert_eq!(q.clamped_events(), 1);
            let e = q.pop().unwrap();
            assert_eq!(e.at, SimTime(50));
            assert_eq!(e.event, "stale");
        }
    }

    #[test]
    fn peek_and_len() {
        for mut q in both() {
            assert!(q.is_empty());
            assert!(q.peek_time().is_none());
            q.push_after(7, "x");
            assert_eq!(q.len(), 1);
            assert_eq!(q.peek_time(), Some(SimTime(7)));
            q.clear();
            assert!(q.is_empty());
            assert!(q.peek_time().is_none());
        }
    }

    #[test]
    fn far_future_overflow_and_migration() {
        // Beyond the 2^36 ms wheel span: must overflow to the heap and
        // still fire in exact order.
        let mut q = EventQueue::with_scheduler(SchedulerKind::Wheel);
        let span = 1u64 << 36;
        q.push_at(SimTime(span + 5), "far-b");
        q.push_at(SimTime(span + 2), "far-a");
        q.push_at(SimTime(3), "near");
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.pop().unwrap().event, "near");
        assert_eq!(q.peek_time(), Some(SimTime(span + 2)));
        assert_eq!(q.pop().unwrap().event, "far-a");
        assert_eq!(q.now(), SimTime(span + 2));
        assert_eq!(q.pop().unwrap().event, "far-b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cascade_preserves_equal_time_order() {
        // Push an event far enough to land on level >= 1, then another at
        // the same instant after time has advanced so it lands on level 0
        // directly; the cascade must not reorder them.
        let mut q = EventQueue::with_scheduler(SchedulerKind::Wheel);
        q.push_at(SimTime(200), "early-seq");
        q.push_at(SimTime(64), "mover");
        q.pop(); // now = 64; 200 still parked on level 1
        q.push_at(SimTime(200), "late-seq");
        assert_eq!(q.pop().unwrap().event, "early-seq");
        assert_eq!(q.pop().unwrap().event, "late-seq");
    }

    #[test]
    fn pop_if_takes_only_due_matching_events() {
        for mut q in both() {
            q.push_at(SimTime(5), "a");
            q.push_at(SimTime(5), "b");
            q.push_at(SimTime(9), "later");
            assert!(q.pop_if(|_| true).is_none(), "nothing due at t=0");
            assert_eq!(q.pop().unwrap().event, "a");
            assert_eq!(q.pop_if(|e| *e == "b").unwrap().event, "b");
            assert!(q.pop_if(|_| true).is_none(), "later event not due yet");
            assert_eq!(q.now(), SimTime(5), "failed pop_if must not advance time");
            assert_eq!(q.pop().unwrap().event, "later");
        }
    }

    #[test]
    fn advance_to_then_equal_group_cascade() {
        // Advance the clock into an occupied higher-level slot's period,
        // then make sure both the pre-existing and a newly pushed earlier
        // event fire in order.
        let mut q = EventQueue::with_scheduler(SchedulerKind::Wheel);
        q.push_at(SimTime(140), "parked"); // level 1 relative to t=0
        q.advance_to(SimTime(130));
        q.push_at(SimTime(135), "nearer");
        assert_eq!(q.pop().unwrap().event, "nearer");
        assert_eq!(q.pop().unwrap().event, "parked");
        assert_eq!(q.now(), SimTime(140));
    }

    #[test]
    fn property_wheel_equals_heap_over_randomized_schedule() {
        // 10⁵ randomized operations against both backends in lockstep:
        // every pop must return the same (at, seq, event) triple. The mix
        // deliberately hammers the wheel's edge cases — equal-time bursts
        // (FIFO among ties), far-future pushes (overflow heap + epoch
        // migration), interleaved `advance_to` jumps (cascades into
        // occupied periods), and conditional `pop_if` on the due head.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..4u64 {
            let mut rng = SmallRng::seed_from_u64(0x9e3779b97f4a7c15 ^ seed);
            let mut wheel: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Wheel);
            let mut heap: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Heap);
            let mut tag = 0u64;
            for op in 0..100_000u32 {
                match rng.random_range(0u32..100) {
                    // Push: mostly short horizons, some equal-time bursts,
                    // a far-future tail that only the overflow heap holds.
                    0..=54 => {
                        let delay = match rng.random_range(0u32..20) {
                            0 => 0,                                // due now
                            1..=2 => rng.random_range(1u64..4),    // tie-heavy
                            3 => 1 << rng.random_range(30u32..40), // far future
                            _ => rng.random_range(1u64..5_000),
                        };
                        let burst = if rng.random_range(0u32..10) == 0 {
                            rng.random_range(2usize..6)
                        } else {
                            1
                        };
                        for _ in 0..burst {
                            wheel.push_after(delay, tag);
                            heap.push_after(delay, tag);
                            tag += 1;
                        }
                    }
                    // Pop: both must agree on the full triple.
                    55..=84 => {
                        let w = wheel.pop();
                        let h = heap.pop();
                        match (w, h) {
                            (None, None) => {}
                            (Some(w), Some(h)) => {
                                assert_eq!(
                                    (w.at, w.seq, w.event),
                                    (h.at, h.seq, h.event),
                                    "pop diverged at op {op} (seed {seed})"
                                );
                            }
                            (w, h) => panic!(
                                "emptiness diverged at op {op} (seed {seed}): \
                                 wheel {:?} heap {:?}",
                                w.map(|e| e.event),
                                h.map(|e| e.event)
                            ),
                        }
                    }
                    // Conditional pop of the due head (the batch-drain
                    // primitive): same predicate, same outcome.
                    85..=92 => {
                        let want = tag; // never matches: pure peek path
                        let w = wheel.pop_if(|&e| e % 3 == 0 && e != want);
                        let h = heap.pop_if(|&e| e % 3 == 0 && e != want);
                        assert_eq!(
                            w.as_ref().map(|e| (e.at, e.seq, e.event)),
                            h.as_ref().map(|e| (e.at, e.seq, e.event)),
                            "pop_if diverged at op {op} (seed {seed})"
                        );
                    }
                    // Clock jump, occasionally far enough to cross wheel
                    // epochs and force overflow migration.
                    _ => {
                        let jump = if rng.random_range(0u32..20) == 0 {
                            1 << rng.random_range(30u32..38)
                        } else {
                            rng.random_range(0u64..10_000)
                        };
                        let target = wheel.now() + jump;
                        let bounded = match wheel.peek_time() {
                            Some(next) if next < target => next, // never skip events
                            _ => target,
                        };
                        wheel.advance_to(bounded);
                        heap.advance_to(bounded);
                        assert_eq!(wheel.now(), heap.now());
                    }
                }
                assert_eq!(wheel.len(), heap.len(), "len diverged at op {op}");
                assert_eq!(wheel.peek_time(), heap.peek_time());
            }
            // Drain: the complete residual order must match.
            loop {
                match (wheel.pop(), heap.pop()) {
                    (None, None) => break,
                    (Some(w), Some(h)) => {
                        assert_eq!((w.at, w.seq, w.event), (h.at, h.seq, h.event))
                    }
                    _ => panic!("drain length diverged (seed {seed})"),
                }
            }
        }
    }
}
