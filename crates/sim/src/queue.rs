//! The heap-based event queue.
//!
//! The paper's prototype uses "a heap-based event queue … to insert and
//! fire those events in a chronological order" (§4). Ours additionally
//! breaks timestamp ties with a monotone sequence number, which makes every
//! simulation run fully deterministic for a given seed — equal-time events
//! fire in insertion order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled at a point in virtual time.
#[derive(Clone, Debug)]
pub struct Scheduled<E> {
    /// Firing time.
    pub at: SimTime,
    /// Insertion sequence number (tie breaker).
    pub seq: u64,
    /// The event itself.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-heap of timestamped events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time: the firing time of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` `delay_ms` after the current time.
    pub fn push_after(&mut self, delay_ms: u64, event: E) {
        self.push_at(self.now + delay_ms, event);
    }

    /// Schedule `event` at absolute time `at`. Events in the past fire
    /// "now" (they are clamped to the current time) — the engine never
    /// travels backwards.
    pub fn push_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pop the earliest event, advancing virtual time to its firing time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        Some(ev)
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Advance the clock to `t` without firing anything (used by
    /// `run_until` so that consecutive bounded runs measure exact windows
    /// instead of drifting to the last event's timestamp).
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(
            self.peek_time().is_none_or(|n| n >= t),
            "advancing past pending events"
        );
        self.now = self.now.max(t);
    }

    /// Drop every pending event (used on teardown).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chronological_order() {
        let mut q = EventQueue::new();
        q.push_after(30, "c");
        q.push_after(10, "a");
        q.push_after(20, "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.now(), SimTime(10));
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime(30));
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push_at(SimTime(5), i);
        }
        let fired: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(fired, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.push_after(10, "first");
        q.pop();
        q.push_after(10, "second"); // at t=20, not t=10
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime(20));
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut q = EventQueue::new();
        q.push_after(50, "later");
        q.pop();
        q.push_at(SimTime(10), "stale");
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime(50));
        assert_eq!(e.event, "stale");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
        q.push_after(7, ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        q.clear();
        assert!(q.is_empty());
    }
}
