//! The deterministic event queue: a hierarchical timer wheel.
//!
//! The paper's prototype uses "a heap-based event queue … to insert and
//! fire those events in a chronological order" (§4). Ours additionally
//! breaks timestamp ties with a monotone sequence number, which makes every
//! simulation run fully deterministic for a given seed — equal-time events
//! fire in insertion order.
//!
//! At 10^5–10^6 simulated nodes the `O(log n)` sift per heap operation
//! dominates the engine, so the default scheduler is now a hierarchical
//! timer wheel ([`SchedulerKind::Wheel`]): six levels of 64 slots at 1 ms
//! granularity, spanning 2^36 ms (~2.2 years of virtual time) with `O(1)`
//! insertion. Events beyond the wheel span overflow into the old binary
//! heap and migrate in when the clock reaches their epoch. The original
//! heap scheduler is retained ([`SchedulerKind::Heap`]) so parity tests can
//! prove both produce byte-identical pop sequences: **both schedulers obey
//! the exact same strict `(at, seq)` order**, which is what the digest
//! tests in `tests/determinism.rs` rely on.
//!
//! ## Why the wheel preserves `(at, seq)` order
//!
//! * Every event in a level-0 slot shares one firing time: level-0 events
//!   differ from the cursor only in their low 6 bits, so a drained slot `s`
//!   holds exactly the events firing at `(now & !63) | s`. Sorting the
//!   drained slot by `seq` therefore restores full `(at, seq)` order no
//!   matter how cascading or overflow migration interleaved insertions.
//! * Higher-level slots are cascaded (redistributed one level down) when
//!   the cursor enters their period, never popped directly.
//! * Events pushed at exactly `now` go to a ready queue kept in `seq`
//!   order (auto-assigned sequence numbers are monotone, so the common
//!   case is a plain FIFO append; keyed pushes binary-search their slot).
//!
//! ## The sharded backend
//!
//! [`SchedulerKind::Sharded`] partitions events across `n` private wheels
//! (event → lane by `seq % n`, mirroring the engine's node → shard
//! assignment) and merges pops deterministically: the next event is the
//! `(at, seq)` minimum across lanes. Because every lane is itself a wheel
//! obeying the `(at, seq)` contract, the merge only has to compare lane
//! heads — `at` from the cached `next_at`, and, among lanes tied at the
//! minimal `at`, the head `seq` exposed by [`Wheel::peek_key`]. Each lane
//! keeps a private cursor that is only ever advanced to the merge winner's
//! firing time, so no lane runs ahead of the queue's public clock and a
//! later push can never land in a lane's past. This is the single-threaded
//! reference for the multi-core engine in [`crate::shard`]: it proves the
//! merge rule preserves the exact global schedule, byte for byte, for any
//! shard count.

#![deny(clippy::unwrap_used)]

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// An event scheduled at a point in virtual time.
#[derive(Clone, Debug)]
pub struct Scheduled<E> {
    /// Firing time.
    pub at: SimTime,
    /// Insertion sequence number (tie breaker).
    pub seq: u64,
    /// The event itself.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Which scheduler backs an [`EventQueue`].
///
/// Both produce the exact same pop order; the heap exists so determinism
/// parity can be proven against the original implementation and as a
/// reference for benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Hierarchical timer wheel with far-future overflow heap (default).
    Wheel,
    /// The original binary min-heap.
    Heap,
    /// `shards` private timer wheels with a deterministic `(at, seq)`
    /// K-way merge — the single-threaded reference for the multi-core
    /// engine's cross-shard merge rule. `shards = 0` behaves as `1`.
    Sharded {
        /// Number of lanes to partition events across.
        shards: u8,
    },
}

/// Bits consumed per wheel level (64 slots).
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of levels; the wheel spans `2^(LEVEL_BITS * LEVELS)` ms.
const LEVELS: usize = 6;

/// The hierarchical timer wheel. All time arithmetic is on raw `u64`
/// milliseconds; `now` is owned by the enclosing [`EventQueue`] and passed
/// in so the cursor and the public clock can never disagree.
#[derive(Debug)]
struct Wheel<E> {
    /// `LEVELS * SLOTS` buckets, level-major.
    slots: Vec<Vec<Scheduled<E>>>,
    /// One occupancy bitmap per level (bit `s` set ⇔ slot `s` non-empty).
    occupied: [u64; LEVELS],
    /// Events due exactly at `now`, in `seq` order.
    ready: VecDeque<Scheduled<E>>,
    /// Events beyond the wheel span, ordered by `(at, seq)`.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Total pending events across ready + slots + overflow.
    len: usize,
    /// Cached exact firing time of the earliest pending event.
    next_at: Option<SimTime>,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            slots: std::iter::repeat_with(Vec::new)
                .take(LEVELS * SLOTS)
                .collect(),
            occupied: [0; LEVELS],
            ready: VecDeque::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            next_at: None,
        }
    }

    /// Level an event at `at` belongs to, given cursor `now`:
    /// the highest 6-bit group in which `at` and `now` differ.
    /// `at == now` is the caller's problem (ready queue); `>= LEVELS`
    /// means overflow.
    fn level_of(now: u64, at: u64) -> usize {
        debug_assert!(at > now);
        ((63 - (at ^ now).leading_zeros()) / LEVEL_BITS) as usize
    }

    /// File one event relative to cursor `now`. `at >= now` required.
    fn place(&mut self, now: u64, ev: Scheduled<E>) {
        let at = ev.at.0;
        if at == now {
            // Everything in `ready` fires at exactly `now`, so ordering
            // is by seq alone. Auto-assigned seqs are monotone and hit
            // the push_back fast path; an explicitly keyed event (or a
            // swept/cascaded one that was *pushed* keyed) may carry a
            // smaller seq than entries already present and binary-
            // searches its slot instead. Keeping the invariant here —
            // rather than in `push` — covers every route into `ready`:
            // direct pushes, cursor-digit sweeps, overflow migration,
            // and cascades out of higher-level slots, whose source slot
            // vectors hold *push* order, not seq order.
            let pos = self.ready.partition_point(|e| e.seq < ev.seq);
            if pos == self.ready.len() {
                self.ready.push_back(ev);
            } else {
                self.ready.insert(pos, ev);
            }
            return;
        }
        let lvl = Self::level_of(now, at);
        if lvl >= LEVELS {
            self.overflow.push(ev);
            return;
        }
        let slot = ((at >> (LEVEL_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[lvl * SLOTS + slot].push(ev);
        self.occupied[lvl] |= 1u64 << slot;
    }

    fn push(&mut self, now: u64, ev: Scheduled<E>) {
        self.next_at = Some(match self.next_at {
            Some(n) => n.min(ev.at),
            None => ev.at,
        });
        self.len += 1;
        self.place(now, ev);
    }

    /// `(at, seq)` of the earliest pending event without removing it,
    /// advancing the cursor no further than that event's firing time
    /// (exactly what a pop would do). `None` when empty.
    fn peek_key(&mut self, now: &mut u64) -> Option<(SimTime, u64)> {
        if !self.refill_ready(now) {
            return None;
        }
        self.ready.front().map(|e| (e.at, e.seq))
    }

    /// Make the ready queue non-empty if any event is pending, advancing
    /// the cursor no further than the earliest pending event's firing
    /// time. Returns `false` when the queue is empty.
    fn refill_ready(&mut self, now: &mut u64) -> bool {
        loop {
            // The cursor can be moved onto a pending event's exact firing
            // time from *outside* (`advance_to` is bounded by `peek_time`,
            // which is inclusive). Events due at `now` may then be parked
            // in two places a plain ready-first pop would miss, firing
            // them late and out of seq order behind fresh `at == now`
            // pushes:
            //
            // * the overflow heap, when `now` crossed a `2^36`-epoch
            //   boundary while the wheel still held events;
            // * a cursor-digit slot — the slot at `now`'s own digit of
            //   some level, the only slots whose period contains `now` —
            //   when the event was filed there relative to an older
            //   cursor.
            //
            // Sweep both into place relative to the current cursor before
            // consulting `ready`: due events join `ready` in seq order
            // (`place` keeps the invariant), everything else lands at
            // slots strictly past the cursor (a re-placed event's highest
            // digit differing from `now` is necessarily larger than the
            // cursor's, so this single ascending pass never re-occupies a
            // cursor-digit slot it already drained).
            while let Some(e) = self.overflow.peek() {
                if e.at.0 != *now && Self::level_of(*now, e.at.0) >= LEVELS {
                    break;
                }
                if let Some(e) = self.overflow.pop() {
                    self.place(*now, e);
                }
            }
            for lvl in 0..LEVELS {
                let shift = LEVEL_BITS * lvl as u32;
                let s = (*now >> shift) & (SLOTS as u64 - 1);
                if self.occupied[lvl] & (1u64 << s) == 0 {
                    continue;
                }
                let idx = lvl * SLOTS + s as usize;
                let evs = std::mem::take(&mut self.slots[idx]);
                self.occupied[lvl] &= !(1u64 << s);
                for ev in evs {
                    debug_assert!(ev.at.0 >= *now, "pending event in the past");
                    self.place(*now, ev);
                }
            }
            if !self.ready.is_empty() {
                return true;
            }
            let Some(lvl) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Wheel empty: jump the cursor to the overflow epoch and
                // migrate everything within the new span in.
                let Some(t) = self.overflow.peek().map(|e| e.at.0) else {
                    return false;
                };
                debug_assert!(t >= *now, "overflow event in the past");
                *now = t;
                while let Some(e) = self.overflow.peek() {
                    if e.at.0 != *now && Self::level_of(*now, e.at.0) >= LEVELS {
                        break;
                    }
                    // Heap pops in (at, seq) order, so same-`at` events
                    // reach the ready queue already in seq order.
                    if let Some(e) = self.overflow.pop() {
                        self.place(*now, e);
                    }
                }
                continue;
            };
            let shift = LEVEL_BITS * lvl as u32;
            let cur = (*now >> shift) & (SLOTS as u64 - 1);
            let mask = self.occupied[lvl] & (!0u64 << cur);
            debug_assert!(mask != 0, "occupied slot behind the cursor at level {lvl}");
            let mask = if mask != 0 { mask } else { self.occupied[lvl] };
            let s = mask.trailing_zeros() as u64;
            let idx = lvl * SLOTS + s as usize;
            let mut evs = std::mem::take(&mut self.slots[idx]);
            self.occupied[lvl] &= !(1u64 << s);
            if lvl == 0 {
                // Every event here fires at the same instant (see module
                // docs); seq-sort restores insertion order exactly.
                let t0 = (*now & !(SLOTS as u64 - 1)) | s;
                debug_assert!(t0 >= *now, "level-0 slot in the past");
                debug_assert!(evs.iter().all(|e| e.at.0 == t0));
                *now = (*now).max(t0);
                evs.sort_unstable_by_key(|e| e.seq);
                self.ready = evs.into();
            } else {
                // Cascade: enter the slot's period and redistribute its
                // events to lower levels. `base` is the period start; all
                // events in the slot fire within [base, base + 64^lvl), so
                // advancing the cursor to it skips no pending event.
                let span_below = 1u64 << (shift + LEVEL_BITS);
                let base = (*now & !(span_below - 1)) | (s << shift);
                *now = (*now).max(base);
                for ev in evs {
                    self.place(*now, ev);
                }
            }
        }
    }

    /// Recompute the cached earliest firing time (exact, not a lower
    /// bound). Called after pops; pushes maintain the cache incrementally.
    fn recompute_next(&mut self, now: u64) {
        if let Some(front) = self.ready.front() {
            self.next_at = Some(front.at);
            return;
        }
        let mut best: Option<u64> = self.overflow.peek().map(|e| e.at.0);
        for lvl in 0..LEVELS {
            if self.occupied[lvl] == 0 {
                continue;
            }
            let shift = LEVEL_BITS * lvl as u32;
            let cur = (now >> shift) & (SLOTS as u64 - 1);
            let mask = self.occupied[lvl] & (!0u64 << cur);
            let mask = if mask != 0 { mask } else { self.occupied[lvl] };
            let s = mask.trailing_zeros() as u64;
            let cand = if lvl == 0 {
                // Level-0 slots hold a single firing time.
                (now & !(SLOTS as u64 - 1)) | s
            } else {
                // Earliest event within the level's first upcoming slot.
                self.slots[lvl * SLOTS + s as usize]
                    .iter()
                    .map(|e| e.at.0)
                    .min()
                    .unwrap_or(u64::MAX)
            };
            best = Some(match best {
                Some(b) => b.min(cand),
                None => cand,
            });
        }
        self.next_at = best.map(SimTime);
    }

    fn clear(&mut self) {
        for v in &mut self.slots {
            v.clear();
        }
        self.occupied = [0; LEVELS];
        self.ready.clear();
        self.overflow.clear();
        self.len = 0;
        self.next_at = None;
    }
}

/// One lane of the sharded backend: a private wheel plus its cursor. The
/// cursor lags the queue's public clock (it is only advanced to the firing
/// time of an event this lane is about to surface), so pushes relative to
/// it are never in the lane's past.
#[derive(Debug)]
struct Lane<E> {
    cursor: u64,
    wheel: Wheel<E>,
}

/// The sharded backend: `n` wheels merged by `(at, seq)`.
#[derive(Debug)]
struct Lanes<E> {
    lanes: Vec<Lane<E>>,
}

impl<E> Lanes<E> {
    fn new(shards: usize) -> Self {
        Lanes {
            lanes: std::iter::repeat_with(|| Lane {
                cursor: 0,
                wheel: Wheel::new(),
            })
            .take(shards.max(1))
            .collect(),
        }
    }

    /// Route an event to its lane by `seq` — the analogue of the engine's
    /// `node index % shards` assignment.
    fn push(&mut self, ev: Scheduled<E>) {
        let lane = (ev.seq % self.lanes.len() as u64) as usize;
        let ln = &mut self.lanes[lane];
        debug_assert!(ev.at.0 >= ln.cursor, "push into a lane's past");
        ln.wheel.push(ln.cursor, ev);
    }

    fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.wheel.len).sum()
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.lanes.iter().filter_map(|l| l.wheel.next_at).min()
    }

    /// The lane holding the globally minimal `(at, seq)` head, with the
    /// tied lanes' cursors advanced to that firing time. `None` when empty.
    ///
    /// `at` alone comes from the exact cached `next_at`; only lanes tied
    /// at the minimal `at` need their head's `seq` materialized, which
    /// advances their cursor to exactly that `at` — a time the queue's
    /// public clock is about to reach anyway (pop) or already holds
    /// (pop_if), so the lane-cursor ≤ public-clock invariant is kept.
    fn min_lane(&mut self) -> Option<usize> {
        let min_at = self.peek_time()?;
        let mut best: Option<(usize, u64)> = None;
        for (i, ln) in self.lanes.iter_mut().enumerate() {
            if ln.wheel.next_at != Some(min_at) {
                continue;
            }
            let mut cur = ln.cursor;
            let Some((at, seq)) = ln.wheel.peek_key(&mut cur) else {
                continue;
            };
            ln.cursor = cur;
            debug_assert_eq!(at, min_at, "cached next_at disagrees with head");
            if best.is_none_or(|(_, s)| seq < s) {
                best = Some((i, seq));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Pop the head of lane `i` (must have been refilled by
    /// [`Lanes::min_lane`]).
    fn pop_lane(&mut self, i: usize) -> Option<Scheduled<E>> {
        let ln = &mut self.lanes[i];
        let ev = ln.wheel.ready.pop_front()?;
        ln.wheel.len -= 1;
        ln.cursor = ln.cursor.max(ev.at.0);
        let cur = ln.cursor;
        ln.wheel.recompute_next(cur);
        Some(ev)
    }

    fn clear(&mut self) {
        for ln in &mut self.lanes {
            ln.wheel.clear();
        }
    }
}

#[derive(Debug)]
enum Inner<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Scheduled<E>>),
    Sharded(Lanes<E>),
}

/// A deterministic queue of timestamped events: earliest `(at, seq)` first.
#[derive(Debug)]
pub struct EventQueue<E> {
    inner: Inner<E>,
    next_seq: u64,
    now: SimTime,
    clamped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero, backed by the timer wheel.
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::Wheel)
    }

    /// An empty queue at time zero with an explicit scheduler backend.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        EventQueue {
            inner: match kind {
                SchedulerKind::Wheel => Inner::Wheel(Wheel::new()),
                SchedulerKind::Heap => Inner::Heap(BinaryHeap::new()),
                SchedulerKind::Sharded { shards } => Inner::Sharded(Lanes::new(shards as usize)),
            },
            next_seq: 0,
            now: SimTime::ZERO,
            clamped: 0,
        }
    }

    /// Which scheduler backs this queue.
    pub fn scheduler(&self) -> SchedulerKind {
        match &self.inner {
            Inner::Wheel(_) => SchedulerKind::Wheel,
            Inner::Heap(_) => SchedulerKind::Heap,
            Inner::Sharded(l) => SchedulerKind::Sharded {
                shards: l.lanes.len() as u8,
            },
        }
    }

    /// Current virtual time: the firing time of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Wheel(w) => w.len,
            Inner::Heap(h) => h.len(),
            Inner::Sharded(l) => l.len(),
        }
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were scheduled in the past and clamped to `now`.
    /// A non-zero value usually means a host computed a stale absolute
    /// deadline — harmless for determinism, but at scale it hides
    /// scheduling bugs, so the counter makes it observable.
    pub fn clamped_events(&self) -> u64 {
        self.clamped
    }

    /// Schedule `event` `delay_ms` after the current time.
    pub fn push_after(&mut self, delay_ms: u64, event: E) {
        self.push_at(self.now + delay_ms, event);
    }

    /// Schedule `event` at absolute time `at`. Events in the past fire
    /// "now" (they are clamped to the current time) — the engine never
    /// travels backwards. Clamped events are counted in
    /// [`EventQueue::clamped_events`].
    pub fn push_at(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_at_keyed(at, seq, event);
    }

    /// Schedule `event` at `at` with a caller-assigned sequence key. The
    /// global pop order is `(at, seq)` regardless of push order, so a
    /// sharded engine that derives keys from per-sender counter streams
    /// gets the exact same schedule no matter which shard pushed first.
    /// Keys must be unique per queue. The internal counter is advanced
    /// past `key`, so an auto push never reuses a key *already seen* —
    /// but a caller interleaving auto pushes with out-of-order key
    /// streams could still collide an auto seq with a slower stream's
    /// future key; the sharded engine therefore uses keyed pushes
    /// exclusively on its per-shard queues.
    pub fn push_at_keyed(&mut self, at: SimTime, key: u64, event: E) {
        if at < self.now {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        self.next_seq = self.next_seq.max(key.wrapping_add(1));
        let ev = Scheduled {
            at,
            seq: key,
            event,
        };
        match &mut self.inner {
            Inner::Wheel(w) => w.push(self.now.0, ev),
            Inner::Heap(h) => h.push(ev),
            Inner::Sharded(l) => l.push(ev),
        }
    }

    /// Pop the earliest event, advancing virtual time to its firing time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let ev = match &mut self.inner {
            Inner::Wheel(w) => {
                let mut cursor = self.now.0;
                if !w.refill_ready(&mut cursor) {
                    return None;
                }
                let ev = w.ready.pop_front()?;
                w.len -= 1;
                debug_assert!(ev.at.0 >= cursor);
                let cursor = cursor.max(ev.at.0);
                w.recompute_next(cursor);
                self.now = SimTime(cursor);
                ev
            }
            Inner::Heap(h) => h.pop()?,
            Inner::Sharded(l) => {
                let i = l.min_lane()?;
                l.pop_lane(i)?
            }
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        Some(ev)
    }

    /// Pop the earliest event only if it fires at exactly the current time
    /// and satisfies `pred`. Never advances the clock on a `None` return —
    /// this is what batch-drain delivery uses to take the rest of a node's
    /// same-instant inbox without paying a full pop per message.
    pub fn pop_if(&mut self, pred: impl FnOnce(&E) -> bool) -> Option<Scheduled<E>> {
        if self.peek_time() != Some(self.now) {
            return None;
        }
        match &mut self.inner {
            Inner::Wheel(w) => {
                let mut cursor = self.now.0;
                if !w.refill_ready(&mut cursor) {
                    return None;
                }
                // next_at == now, so the refill cannot have moved the
                // cursor: every cascade/migration target is >= cursor and
                // the front event fires at exactly `now`.
                debug_assert!(cursor == self.now.0);
                let front = w.ready.front()?;
                debug_assert!(front.at == self.now);
                if !pred(&front.event) {
                    return None;
                }
                let ev = w.ready.pop_front()?;
                w.len -= 1;
                w.recompute_next(cursor);
                Some(ev)
            }
            Inner::Heap(h) => {
                let front = h.peek()?;
                if front.at != self.now || !pred(&front.event) {
                    return None;
                }
                h.pop()
            }
            Inner::Sharded(l) => {
                // peek_time == now (checked above), so the tied lanes'
                // cursors advance exactly to `now` — the invariant holds
                // even on a None return, and the clock never moves.
                let i = l.min_lane()?;
                let ln = &mut l.lanes[i];
                let front = ln.wheel.ready.front()?;
                debug_assert!(front.at == self.now);
                if !pred(&front.event) {
                    return None;
                }
                l.pop_lane(i)
            }
        }
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            Inner::Wheel(w) => w.next_at,
            Inner::Heap(h) => h.peek().map(|e| e.at),
            Inner::Sharded(l) => l.peek_time(),
        }
    }

    /// Advance the clock to `t` without firing anything (used by
    /// `run_until` so that consecutive bounded runs measure exact windows
    /// instead of drifting to the last event's timestamp).
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(
            self.peek_time().is_none_or(|n| n >= t),
            "advancing past pending events"
        );
        self.now = self.now.max(t);
    }

    /// Drop every pending event (used on teardown).
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Wheel(w) => w.clear(),
            Inner::Heap(h) => h.clear(),
            Inner::Sharded(l) => l.clear(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const KINDS: [SchedulerKind; 4] = [
        SchedulerKind::Wheel,
        SchedulerKind::Heap,
        SchedulerKind::Sharded { shards: 1 },
        SchedulerKind::Sharded { shards: 3 },
    ];

    fn both() -> [EventQueue<&'static str>; 4] {
        KINDS.map(EventQueue::with_scheduler)
    }

    #[test]
    fn chronological_order() {
        for mut q in both() {
            q.push_after(30, "c");
            q.push_after(10, "a");
            q.push_after(20, "b");
            assert_eq!(q.pop().unwrap().event, "a");
            assert_eq!(q.now(), SimTime(10));
            assert_eq!(q.pop().unwrap().event, "b");
            assert_eq!(q.pop().unwrap().event, "c");
            assert!(q.pop().is_none());
            assert_eq!(q.now(), SimTime(30));
        }
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_scheduler(kind);
            for i in 0..100 {
                q.push_at(SimTime(5), i);
            }
            let fired: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            assert_eq!(fired, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        for mut q in both() {
            q.push_after(10, "first");
            q.pop();
            q.push_after(10, "second"); // at t=20, not t=10
            let e = q.pop().unwrap();
            assert_eq!(e.at, SimTime(20));
        }
    }

    #[test]
    fn past_events_clamped_to_now_and_counted() {
        for mut q in both() {
            q.push_after(50, "later");
            q.pop();
            assert_eq!(q.clamped_events(), 0);
            q.push_at(SimTime(10), "stale");
            assert_eq!(q.clamped_events(), 1);
            let e = q.pop().unwrap();
            assert_eq!(e.at, SimTime(50));
            assert_eq!(e.event, "stale");
        }
    }

    #[test]
    fn peek_and_len() {
        for mut q in both() {
            assert!(q.is_empty());
            assert!(q.peek_time().is_none());
            q.push_after(7, "x");
            assert_eq!(q.len(), 1);
            assert_eq!(q.peek_time(), Some(SimTime(7)));
            q.clear();
            assert!(q.is_empty());
            assert!(q.peek_time().is_none());
        }
    }

    #[test]
    fn far_future_overflow_and_migration() {
        // Beyond the 2^36 ms wheel span: must overflow to the heap and
        // still fire in exact order.
        let mut q = EventQueue::with_scheduler(SchedulerKind::Wheel);
        let span = 1u64 << 36;
        q.push_at(SimTime(span + 5), "far-b");
        q.push_at(SimTime(span + 2), "far-a");
        q.push_at(SimTime(3), "near");
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.pop().unwrap().event, "near");
        assert_eq!(q.peek_time(), Some(SimTime(span + 2)));
        assert_eq!(q.pop().unwrap().event, "far-a");
        assert_eq!(q.now(), SimTime(span + 2));
        assert_eq!(q.pop().unwrap().event, "far-b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cascade_preserves_equal_time_order() {
        // Push an event far enough to land on level >= 1, then another at
        // the same instant after time has advanced so it lands on level 0
        // directly; the cascade must not reorder them.
        let mut q = EventQueue::with_scheduler(SchedulerKind::Wheel);
        q.push_at(SimTime(200), "early-seq");
        q.push_at(SimTime(64), "mover");
        q.pop(); // now = 64; 200 still parked on level 1
        q.push_at(SimTime(200), "late-seq");
        assert_eq!(q.pop().unwrap().event, "early-seq");
        assert_eq!(q.pop().unwrap().event, "late-seq");
    }

    #[test]
    fn pop_if_takes_only_due_matching_events() {
        for mut q in both() {
            q.push_at(SimTime(5), "a");
            q.push_at(SimTime(5), "b");
            q.push_at(SimTime(9), "later");
            assert!(q.pop_if(|_| true).is_none(), "nothing due at t=0");
            assert_eq!(q.pop().unwrap().event, "a");
            assert_eq!(q.pop_if(|e| *e == "b").unwrap().event, "b");
            assert!(q.pop_if(|_| true).is_none(), "later event not due yet");
            assert_eq!(q.now(), SimTime(5), "failed pop_if must not advance time");
            assert_eq!(q.pop().unwrap().event, "later");
        }
    }

    #[test]
    fn advance_to_then_equal_group_cascade() {
        // Advance the clock into an occupied higher-level slot's period,
        // then make sure both the pre-existing and a newly pushed earlier
        // event fire in order.
        let mut q = EventQueue::with_scheduler(SchedulerKind::Wheel);
        q.push_at(SimTime(140), "parked"); // level 1 relative to t=0
        q.advance_to(SimTime(130));
        q.push_at(SimTime(135), "nearer");
        assert_eq!(q.pop().unwrap().event, "nearer");
        assert_eq!(q.pop().unwrap().event, "parked");
        assert_eq!(q.now(), SimTime(140));
    }

    /// Drive every backend through 10⁵ randomized operations in lockstep,
    /// with the wheel as the reference: every pop must return the same
    /// (at, seq, event) triple. The mix deliberately hammers the edge
    /// cases — equal-time bursts (FIFO among ties), far-future pushes
    /// (overflow heap + epoch migration), interleaved `advance_to` jumps
    /// (cascades into occupied periods), and conditional `pop_if` on the
    /// due head.
    ///
    /// `keyed` selects the push shape: auto-assigned monotone seqs (the
    /// SimNet shape) or caller-assigned keys from per-stream counters
    /// (the sharded engine's shape — seqs arrive out of global order but
    /// are unique and deterministic). The two shapes are not mixed in
    /// one run because mixing can collide an auto seq with a slower
    /// stream's future key (see `push_at_keyed`).
    fn lockstep_all_backends(seed: u64, keyed: bool) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x9e3779b97f4a7c15 ^ seed);
        let mut qs: Vec<EventQueue<u64>> = vec![
            EventQueue::with_scheduler(SchedulerKind::Wheel),
            EventQueue::with_scheduler(SchedulerKind::Heap),
            EventQueue::with_scheduler(SchedulerKind::Sharded { shards: 1 }),
            EventQueue::with_scheduler(SchedulerKind::Sharded { shards: 3 }),
            EventQueue::with_scheduler(SchedulerKind::Sharded { shards: 7 }),
        ];
        let mut tag = 0u64;
        // Keyed-push streams: 4 "senders", each with its own monotone
        // counter; key = (ctr << 8) | sender, mirroring the engine's
        // (counter, node-index) packing. Counters advance independently,
        // so a later push routinely carries a *smaller* key than an
        // earlier one — the disorder the merge rule must absorb.
        let mut stream_ctr = [1u64; 4];
        let mut push = |qs: &mut Vec<EventQueue<u64>>, rng: &mut SmallRng, delay: u64, tag: u64| {
            if keyed {
                let s = rng.random_range(0usize..4);
                let key = (stream_ctr[s] << 8) | s as u64;
                stream_ctr[s] += 1;
                for q in qs.iter_mut() {
                    let at = q.now() + delay;
                    q.push_at_keyed(at, key, tag);
                }
            } else {
                for q in qs.iter_mut() {
                    q.push_after(delay, tag);
                }
            }
        };
        for op in 0..100_000u32 {
            match rng.random_range(0u32..100) {
                // Push: mostly short horizons, some equal-time bursts,
                // a far-future tail that only the overflow heap holds.
                0..=54 => {
                    let delay = match rng.random_range(0u32..20) {
                        0 => 0,                                // due now
                        1..=2 => rng.random_range(1u64..4),    // tie-heavy
                        3 => 1 << rng.random_range(30u32..40), // far future
                        _ => rng.random_range(1u64..5_000),
                    };
                    let burst = if rng.random_range(0u32..10) == 0 {
                        rng.random_range(2usize..6)
                    } else {
                        1
                    };
                    for _ in 0..burst {
                        push(&mut qs, &mut rng, delay, tag);
                        tag += 1;
                    }
                }
                // Pop: all must agree on the full triple.
                55..=84 => {
                    let popped: Vec<_> = qs.iter_mut().map(|q| q.pop()).collect();
                    for (i, p) in popped.iter().enumerate().skip(1) {
                        assert_eq!(
                            popped[0].as_ref().map(|e| (e.at, e.seq, e.event)),
                            p.as_ref().map(|e| (e.at, e.seq, e.event)),
                            "pop diverged on backend {i} at op {op} (seed {seed})"
                        );
                    }
                }
                // Conditional pop of the due head (the batch-drain
                // primitive): same predicate, same outcome.
                85..=92 => {
                    let want = tag; // never matches: pure peek path
                    let popped: Vec<_> = qs
                        .iter_mut()
                        .map(|q| q.pop_if(|&e| e % 3 == 0 && e != want))
                        .collect();
                    for (i, p) in popped.iter().enumerate().skip(1) {
                        assert_eq!(
                            popped[0].as_ref().map(|e| (e.at, e.seq, e.event)),
                            p.as_ref().map(|e| (e.at, e.seq, e.event)),
                            "pop_if diverged on backend {i} at op {op} (seed {seed})"
                        );
                    }
                }
                // Clock jump, occasionally far enough to cross wheel
                // epochs and force overflow migration.
                _ => {
                    let jump = if rng.random_range(0u32..20) == 0 {
                        1 << rng.random_range(30u32..38)
                    } else {
                        rng.random_range(0u64..10_000)
                    };
                    let target = qs[0].now() + jump;
                    let bounded = match qs[0].peek_time() {
                        Some(next) if next < target => next, // never skip events
                        _ => target,
                    };
                    for q in &mut qs {
                        q.advance_to(bounded);
                    }
                }
            }
            for i in 1..qs.len() {
                assert_eq!(qs[0].len(), qs[i].len(), "len diverged at op {op}");
                assert_eq!(qs[0].peek_time(), qs[i].peek_time());
                assert_eq!(qs[0].now(), qs[i].now());
            }
        }
        // Drain: the complete residual order must match.
        loop {
            let popped: Vec<_> = qs.iter_mut().map(|q| q.pop()).collect();
            for (i, p) in popped.iter().enumerate().skip(1) {
                assert_eq!(
                    popped[0].as_ref().map(|e| (e.at, e.seq, e.event)),
                    p.as_ref().map(|e| (e.at, e.seq, e.event)),
                    "drain diverged on backend {i} (seed {seed})"
                );
            }
            if popped[0].is_none() {
                break;
            }
        }
    }

    #[test]
    fn property_all_backends_agree_over_randomized_schedule() {
        // The PR 7 harness: auto-assigned monotone seqs (SimNet's shape).
        for seed in 0..4u64 {
            lockstep_all_backends(seed, false);
        }
    }

    #[test]
    fn property_all_backends_agree_under_keyed_streams() {
        // The sharded engine's shape: keys from independent per-sender
        // counter streams, routinely out of global push order.
        for seed in 0..4u64 {
            lockstep_all_backends(seed, true);
        }
    }

    #[test]
    fn keyed_pushes_fire_in_key_order_not_push_order() {
        // Two "senders" push at the same instant in opposite key order on
        // different backends; the pop order must be the (at, key) order
        // everywhere, including keys pushed below the current ready head.
        for kind in KINDS {
            let mut q: EventQueue<&'static str> = EventQueue::with_scheduler(kind);
            q.push_at_keyed(SimTime(5), 300, "third");
            q.push_at_keyed(SimTime(5), 100, "first");
            q.push_at_keyed(SimTime(2), 900, "earliest");
            q.push_at_keyed(SimTime(5), 200, "second");
            assert_eq!(q.pop().map(|e| e.event), Some("earliest"));
            // The queue now sits exactly at t=2; a keyed push due *now*
            // with a small key must still sort ahead of later keys.
            q.push_at_keyed(SimTime(5), 150, "between");
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            assert_eq!(order, vec!["first", "between", "second", "third"]);
            // Auto-assigned seqs continue above the largest key seen.
            q.push_at(SimTime(9), "auto");
            let e = q.pop().expect("auto event pops");
            assert!(e.seq > 900, "auto seq {} must not collide with keys", e.seq);
        }
    }

    #[test]
    fn sharded_lane_cursors_never_outrun_the_clock() {
        // Regression shape: a pop surfaces lane A's head, lane B (tied at
        // a later time) must not have advanced past the popped time —
        // otherwise a subsequent push routed to B would land in B's past.
        let mut q: EventQueue<u64> =
            EventQueue::with_scheduler(SchedulerKind::Sharded { shards: 2 });
        // Keys chosen so lane 0 (even keys) holds t=10 and t=1000, lane 1
        // (odd keys) holds t=1000 only.
        q.push_at_keyed(SimTime(10), 2, 0);
        q.push_at_keyed(SimTime(1_000), 4, 1);
        q.push_at_keyed(SimTime(1_000), 3, 2);
        assert_eq!(q.pop().map(|e| e.event), Some(0));
        assert_eq!(q.now(), SimTime(10));
        // Push into both lanes between the popped time and the parked
        // events — legal globally, and must stay legal per lane.
        q.push_at_keyed(SimTime(20), 6, 3);
        q.push_at_keyed(SimTime(20), 5, 4);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![4, 3, 2, 1]);
    }
}
