//! Fleet-wide observability snapshots over a simulated overlay.
//!
//! Each [`StackNode`] keeps its own [`dat_obs::Registry`] (Chord layer +
//! every stacked protocol, see `StackNode::obs_registry`) and per-layer
//! event tracers. These helpers pull one snapshot per node and merge them
//! into a single fleet view:
//!
//! * [`fleet_registry`] — element-wise merged counters/gauges/histograms,
//!   so experiments read cross-node percentiles (e.g. the Fig. 8a per-node
//!   message distribution) straight off one `LogHist`;
//! * [`fleet_prometheus`] — the merged registry rendered as Prometheus
//!   text (the same format a node serves over `ChordMsg::StatsRequest`);
//! * [`fleet_events`] — every node's buffered trace events, each paired
//!   with the node's Chord id, ready for `EpochTrace::assemble` or
//!   `digest_events`.

use dat_core::StackNode;
use dat_obs::{Event, Key, Registry};

use crate::net::SimNet;

/// Merge every node's registry into one fleet-wide registry.
///
/// Counters and histogram buckets add, gauges take the max — the merge is
/// associative and commutative, so the result is independent of node
/// order. The simulator's own engine counters ride along: the timer-wheel
/// clamp count ([`SimNet::clamped_events`]) is exported zero-initialized
/// as `sim_clamped_events_total`, so a run whose horizon never clamped
/// still exposes the series; the scheduler backlog
/// ([`SimNet::pending_events`]) and process peak RSS
/// ([`crate::scale::peak_rss_mib`]) export as the `sim_backlog_events` and
/// `sim_peak_rss_mib` gauges — the same engine-health numbers
/// `sim::scale` reports, live on the metrics plane (peak RSS reads 0
/// where the platform does not expose `VmHWM`).
pub fn fleet_registry(net: &SimNet<StackNode>) -> Registry {
    let mut fleet = Registry::default();
    for (_, node) in net.iter_nodes() {
        fleet.merge(&node.obs_registry());
    }
    fleet.counter_add(Key::new("sim_clamped_events_total"), net.clamped_events());
    fleet.gauge_set(Key::new("sim_backlog_events"), net.pending_events() as f64);
    fleet.gauge_set(
        Key::new("sim_peak_rss_mib"),
        crate::scale::peak_rss_mib().unwrap_or(0) as f64,
    );
    fleet
}

/// Render the merged fleet registry as Prometheus text exposition.
pub fn fleet_prometheus(net: &SimNet<StackNode>) -> String {
    fleet_registry(net).render_prometheus()
}

/// Collect every node's buffered trace events, tagged with the node's
/// Chord id (the identity used in causal epoch traces).
pub fn fleet_events(net: &SimNet<StackNode>) -> Vec<(u64, Event)> {
    let mut out = Vec::new();
    for (_, node) in net.iter_nodes() {
        let id = node.me().id.0;
        for ev in node.trace_events() {
            out.push((id, ev));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{IdPolicy, IdSpace, StaticRing};
    use dat_core::{AggregationMode, DatConfig};
    use dat_obs::validate_prometheus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fleet_snapshot_merges_and_renders() {
        let space = IdSpace::new(24);
        let mut rng = SmallRng::seed_from_u64(3);
        let ring = StaticRing::build(space, 16, IdPolicy::Probed, &mut rng);
        let ccfg = dat_chord::ChordConfig {
            space,
            ..Default::default()
        };
        let dcfg = DatConfig {
            epoch_ms: 500,
            d0_hint: Some(1 << 20), // 2^24-space / 16 nodes
            ..Default::default()
        };
        let mut net = crate::harness::prestabilized_dat(&ring, ccfg, dcfg, 3);
        for addr in net.addrs() {
            net.with_node(addr, |n| {
                let k = n.register("cpu", AggregationMode::Continuous);
                n.set_local(k, 1.0);
                ((), vec![])
            });
        }
        net.run_for(3_000);
        let reg = fleet_registry(&net);
        assert!(reg.counter_sum("sent_total") > 0);
        let text = fleet_prometheus(&net);
        let samples = validate_prometheus(&text).expect("fleet dump parses");
        assert!(samples > 0);
        assert!(!fleet_events(&net).is_empty());
        // The engine's clamp counter is part of the fleet view even when
        // nothing clamped — zero-initialized series, never absent.
        assert_eq!(reg.counter_sum("sim_clamped_events_total"), 0);
        assert!(text.contains("sim_clamped_events_total 0"));
        // Engine-health gauges: backlog mirrors the scheduler exactly;
        // peak RSS is live (non-zero) on any platform with /proc.
        assert_eq!(
            reg.gauge(&Key::new("sim_backlog_events")),
            net.pending_events() as f64
        );
        assert!(text.contains("sim_backlog_events"));
        assert!(text.contains("sim_peak_rss_mib"));
        #[cfg(target_os = "linux")]
        assert!(reg.gauge(&Key::new("sim_peak_rss_mib")) > 0.0);
    }

    #[test]
    fn clamped_events_flow_into_the_fleet_registry() {
        let space = IdSpace::new(24);
        let mut rng = SmallRng::seed_from_u64(9);
        let ring = StaticRing::build(space, 4, IdPolicy::Probed, &mut rng);
        let ccfg = dat_chord::ChordConfig {
            space,
            ..Default::default()
        };
        let mut net = crate::harness::prestabilized_dat(&ring, ccfg, DatConfig::default(), 2);
        net.run_for(10_000);
        // A fault whose event time is already in the past is clamped to
        // "now" by the queue — the fleet registry must report it.
        let plan = crate::fault::FaultPlan::new().crash_at(5_000, net.addrs()[0]);
        net.set_fault_plan(plan);
        assert!(net.clamped_events() > 0);
        let reg = fleet_registry(&net);
        assert_eq!(
            reg.counter_sum("sim_clamped_events_total"),
            net.clamped_events()
        );
        validate_prometheus(&reg.render_prometheus()).expect("parses");
    }
}
