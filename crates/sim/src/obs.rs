//! Fleet-wide observability snapshots over a simulated overlay.
//!
//! Each [`StackNode`] keeps its own [`dat_obs::Registry`] (Chord layer +
//! every stacked protocol, see `StackNode::obs_registry`) and per-layer
//! event tracers. These helpers pull one snapshot per node and merge them
//! into a single fleet view:
//!
//! * [`fleet_registry`] — element-wise merged counters/gauges/histograms,
//!   so experiments read cross-node percentiles (e.g. the Fig. 8a per-node
//!   message distribution) straight off one `LogHist`;
//! * [`fleet_prometheus`] — the merged registry rendered as Prometheus
//!   text (the same format a node serves over `ChordMsg::StatsRequest`);
//! * [`fleet_events`] — every node's buffered trace events, each paired
//!   with the node's Chord id, ready for `EpochTrace::assemble` or
//!   `digest_events`.

use dat_core::StackNode;
use dat_obs::{Event, Registry};

use crate::net::SimNet;

/// Merge every node's registry into one fleet-wide registry.
///
/// Counters and histogram buckets add, gauges take the max — the merge is
/// associative and commutative, so the result is independent of node
/// order.
pub fn fleet_registry(net: &SimNet<StackNode>) -> Registry {
    let mut fleet = Registry::default();
    for (_, node) in net.iter_nodes() {
        fleet.merge(&node.obs_registry());
    }
    fleet
}

/// Render the merged fleet registry as Prometheus text exposition.
pub fn fleet_prometheus(net: &SimNet<StackNode>) -> String {
    fleet_registry(net).render_prometheus()
}

/// Collect every node's buffered trace events, tagged with the node's
/// Chord id (the identity used in causal epoch traces).
pub fn fleet_events(net: &SimNet<StackNode>) -> Vec<(u64, Event)> {
    let mut out = Vec::new();
    for (_, node) in net.iter_nodes() {
        let id = node.me().id.0;
        for ev in node.trace_events() {
            out.push((id, ev));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{IdPolicy, IdSpace, StaticRing};
    use dat_core::{AggregationMode, DatConfig};
    use dat_obs::validate_prometheus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fleet_snapshot_merges_and_renders() {
        let space = IdSpace::new(24);
        let mut rng = SmallRng::seed_from_u64(3);
        let ring = StaticRing::build(space, 16, IdPolicy::Probed, &mut rng);
        let ccfg = dat_chord::ChordConfig {
            space,
            ..Default::default()
        };
        let dcfg = DatConfig {
            epoch_ms: 500,
            d0_hint: Some(1 << 20), // 2^24-space / 16 nodes
            ..Default::default()
        };
        let mut net = crate::harness::prestabilized_dat(&ring, ccfg, dcfg, 3);
        for addr in net.addrs() {
            net.with_node(addr, |n| {
                let k = n.register("cpu", AggregationMode::Continuous);
                n.set_local(k, 1.0);
                ((), vec![])
            });
        }
        net.run_for(3_000);
        let reg = fleet_registry(&net);
        assert!(reg.counter_sum("sent_total") > 0);
        let text = fleet_prometheus(&net);
        let samples = validate_prometheus(&text).expect("fleet dump parses");
        assert!(samples > 0);
        assert!(!fleet_events(&net).is_empty());
    }
}
