//! Virtual time for the discrete-event engine.
//!
//! Simulated time is a `u64` count of virtual milliseconds — the same unit
//! the sans-io protocol uses for its timer delays, so no conversions happen
//! at the boundary.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in virtual time (milliseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Milliseconds since simulation start.
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since simulation start.
    #[inline]
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Construct from seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Saturating difference in milliseconds.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, ms: u64) {
        self.0 += ms;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000 {
            write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + 1500;
        assert_eq!(t.as_millis(), 1500);
        assert_eq!(t.as_secs(), 1);
        assert_eq!(t - SimTime(500), 1000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime(5).saturating_since(SimTime(10)), 0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime(999).to_string(), "999ms");
        assert_eq!(SimTime(61_250).to_string(), "61.250s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        let mut t = SimTime(1);
        t += 5;
        assert_eq!(t, SimTime(6));
    }
}
