//! # dat-sim — discrete-event simulation engine
//!
//! The paper's prototype evaluates at scale by running the unmodified
//! Chord/DAT layers over "a discrete event simulation engine \[with\] a
//! heap-based event queue … to insert and fire those events in a
//! chronological order" (§4). This crate is that engine:
//!
//! * [`queue::EventQueue`] — deterministic heap-based scheduler (ties fire
//!   in insertion order, so a seed fully determines a run);
//! * [`time::SimTime`] — virtual milliseconds, the same unit the sans-io
//!   protocol uses for timer delays;
//! * [`latency::LatencyModel`] / [`latency::LossModel`] — constant (LAN),
//!   uniform-jitter and log-normal (WAN) one-way delays, plus i.i.d. loss
//!   for fault injection;
//! * [`net::SimNet`] — hosts any sans-io [`net::Actor`] (a bare
//!   [`dat_chord::ChordNode`], or a [`dat_core::StackNode`] protocol stack
//!   hosting any mix of DAT / explicit-tree / gossip / MAAN handlers),
//!   interprets their outputs, counts transport traffic;
//! * [`harness`] — builds whole overlays: live protocol joins, or
//!   pre-stabilized 8192-node rings materialised from a global view;
//! * [`scale`] — 10⁴–10⁶-node throughput epochs (events/sec, ns/event,
//!   peak RSS) tracking the engine's performance trajectory;
//! * [`stats`] — tallies, percentiles and the paper's imbalance factor.
//!
//! ```
//! use dat_chord::{ChordConfig, IdSpace, IdPolicy, StaticRing};
//! use dat_sim::harness::{prestabilized_chord, ring_converged};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let ring = StaticRing::build(IdSpace::new(24), 100, IdPolicy::Random, &mut rng);
//! let cfg = ChordConfig { space: IdSpace::new(24), ..ChordConfig::default() };
//! let net = prestabilized_chord(&ring, cfg, 7);
//! assert!(ring_converged(&net, ring.ids()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corrupt;
pub mod fault;
pub mod fuzz;
pub mod gray;
pub mod harness;
pub mod latency;
pub mod net;
pub mod obs;
pub mod queue;
pub mod scale;
pub mod shard;
pub mod soak;
pub mod stats;
pub mod time;

pub use corrupt::{run_corrupt, CorruptConfig, CorruptOutcome};
pub use fault::{CorruptMode, FaultEvent, FaultPlan, LinkFault};
pub use fuzz::{fuzz_codec, FuzzReport, FuzzTarget, ALL_TARGETS};
pub use gray::{run_gray, GrayConfig, GrayOutcome};
pub use harness::{
    finger_convergence, prestabilized_chord, prestabilized_dat, prestabilized_explicit,
    prestabilized_gossip, prestabilized_stack, ring_converged, spawn_live_ring, ChordView,
};
pub use latency::{LatencyModel, LossModel};
pub use net::{Actor, LinkStats, SimNet, UpcallRecord};
pub use obs::{fleet_events, fleet_prometheus, fleet_registry};
pub use queue::{EventQueue, SchedulerKind};
pub use scale::{run_scale, ScaleConfig, ScaleReport};
pub use shard::ShardedNet;
pub use soak::{run_soak, SoakConfig, SoakOutcome, SoakReport};
pub use stats::{imbalance_factor, percentile, rank_order, Tally};
pub use time::SimTime;
