//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] is a declarative schedule of fault events in virtual
//! time: network partitions and their heals, per-link loss/latency
//! overrides, bounded flaky-link episodes, message duplication, node
//! crashes and restarts. [`crate::SimNet::set_fault_plan`] turns the plan
//! into ordinary queue events, so the schedule replays identically for a
//! given seed — the *only* randomness consumed (per-link drop coins,
//! duplication coins) comes from the engine's seeded generator, and none
//! at all is drawn when no plan is installed. [`FaultPlan::digest`] hashes
//! a canonical byte encoding of the schedule, which is what the
//! reproducibility tests compare across runs.

use std::collections::{HashMap, HashSet};

use dat_chord::NodeAddr;

use crate::time::SimTime;

/// Fault parameters for one directed link.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFault {
    /// Drop probability applied on top of the global loss model.
    pub loss: f64,
    /// Extra one-way latency (ms) added to every surviving message.
    pub extra_latency_ms: u64,
}

/// How a corrupted frame's bytes are mutated (see
/// [`FaultEvent::CorruptLink`]). Each mode models a different wire
/// pathology; all of them must be caught by the frame checksum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptMode {
    /// Flip one random bit — the classic undetected-by-UDP single-bit
    /// error.
    BitFlip,
    /// Cut the frame at a random offset — a fragmented or clipped
    /// datagram.
    Truncate,
    /// Replace a random run of bytes with random garbage — memory
    /// corruption in a middlebox, or a hostile writer.
    Garbage,
    /// Overwrite the message-tag byte with a random value — the
    /// "parseable but wrong message" shape that most tempts a decoder
    /// into silent misinterpretation.
    TagRewrite,
}

impl CorruptMode {
    /// Canonical byte for digest encoding.
    fn code(self) -> u8 {
        match self {
            CorruptMode::BitFlip => 0,
            CorruptMode::Truncate => 1,
            CorruptMode::Garbage => 2,
            CorruptMode::TagRewrite => 3,
        }
    }

    /// Stable label (reports, replay lines).
    pub fn label(self) -> &'static str {
        match self {
            CorruptMode::BitFlip => "bit_flip",
            CorruptMode::Truncate => "truncate",
            CorruptMode::Garbage => "garbage",
            CorruptMode::TagRewrite => "tag_rewrite",
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Sever all traffic between `group` and the rest of the network, in
    /// both directions. A new partition replaces any active one.
    Partition {
        /// Addresses on one side of the cut.
        group: Vec<NodeAddr>,
    },
    /// Remove the active partition.
    Heal,
    /// Install a loss/latency override on the directed link `from → to`.
    SetLink {
        /// Sending side.
        from: NodeAddr,
        /// Receiving side.
        to: NodeAddr,
        /// Override parameters.
        fault: LinkFault,
    },
    /// Remove the override on `from → to`.
    ClearLink {
        /// Sending side.
        from: NodeAddr,
        /// Receiving side.
        to: NodeAddr,
    },
    /// A flaky-link episode: like `SetLink` but auto-expiring after
    /// `for_ms` virtual milliseconds.
    FlakyLink {
        /// Sending side.
        from: NodeAddr,
        /// Receiving side.
        to: NodeAddr,
        /// Override parameters during the episode.
        fault: LinkFault,
        /// Episode length (ms).
        for_ms: u64,
    },
    /// Deliver every message twice with this probability (the second copy
    /// draws its own latency). Models the duplicate-delivery hazard of
    /// retransmitting transports. The coin is flipped per transmission, so
    /// duplication compounds across multi-hop forwarding chains — keep
    /// `prob` small (a few percent); values near 1 amplify deep routes
    /// exponentially.
    SetDuplication {
        /// Duplication probability in `[0, 1]`.
        prob: f64,
    },
    /// Abruptly remove a node, exactly like [`crate::SimNet::crash`]:
    /// in-flight traffic to it is dropped, its timers die silently.
    Crash {
        /// The node to remove.
        node: NodeAddr,
    },
    /// Re-create a previously crashed node with fresh state through the
    /// host's restart hook ([`crate::SimNet::set_restart_fn`]). Ignored if
    /// the node is still alive or no hook is installed.
    Restart {
        /// The node to bring back.
        node: NodeAddr,
    },
    /// Gray failure: `node` keeps running but serializes message
    /// processing, consuming `process_ms` of virtual time per delivered
    /// message for the duration of the episode. The node never goes
    /// silent — it answers *late*, the failure mode clean crash detection
    /// cannot see.
    Slowdown {
        /// The slowed node.
        node: NodeAddr,
        /// Virtual processing time consumed per delivered message.
        process_ms: u64,
        /// Episode length (ms).
        for_ms: u64,
    },
    /// Asymmetric gray degradation of the directed link `from → to`:
    /// extra loss and latency plus per-message jitter drawn uniformly
    /// from `0..=jitter_ms`, auto-expiring after `for_ms`. The reverse
    /// direction is untouched, so the victim still *hears* its peer while
    /// its own traffic wanders — the half-open-link shape.
    DegradeLink {
        /// Sending side.
        from: NodeAddr,
        /// Receiving side.
        to: NodeAddr,
        /// Baseline loss/latency override during the episode.
        fault: LinkFault,
        /// Upper bound of the uniform per-message latency jitter (ms).
        jitter_ms: u64,
        /// Episode length (ms).
        for_ms: u64,
    },
    /// Overload burst: `msgs` junk application messages (an undecodable
    /// DAT payload from a sentinel sender) are delivered to `node`,
    /// spread evenly over `spread_ms`. They burn inbox capacity and
    /// decode as garbage — exercising priority shedding rather than the
    /// protocol itself.
    Overload {
        /// The node to swamp.
        node: NodeAddr,
        /// Number of junk messages injected.
        msgs: u64,
        /// Window over which the deliveries are spread (ms).
        spread_ms: u64,
    },
    /// Byte-level wire corruption on the directed link `from → to`: each
    /// delivered message independently has its encoded frame mutated with
    /// probability `prob` (mode picks the mutation shape), auto-expiring
    /// after `for_ms`. Mutated frames travel through the real codec — the
    /// receiver sees whatever the decoder makes of the damaged bytes, so
    /// this exercises checksum detection, bad-frame accounting, and
    /// poisoned-peer quarantine end to end.
    CorruptLink {
        /// Sending side.
        from: NodeAddr,
        /// Receiving side.
        to: NodeAddr,
        /// Per-message corruption probability in `[0, 1]`.
        prob: f64,
        /// Byte-mutation shape.
        mode: CorruptMode,
        /// Episode length (ms); must be non-zero.
        for_ms: u64,
    },
}

impl FaultEvent {
    /// Append a canonical byte encoding (stable across runs and platforms).
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            FaultEvent::Partition { group } => {
                buf.push(0);
                buf.extend((group.len() as u64).to_le_bytes());
                for a in group {
                    buf.extend(a.0.to_le_bytes());
                }
            }
            FaultEvent::Heal => buf.push(1),
            FaultEvent::SetLink { from, to, fault } => {
                buf.push(2);
                buf.extend(from.0.to_le_bytes());
                buf.extend(to.0.to_le_bytes());
                buf.extend(fault.loss.to_bits().to_le_bytes());
                buf.extend(fault.extra_latency_ms.to_le_bytes());
            }
            FaultEvent::ClearLink { from, to } => {
                buf.push(3);
                buf.extend(from.0.to_le_bytes());
                buf.extend(to.0.to_le_bytes());
            }
            FaultEvent::FlakyLink {
                from,
                to,
                fault,
                for_ms,
            } => {
                buf.push(4);
                buf.extend(from.0.to_le_bytes());
                buf.extend(to.0.to_le_bytes());
                buf.extend(fault.loss.to_bits().to_le_bytes());
                buf.extend(fault.extra_latency_ms.to_le_bytes());
                buf.extend(for_ms.to_le_bytes());
            }
            FaultEvent::SetDuplication { prob } => {
                buf.push(5);
                buf.extend(prob.to_bits().to_le_bytes());
            }
            FaultEvent::Crash { node } => {
                buf.push(6);
                buf.extend(node.0.to_le_bytes());
            }
            FaultEvent::Restart { node } => {
                buf.push(7);
                buf.extend(node.0.to_le_bytes());
            }
            FaultEvent::Slowdown {
                node,
                process_ms,
                for_ms,
            } => {
                buf.push(8);
                buf.extend(node.0.to_le_bytes());
                buf.extend(process_ms.to_le_bytes());
                buf.extend(for_ms.to_le_bytes());
            }
            FaultEvent::DegradeLink {
                from,
                to,
                fault,
                jitter_ms,
                for_ms,
            } => {
                buf.push(9);
                buf.extend(from.0.to_le_bytes());
                buf.extend(to.0.to_le_bytes());
                buf.extend(fault.loss.to_bits().to_le_bytes());
                buf.extend(fault.extra_latency_ms.to_le_bytes());
                buf.extend(jitter_ms.to_le_bytes());
                buf.extend(for_ms.to_le_bytes());
            }
            FaultEvent::Overload {
                node,
                msgs,
                spread_ms,
            } => {
                buf.push(10);
                buf.extend(node.0.to_le_bytes());
                buf.extend(msgs.to_le_bytes());
                buf.extend(spread_ms.to_le_bytes());
            }
            FaultEvent::CorruptLink {
                from,
                to,
                prob,
                mode,
                for_ms,
            } => {
                buf.push(11);
                buf.extend(from.0.to_le_bytes());
                buf.extend(to.0.to_le_bytes());
                buf.extend(prob.to_bits().to_le_bytes());
                buf.push(mode.code());
                buf.extend(for_ms.to_le_bytes());
            }
        }
    }

    /// Build-time validation: every probability parameter must be a finite
    /// value in `[0.0, 1.0]`. Catching a NaN or out-of-range loss here —
    /// when the plan is *built* — beats silently misbehaving coin flips at
    /// delivery time. Panics with the offending field and value.
    fn validate(&self) {
        fn check_prob(what: &str, p: f64) {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "{what} must be a finite probability in [0.0, 1.0], got {p}"
            );
        }
        match self {
            FaultEvent::SetLink { fault, .. }
            | FaultEvent::FlakyLink { fault, .. }
            | FaultEvent::DegradeLink { fault, .. } => check_prob("LinkFault.loss", fault.loss),
            FaultEvent::SetDuplication { prob } => check_prob("duplication prob", *prob),
            FaultEvent::CorruptLink { prob, for_ms, .. } => {
                check_prob("corruption prob", *prob);
                assert!(
                    *for_ms > 0,
                    "corruption episode must have a non-zero length, got for_ms = 0"
                );
            }
            _ => {}
        }
    }
}

/// A deterministic schedule of fault events in virtual time.
///
/// Built with the fluent `*_at` methods; install it with
/// [`crate::SimNet::set_fault_plan`] *before* running the engine past the
/// first event time (events scheduled in the past fire immediately).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<(u64, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule `event` at virtual time `at_ms`.
    ///
    /// Every builder funnels through here, so probability parameters
    /// (link loss, duplication) are validated into `[0.0, 1.0]` at build
    /// time; an out-of-range or NaN value panics immediately instead of
    /// corrupting coin flips mid-run.
    pub fn at(mut self, at_ms: u64, event: FaultEvent) -> Self {
        event.validate();
        self.events.push((at_ms, event));
        self
    }

    /// Partition `group` away from everyone else at `at_ms`.
    pub fn partition_at(self, at_ms: u64, group: Vec<NodeAddr>) -> Self {
        self.at(at_ms, FaultEvent::Partition { group })
    }

    /// Heal the active partition at `at_ms`.
    pub fn heal_at(self, at_ms: u64) -> Self {
        self.at(at_ms, FaultEvent::Heal)
    }

    /// Install a directed link override at `at_ms`.
    pub fn link_fault_at(self, at_ms: u64, from: NodeAddr, to: NodeAddr, fault: LinkFault) -> Self {
        self.at(at_ms, FaultEvent::SetLink { from, to, fault })
    }

    /// Clear a directed link override at `at_ms`.
    pub fn clear_link_at(self, at_ms: u64, from: NodeAddr, to: NodeAddr) -> Self {
        self.at(at_ms, FaultEvent::ClearLink { from, to })
    }

    /// A flaky-link episode of `for_ms` starting at `at_ms`.
    pub fn flaky_link_at(
        self,
        at_ms: u64,
        from: NodeAddr,
        to: NodeAddr,
        fault: LinkFault,
        for_ms: u64,
    ) -> Self {
        self.at(
            at_ms,
            FaultEvent::FlakyLink {
                from,
                to,
                fault,
                for_ms,
            },
        )
    }

    /// Set the message-duplication probability at `at_ms`.
    pub fn duplication_at(self, at_ms: u64, prob: f64) -> Self {
        self.at(at_ms, FaultEvent::SetDuplication { prob })
    }

    /// Crash `node` at `at_ms`.
    pub fn crash_at(self, at_ms: u64, node: NodeAddr) -> Self {
        self.at(at_ms, FaultEvent::Crash { node })
    }

    /// Restart `node` (fresh state) at `at_ms`.
    pub fn restart_at(self, at_ms: u64, node: NodeAddr) -> Self {
        self.at(at_ms, FaultEvent::Restart { node })
    }

    /// A gray processing-slowdown episode on `node` starting at `at_ms`.
    pub fn slowdown_at(self, at_ms: u64, node: NodeAddr, process_ms: u64, for_ms: u64) -> Self {
        self.at(
            at_ms,
            FaultEvent::Slowdown {
                node,
                process_ms,
                for_ms,
            },
        )
    }

    /// An asymmetric link-degradation episode on `from → to` at `at_ms`.
    pub fn degrade_link_at(
        self,
        at_ms: u64,
        from: NodeAddr,
        to: NodeAddr,
        fault: LinkFault,
        jitter_ms: u64,
        for_ms: u64,
    ) -> Self {
        self.at(
            at_ms,
            FaultEvent::DegradeLink {
                from,
                to,
                fault,
                jitter_ms,
                for_ms,
            },
        )
    }

    /// An overload burst of `msgs` junk messages on `node` at `at_ms`.
    pub fn overload_at(self, at_ms: u64, node: NodeAddr, msgs: u64, spread_ms: u64) -> Self {
        self.at(
            at_ms,
            FaultEvent::Overload {
                node,
                msgs,
                spread_ms,
            },
        )
    }

    /// A byte-corruption episode on `from → to` starting at `at_ms`.
    pub fn corrupt_link_at(
        self,
        at_ms: u64,
        from: NodeAddr,
        to: NodeAddr,
        prob: f64,
        mode: CorruptMode,
        for_ms: u64,
    ) -> Self {
        self.at(
            at_ms,
            FaultEvent::CorruptLink {
                from,
                to,
                prob,
                mode,
                for_ms,
            },
        )
    }

    /// The scheduled `(at_ms, event)` pairs, in declaration order.
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a hash of the canonical byte encoding of the whole schedule,
    /// in declaration order. Two runs configured with equal plans produce
    /// equal digests — the reproducibility tests' byte-identity check.
    pub fn digest(&self) -> u64 {
        let mut buf = Vec::new();
        for (at, ev) in &self.events {
            buf.extend(at.to_le_bytes());
            ev.encode(&mut buf);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in buf {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        h
    }
}

/// What the engine must do for node-level fault events (the controller
/// handles link-level state itself).
#[derive(Clone, Copy, Debug)]
pub(crate) enum FaultAction {
    Crash(NodeAddr),
    Restart(NodeAddr),
    /// Install a processing slowdown: (node, process_ms, for_ms).
    Slow(NodeAddr, u64, u64),
    /// Schedule an overload burst: (node, msgs, spread_ms).
    Overload(NodeAddr, u64, u64),
}

/// Live fault state derived from a [`FaultPlan`] as its events fire.
#[derive(Debug)]
pub(crate) struct FaultController {
    plan: FaultPlan,
    /// Addresses on the minority side of the active partition, if any.
    partition: Option<HashSet<NodeAddr>>,
    /// Directed link overrides, with an optional expiry for flaky links.
    links: HashMap<(NodeAddr, NodeAddr), (LinkFault, Option<SimTime>)>,
    /// Asymmetric gray-degradation overrides: `(fault, jitter_ms, expiry)`.
    /// Kept apart from `links` so a degradation composes with (rather than
    /// replaces) an ordinary override on the same link.
    degraded: HashMap<(NodeAddr, NodeAddr), (LinkFault, u64, SimTime)>,
    /// Byte-corruption episodes: `(prob, mode, expiry)`. Separate from the
    /// loss maps — a corrupted frame is still *delivered*, just damaged.
    corrupt: HashMap<(NodeAddr, NodeAddr), (f64, CorruptMode, SimTime)>,
    dup_prob: f64,
}

impl FaultController {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultController {
            plan,
            partition: None,
            links: HashMap::new(),
            degraded: HashMap::new(),
            corrupt: HashMap::new(),
            dup_prob: 0.0,
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Apply the `idx`-th scheduled event; node-level events are returned
    /// for the engine to execute.
    pub(crate) fn apply(&mut self, idx: usize, now: SimTime) -> Option<FaultAction> {
        let (_, event) = self.plan.events.get(idx)?.clone();
        match event {
            FaultEvent::Partition { group } => {
                self.partition = Some(group.into_iter().collect());
                None
            }
            FaultEvent::Heal => {
                self.partition = None;
                None
            }
            FaultEvent::SetLink { from, to, fault } => {
                self.links.insert((from, to), (fault, None));
                None
            }
            FaultEvent::ClearLink { from, to } => {
                self.links.remove(&(from, to));
                None
            }
            FaultEvent::FlakyLink {
                from,
                to,
                fault,
                for_ms,
            } => {
                self.links.insert((from, to), (fault, Some(now + for_ms)));
                None
            }
            FaultEvent::SetDuplication { prob } => {
                self.dup_prob = prob.clamp(0.0, 1.0);
                None
            }
            FaultEvent::Crash { node } => Some(FaultAction::Crash(node)),
            FaultEvent::Restart { node } => Some(FaultAction::Restart(node)),
            FaultEvent::Slowdown {
                node,
                process_ms,
                for_ms,
            } => Some(FaultAction::Slow(node, process_ms, for_ms)),
            FaultEvent::DegradeLink {
                from,
                to,
                fault,
                jitter_ms,
                for_ms,
            } => {
                self.degraded
                    .insert((from, to), (fault, jitter_ms, now + for_ms));
                None
            }
            FaultEvent::Overload {
                node,
                msgs,
                spread_ms,
            } => Some(FaultAction::Overload(node, msgs, spread_ms)),
            FaultEvent::CorruptLink {
                from,
                to,
                prob,
                mode,
                for_ms,
            } => {
                self.corrupt.insert((from, to), (prob, mode, now + for_ms));
                None
            }
        }
    }

    /// Is traffic `from → to` severed by the active partition?
    pub(crate) fn blocked(&self, from: NodeAddr, to: NodeAddr) -> bool {
        match &self.partition {
            Some(group) => group.contains(&from) != group.contains(&to),
            None => false,
        }
    }

    /// The override on `from → to`, expiring flaky episodes lazily.
    pub(crate) fn link(&mut self, from: NodeAddr, to: NodeAddr, now: SimTime) -> Option<LinkFault> {
        match self.links.get(&(from, to)) {
            Some((_, Some(expiry))) if *expiry <= now => {
                self.links.remove(&(from, to));
                None
            }
            Some((fault, _)) => Some(*fault),
            None => None,
        }
    }

    /// The gray degradation on `from → to` as `(fault, jitter_ms)`,
    /// expiring episodes lazily.
    pub(crate) fn degrade(
        &mut self,
        from: NodeAddr,
        to: NodeAddr,
        now: SimTime,
    ) -> Option<(LinkFault, u64)> {
        match self.degraded.get(&(from, to)) {
            Some((_, _, expiry)) if *expiry <= now => {
                self.degraded.remove(&(from, to));
                None
            }
            Some((fault, jitter, _)) => Some((*fault, *jitter)),
            None => None,
        }
    }

    /// The corruption episode on `from → to` as `(prob, mode)`, expiring
    /// lazily. Returns `None` — without consuming any randomness — when no
    /// episode is active, so runs without corruption events keep their
    /// seeded digests byte-identical.
    pub(crate) fn corrupt(
        &mut self,
        from: NodeAddr,
        to: NodeAddr,
        now: SimTime,
    ) -> Option<(f64, CorruptMode)> {
        match self.corrupt.get(&(from, to)) {
            Some((_, _, expiry)) if *expiry <= now => {
                self.corrupt.remove(&(from, to));
                None
            }
            Some((prob, mode, _)) => Some((*prob, *mode)),
            None => None,
        }
    }

    /// `true` while any corruption episode is installed (cheap gate so the
    /// hot delivery path skips the per-link lookup entirely in clean runs).
    pub(crate) fn any_corrupt(&self) -> bool {
        !self.corrupt.is_empty()
    }

    pub(crate) fn dup_prob(&self) -> f64 {
        self.dup_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> NodeAddr {
        NodeAddr(n)
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let build = || {
            FaultPlan::new()
                .partition_at(10_000, vec![a(1), a(2)])
                .heal_at(70_000)
                .crash_at(80_000, a(3))
        };
        assert_eq!(build().digest(), build().digest());
        let reordered = FaultPlan::new()
            .heal_at(70_000)
            .partition_at(10_000, vec![a(1), a(2)])
            .crash_at(80_000, a(3));
        assert_ne!(build().digest(), reordered.digest());
        let tweaked = FaultPlan::new()
            .partition_at(10_000, vec![a(1), a(2)])
            .heal_at(70_001)
            .crash_at(80_000, a(3));
        assert_ne!(build().digest(), tweaked.digest());
        assert_ne!(FaultPlan::new().digest(), build().digest());
    }

    #[test]
    fn partition_blocks_both_directions_until_heal() {
        let plan = FaultPlan::new().partition_at(0, vec![a(1)]).heal_at(10);
        let mut fc = FaultController::new(plan);
        fc.apply(0, SimTime(0));
        assert!(fc.blocked(a(1), a(2)));
        assert!(fc.blocked(a(2), a(1)));
        assert!(!fc.blocked(a(2), a(3)), "same side unaffected");
        assert!(!fc.blocked(a(1), a(1)));
        fc.apply(1, SimTime(10));
        assert!(!fc.blocked(a(1), a(2)));
    }

    #[test]
    fn flaky_link_expires_and_set_link_persists() {
        let fault = LinkFault {
            loss: 0.5,
            extra_latency_ms: 100,
        };
        let plan = FaultPlan::new()
            .flaky_link_at(0, a(1), a(2), fault, 50)
            .link_fault_at(0, a(3), a(4), fault);
        let mut fc = FaultController::new(plan);
        fc.apply(0, SimTime(0));
        fc.apply(1, SimTime(0));
        assert_eq!(fc.link(a(1), a(2), SimTime(49)), Some(fault));
        assert_eq!(fc.link(a(1), a(2), SimTime(50)), None, "episode over");
        assert_eq!(fc.link(a(1), a(2), SimTime(10)), None, "removed for good");
        assert_eq!(fc.link(a(3), a(4), SimTime(1_000_000)), Some(fault));
        assert_eq!(fc.link(a(2), a(1), SimTime(0)), None, "directed");
    }

    #[test]
    #[should_panic(expected = "finite probability")]
    fn link_loss_above_one_rejected_at_build_time() {
        let _ = FaultPlan::new().link_fault_at(
            0,
            a(1),
            a(2),
            LinkFault {
                loss: 1.5,
                extra_latency_ms: 0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "finite probability")]
    fn link_loss_nan_rejected_at_build_time() {
        let _ = FaultPlan::new().flaky_link_at(
            0,
            a(1),
            a(2),
            LinkFault {
                loss: f64::NAN,
                extra_latency_ms: 0,
            },
            100,
        );
    }

    #[test]
    #[should_panic(expected = "finite probability")]
    fn duplication_prob_out_of_range_rejected_at_build_time() {
        let _ = FaultPlan::new().duplication_at(0, -0.1);
    }

    #[test]
    fn gray_events_surface_actions_and_cover_digest() {
        let fault = LinkFault {
            loss: 0.3,
            extra_latency_ms: 20,
        };
        let build = || {
            FaultPlan::new()
                .slowdown_at(10, a(1), 500, 5_000)
                .degrade_link_at(20, a(1), a(2), fault, 40, 5_000)
                .overload_at(30, a(3), 64, 1_000)
        };
        // Every new variant lands in the canonical digest.
        assert_eq!(build().digest(), build().digest());
        let tweaked = FaultPlan::new()
            .slowdown_at(10, a(1), 501, 5_000)
            .degrade_link_at(20, a(1), a(2), fault, 40, 5_000)
            .overload_at(30, a(3), 64, 1_000);
        assert_ne!(build().digest(), tweaked.digest());

        let mut fc = FaultController::new(build());
        assert!(matches!(
            fc.apply(0, SimTime(10)),
            Some(FaultAction::Slow(n, 500, 5_000)) if n == a(1)
        ));
        assert!(fc.apply(1, SimTime(20)).is_none());
        // Degradation is asymmetric, composes with `links`, and expires.
        assert_eq!(fc.degrade(a(1), a(2), SimTime(100)), Some((fault, 40)));
        assert_eq!(fc.degrade(a(2), a(1), SimTime(100)), None, "directed");
        assert_eq!(fc.link(a(1), a(2), SimTime(100)), None, "separate maps");
        assert_eq!(fc.degrade(a(1), a(2), SimTime(5_020)), None, "expired");
        assert!(matches!(
            fc.apply(2, SimTime(30)),
            Some(FaultAction::Overload(n, 64, 1_000)) if n == a(3)
        ));
    }

    #[test]
    fn corrupt_link_covers_digest_and_expires() {
        let build = || {
            FaultPlan::new()
                .corrupt_link_at(100, a(1), a(2), 0.05, CorruptMode::BitFlip, 5_000)
                .corrupt_link_at(200, a(2), a(3), 0.5, CorruptMode::Garbage, 1_000)
        };
        assert_eq!(build().digest(), build().digest());
        let other_mode = FaultPlan::new()
            .corrupt_link_at(100, a(1), a(2), 0.05, CorruptMode::Truncate, 5_000)
            .corrupt_link_at(200, a(2), a(3), 0.5, CorruptMode::Garbage, 1_000);
        assert_ne!(build().digest(), other_mode.digest(), "mode is content");
        let other_prob = FaultPlan::new()
            .corrupt_link_at(100, a(1), a(2), 0.06, CorruptMode::BitFlip, 5_000)
            .corrupt_link_at(200, a(2), a(3), 0.5, CorruptMode::Garbage, 1_000);
        assert_ne!(build().digest(), other_prob.digest(), "prob is content");

        let mut fc = FaultController::new(build());
        assert!(!fc.any_corrupt());
        assert!(fc.apply(0, SimTime(100)).is_none());
        assert!(fc.any_corrupt());
        assert_eq!(
            fc.corrupt(a(1), a(2), SimTime(5_099)),
            Some((0.05, CorruptMode::BitFlip))
        );
        assert_eq!(fc.corrupt(a(2), a(1), SimTime(200)), None, "directed");
        assert_eq!(fc.corrupt(a(1), a(2), SimTime(5_100)), None, "episode over");
        assert_eq!(
            fc.corrupt(a(1), a(2), SimTime(300)),
            None,
            "removed for good"
        );
        assert!(!fc.any_corrupt(), "lazy expiry empties the map");
    }

    #[test]
    fn corrupt_link_digest_vector_is_pinned() {
        // Golden digest: guards the canonical encoding (tag 11, LE fields,
        // mode code byte) against accidental re-numbering. If this changes,
        // every recorded replay line referencing a corruption plan breaks.
        let plan = FaultPlan::new().corrupt_link_at(
            1_000,
            a(7),
            a(9),
            0.25,
            CorruptMode::TagRewrite,
            30_000,
        );
        assert_eq!(plan.digest(), 0x94d5_7ce2_0f49_7c04);
    }

    #[test]
    #[should_panic(expected = "finite probability")]
    fn corruption_prob_nan_rejected_at_build_time() {
        let _ =
            FaultPlan::new().corrupt_link_at(0, a(1), a(2), f64::NAN, CorruptMode::BitFlip, 100);
    }

    #[test]
    #[should_panic(expected = "finite probability")]
    fn corruption_prob_above_one_rejected_at_build_time() {
        let _ = FaultPlan::new().corrupt_link_at(0, a(1), a(2), 1.01, CorruptMode::Garbage, 100);
    }

    #[test]
    #[should_panic(expected = "non-zero length")]
    fn zero_length_corruption_episode_rejected_at_build_time() {
        let _ = FaultPlan::new().corrupt_link_at(0, a(1), a(2), 0.5, CorruptMode::Truncate, 0);
    }

    #[test]
    fn duplication_applies_and_crash_restart_surface_actions() {
        let plan = FaultPlan::new()
            .duplication_at(0, 1.0)
            .crash_at(1, a(9))
            .restart_at(2, a(9));
        let mut fc = FaultController::new(plan);
        assert!(fc.apply(0, SimTime(0)).is_none());
        assert_eq!(fc.dup_prob(), 1.0);
        assert!(matches!(
            fc.apply(1, SimTime(1)),
            Some(FaultAction::Crash(n)) if n == a(9)
        ));
        assert!(matches!(
            fc.apply(2, SimTime(2)),
            Some(FaultAction::Restart(n)) if n == a(9)
        ));
        assert!(fc.apply(99, SimTime(3)).is_none(), "out of range is inert");
    }
}
