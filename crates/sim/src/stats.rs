//! Small statistics helpers shared by experiments.
//!
//! The paper's metrics are simple aggregates: maximum/average branching
//! factors (Fig. 7), rank-ordered message distributions (Fig. 8a) and the
//! *imbalance factor* — max/mean messages per node (Fig. 8b). [`Tally`]
//! accumulates them in one pass; [`percentile`] and [`imbalance_factor`]
//! operate on collected samples.

/// Streaming tally: count, min, max, mean and variance (Welford).
#[derive(Clone, Copy, Debug, Default)]
pub struct Tally {
    n: u64,
    min: f64,
    max: f64,
    mean: f64,
    m2: f64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Tally {
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Absorb one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Absorb many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Smallest observation (NaN-free; panics if empty in debug).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// max / mean — the paper's imbalance factor (1.0 when empty).
    pub fn imbalance(&self) -> f64 {
        if self.n == 0 || self.mean() == 0.0 {
            1.0
        } else {
            self.max / self.mean()
        }
    }

    /// Merge another tally into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The `q`-th percentile (0–100, nearest-rank) of `samples`; sorts a copy.
pub fn percentile(samples: &[u64], q: f64) -> u64 {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    assert!((0.0..=100.0).contains(&q));
    let mut s = samples.to_vec();
    s.sort_unstable();
    let rank = ((q / 100.0) * (s.len() as f64 - 1.0)).round() as usize;
    s[rank]
}

/// Imbalance factor of a per-node count vector: max / mean (Fig. 8b).
pub fn imbalance_factor(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let max = *counts.iter().max().unwrap() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Sort counts descending — the "node rank" ordering of Fig. 8a.
pub fn rank_order(counts: &[u64]) -> Vec<u64> {
    let mut s = counts.to_vec();
    s.sort_unstable_by(|a, b| b.cmp(a));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basic() {
        let mut t = Tally::new();
        t.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.count(), 4);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 4.0);
        assert!((t.mean() - 2.5).abs() < 1e-12);
        assert!((t.variance() - 1.25).abs() < 1e-12);
        assert!((t.imbalance() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn tally_empty_and_single() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.imbalance(), 1.0);
        let mut t = Tally::new();
        t.add(7.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.mean(), 7.0);
    }

    #[test]
    fn tally_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        whole.extend(xs.iter().copied());
        let mut a = Tally::new();
        a.extend(xs[..37].iter().copied());
        let mut b = Tally::new();
        b.extend(xs[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn tally_merge_with_empty() {
        let mut a = Tally::new();
        a.add(3.0);
        let b = Tally::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Tally::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn percentiles() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 0.0), 1);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&s, 50.0), 51); // nearest rank on 0..99
    }

    #[test]
    fn imbalance_factors() {
        assert_eq!(imbalance_factor(&[5, 5, 5, 5]), 1.0);
        assert_eq!(imbalance_factor(&[10, 0, 0, 0]), 4.0);
        assert_eq!(imbalance_factor(&[]), 1.0);
        assert_eq!(imbalance_factor(&[0, 0]), 1.0);
    }

    #[test]
    fn rank_ordering() {
        assert_eq!(rank_order(&[3, 9, 1]), vec![9, 3, 1]);
    }
}
