//! Wire-corruption soak harness: sustained byte-level frame damage
//! against one continuous aggregation, scored end to end.
//!
//! The gray soak ([`crate::gray`]) injects *timing* pathologies; this
//! harness injects *byte* pathologies ([`crate::FaultEvent::CorruptLink`])
//! and scores the full detection → containment → recovery pipeline:
//!
//! * **No silent wrong answers.** Every node contributes the same local
//!   value, so a correct root report satisfies
//!   `sum == contributors × value` (and `min == max == value`) exactly.
//!   A single undetected corrupted partial folded into the tree breaks
//!   the identity — any deviating report is a violation.
//! * **Detection is total.** Every mutated frame is either rejected by
//!   the codec (surfacing as a `BadFrame` and counted in
//!   `bad_frames_total`) or decodes to a valid frame; nothing panics.
//! * **Degradation is visible and heals.** Completeness dips below 1.0
//!   while a tree link is being jammed, and returns to full coverage in
//!   the quiesce tail.
//! * **Poisoned peers are quarantined — and released.** A sustained
//!   corruption burst on one link must walk the victim through bad-frame
//!   scoring → suspicion → flap-damping quarantine, and the quarantined
//!   peer must rejoin once the wire is clean again.
//!
//! Every run is fully determined by [`CorruptConfig::seed`]; violations
//! embed the seed so a failing assert prints its own replay handle.

#![deny(clippy::unwrap_used)]

use dat_chord::{ChordConfig, HealthConfig, Id, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use dat_core::tree::DatTree;
use dat_core::{AggregationMode, DatConfig, DatEvent, StackNode};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fault::{CorruptMode, FaultPlan};
use crate::harness::{addr_book, prestabilized_dat};
use crate::net::SimNet;
use crate::soak::SoakReport;

/// The attribute every node registers and feeds.
pub const CORRUPT_ATTR: &str = "cpu-usage";

/// The local value every node contributes — the exactness invariant is
/// `sum == contributors × CORRUPT_VALUE` at the root.
pub const CORRUPT_VALUE: f64 = 10.0;

/// Parameters of one corruption soak run.
#[derive(Clone, Copy, Debug)]
pub struct CorruptConfig {
    /// Ring size.
    pub nodes: usize,
    /// Identifier-space width (bits).
    pub space_bits: u8,
    /// Seed for ring construction, the transport, and every mutation coin.
    pub seed: u64,
    /// Aggregation epoch length, ms.
    pub epoch_ms: u64,
    /// Fault-free head (ring warms up, detector learns its baselines).
    pub warmup_ms: u64,
    /// Length of the jam and poison episodes, ms.
    pub episode_ms: u64,
    /// Fault-free tail (quarantine expiry, rejoin and healing land here).
    pub quiesce_ms: u64,
    /// Background corruption probability on tree links for the whole
    /// fault window (the "hostile wire" noise floor, 1–5%).
    pub noise_prob: f64,
    /// Heavy corruption probability for the jam and poison episodes.
    pub burst_prob: f64,
}

impl Default for CorruptConfig {
    fn default() -> Self {
        CorruptConfig {
            nodes: 24,
            space_bits: 32,
            seed: 1,
            epoch_ms: 5_000,
            warmup_ms: 40_000,
            episode_ms: 45_000,
            quiesce_ms: 90_000,
            noise_prob: 0.03,
            burst_prob: 0.9,
        }
    }
}

impl CorruptConfig {
    /// Episode schedule: `(noise_at, jam_at, poison_at, faults_end)`.
    /// Noise spans the whole fault window; jam and poison run
    /// back-to-back inside it.
    fn schedule(&self) -> (u64, u64, u64, u64) {
        let noise_at = self.warmup_ms;
        let jam_at = self.warmup_ms;
        let poison_at = jam_at + self.episode_ms;
        let faults_end = poison_at + self.episode_ms;
        (noise_at, jam_at, poison_at, faults_end)
    }

    /// Total virtual run length, ms.
    pub fn total_ms(&self) -> u64 {
        self.schedule().3 + self.quiesce_ms
    }
}

/// Everything a corruption run measured. `violations` embeds the seed, so
/// asserting emptiness prints the replay handle for free.
#[derive(Clone, Debug)]
pub struct CorruptOutcome {
    /// The seed that produced this run.
    pub seed: u64,
    /// Digest of the generated fault schedule.
    pub digest: u64,
    /// Virtual run length, ms.
    pub sim_ms: u64,
    /// Discrete events the simulator processed.
    pub events_processed: u64,
    /// Every root report observed, in drain order.
    pub log: Vec<SoakReport>,
    /// Invariant breaches (empty for a healthy run).
    pub violations: Vec<String>,
    /// Frames actually mutated by the episodes.
    pub injected: u64,
    /// Mutated frames the codec rejected (delivered as `BadFrame`s).
    pub rejected: u64,
    /// Mutated frames that still decoded.
    pub passed: u64,
    /// Lowest coverage ratio while faults were live.
    pub min_ratio_during_faults: f64,
    /// Coverage ratio of the final report.
    pub final_ratio: f64,
    /// Fleet-wide undecodable frames, summed over every error kind.
    pub fleet_bad_frames: u64,
    /// Fleet-wide bad-frame threshold trips (scoring → suspicion).
    pub fleet_bad_frame_suspects: u64,
    /// Fleet-wide flap-damping quarantines.
    pub fleet_quarantines: u64,
    /// Fleet-wide quarantine → Healthy rejoins.
    pub fleet_rejoins: u64,
}

/// Run one corruption soak: pre-stabilized ring, deterministic victim
/// selection from the implicit DAT, noise + jam + poison episodes,
/// scored tail.
pub fn run_corrupt(cfg: &CorruptConfig) -> CorruptOutcome {
    let space = IdSpace::new(cfg.space_bits);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let ring = StaticRing::build(space, cfg.nodes, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 2_500,
        fix_fingers_ms: 1_000,
        check_pred_ms: 2_000,
        req_timeout_ms: 1_200,
        rto_max_ms: 4_000,
        max_retries: 1,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: cfg.epoch_ms,
        hold_ms: 500,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net: SimNet<StackNode> = prestabilized_dat(&ring, ccfg, dcfg, cfg.seed);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    let key = dat_chord::hash_to_id(space, CORRUPT_ATTR.as_bytes());
    // Quarantine short enough that release and rejoin land inside the
    // quiesce tail; flap window wide enough to collect the poison
    // episode's repeated threshold trips.
    let hcfg = HealthConfig {
        quarantine_ms: 25_000,
        flap_window_ms: 60_000,
        flap_threshold: 3,
        ..HealthConfig::default()
    };
    for &id in ring.ids() {
        if let Some(node) = net.node_mut(book[&id]) {
            let k = node.register(CORRUPT_ATTR, AggregationMode::Continuous);
            node.set_local(k, CORRUPT_VALUE);
            node.set_health_config(hcfg);
        }
    }

    // Victims from the implicit DAT, deterministically. The jam hits the
    // biggest subtree's uplink (child → parent), so destroying its update
    // frames visibly dents completeness. The poison hits a ring-neighbor
    // link *into* a victim: stabilization traffic (notify, neighbor
    // queries) flows there continuously, the victim provably knows the
    // sender, so bad-frame scoring has something to attribute and escalate.
    let tree = DatTree::build(&ring, key, RoutingScheme::Balanced);
    let root_id = tree.root();
    let mut interior: Vec<Id> = tree.interior_nodes().filter(|v| *v != root_id).collect();
    interior.sort_by_key(|v| (std::cmp::Reverse(tree.branching(*v)), v.0));
    let jam_child_id = *interior.first().unwrap_or(&ring.ids()[0]);
    let jam_child = book[&jam_child_id];
    let jam_parent = tree
        .parent(jam_child_id)
        .map(|p| book[&p])
        .unwrap_or(book[&root_id]);
    // Poison pair: the root and its ring predecessor (the predecessor
    // notifies the root every stabilization round).
    let mut sorted: Vec<Id> = ring.ids().to_vec();
    sorted.sort_by_key(|v| v.0);
    let root_pos = sorted.iter().position(|v| *v == root_id).unwrap_or(0);
    let pred_id = sorted[(root_pos + sorted.len() - 1) % sorted.len()];
    let poison_victim = book[&root_id];
    let poison_peer = book[&pred_id];

    let (noise_at, jam_at, poison_at, faults_end) = cfg.schedule();
    let noise_ms = faults_end - noise_at;
    // Noise floor: low-probability bit flips on every interior uplink
    // (capped at four links) for the whole fault window.
    let mut plan = FaultPlan::new();
    if cfg.noise_prob > 0.0 {
        for child in interior.iter().take(4) {
            let parent = tree
                .parent(*child)
                .map(|p| book[&p])
                .unwrap_or(book[&root_id]);
            plan = plan.corrupt_link_at(
                noise_at,
                book[child],
                parent,
                cfg.noise_prob,
                CorruptMode::BitFlip,
                noise_ms,
            );
        }
    }
    plan = plan
        // Jam: heavy garbage on the biggest subtree's uplink. Update
        // frames are destroyed (and detected), the cached child partial
        // ages out, completeness dips — then heals after expiry.
        .corrupt_link_at(
            jam_at,
            jam_child,
            jam_parent,
            cfg.burst_prob,
            CorruptMode::Garbage,
            cfg.episode_ms,
        )
        // Poison: heavy corruption on the predecessor → root link,
        // alternating mutation shapes across the episode via truncation.
        // Surviving ~10% of frames keeps heartbeats trickling through, so
        // the victim oscillates Suspect → recover — exactly the flap
        // pattern quarantine exists for.
        .corrupt_link_at(
            poison_at,
            poison_peer,
            poison_victim,
            cfg.burst_prob,
            CorruptMode::Truncate,
            cfg.episode_ms,
        );
    let digest = plan.digest();
    net.set_fault_plan(plan);

    // Drive in half-epoch steps, draining every node's reports.
    let total = cfg.total_ms();
    let step = (cfg.epoch_ms / 2).max(1);
    let mut log: Vec<SoakReport> = Vec::new();
    let mut exact = 0u64;
    let mut wrong: Vec<String> = Vec::new();
    let cached_addrs = net.addrs();
    while net.now().as_millis() < total {
        let now = net.now().as_millis();
        net.run_for(step.min(total - now));
        let t = net.now().as_millis();
        for &addr in &cached_addrs {
            let Some(node) = net.node_mut(addr) else {
                continue;
            };
            for ev in node.take_events() {
                if let DatEvent::Report {
                    key: k,
                    epoch,
                    partial,
                    completeness,
                } = ev
                {
                    if k != key {
                        continue;
                    }
                    // Exactness: every contributor reported the same
                    // constant, so any deviation means corrupted bytes
                    // were folded into the aggregate undetected.
                    let want = completeness.contributors as f64 * CORRUPT_VALUE;
                    let sum_ok = (partial.sum - want).abs() < 1e-9;
                    let range_ok = partial.count == 0
                        || (partial.min == CORRUPT_VALUE && partial.max == CORRUPT_VALUE);
                    if sum_ok && range_ok {
                        exact += 1;
                    } else if wrong.len() < 8 {
                        wrong.push(format!(
                            "seed {}: SILENTLY WRONG report at {t} ms (epoch {epoch}): \
                             sum {} for {} contributors (want {want}), min {} max {}",
                            cfg.seed,
                            partial.sum,
                            completeness.contributors,
                            partial.min,
                            partial.max
                        ));
                    }
                    log.push(SoakReport {
                        t_ms: t,
                        addr,
                        epoch,
                        completeness,
                    });
                }
            }
        }
    }

    let fleet = crate::obs::fleet_registry(&net);
    let fleet_bad_frames = fleet.counter_sum("bad_frames_total");
    let fleet_bad_frame_suspects = fleet.counter_sum("bad_frame_suspects_total");
    let fleet_quarantines = fleet.counter_sum("quarantines_total");
    let fleet_rejoins = fleet.counter_sum("rejoins_total");
    let stats = net.corruption;

    let seed = cfg.seed;
    let n = cfg.nodes as u64;
    let mut violations = wrong;

    // The attack actually ran, and detection accounted for every frame.
    if stats.injected == 0 {
        violations.push(format!("seed {seed}: no frames were ever corrupted"));
    }
    if stats.rejected + stats.passed != stats.injected {
        violations.push(format!(
            "seed {seed}: corruption accounting leak — {} injected but {} rejected + {} passed",
            stats.injected, stats.rejected, stats.passed
        ));
    }
    if stats.rejected == 0 {
        violations.push(format!(
            "seed {seed}: every mutated frame decoded — the checksum caught nothing"
        ));
    }
    if fleet_bad_frames == 0 {
        violations.push(format!(
            "seed {seed}: rejected frames never reached the engine's bad-frame accounting"
        ));
    }

    // Containment: scoring escalated, quarantine fired, and released.
    if fleet_bad_frame_suspects == 0 {
        violations.push(format!(
            "seed {seed}: bad-frame scoring never crossed its threshold"
        ));
    }
    if fleet_quarantines == 0 {
        violations.push(format!(
            "seed {seed}: the poisoned peer was never quarantined"
        ));
    }
    if fleet_rejoins == 0 {
        violations.push(format!(
            "seed {seed}: no quarantined peer rejoined after the wire cleaned up"
        ));
    }

    // Reports kept flowing throughout.
    let after_warmup: Vec<&SoakReport> = log.iter().filter(|r| r.t_ms >= cfg.warmup_ms).collect();
    if after_warmup.len() < 2 {
        violations.push(format!("seed {seed}: too few reports after warmup"));
    }

    // Degradation visible while the jam was live…
    let min_ratio_during_faults = log
        .iter()
        .filter(|r| r.t_ms >= jam_at && r.t_ms < faults_end)
        .map(|r| r.completeness.ratio)
        .fold(f64::INFINITY, f64::min);
    if min_ratio_during_faults >= 1.0 {
        violations.push(format!(
            "seed {seed}: completeness never dipped below 1.0 — jamming the biggest \
             subtree's uplink was invisible"
        ));
    }
    // …and fully healed by the end of the quiesce tail.
    let final_ratio = log.last().map(|r| r.completeness.ratio).unwrap_or(0.0);
    let healed = log
        .iter()
        .any(|r| r.t_ms >= faults_end && r.completeness.contributors >= n);
    if !healed {
        violations.push(format!(
            "seed {seed}: completeness never returned to full coverage after the \
             corruption ended at {faults_end} ms"
        ));
    }

    // The victim's exposition carries the new counters as valid text.
    match net.node(poison_victim) {
        Some(node) => {
            let text = node.render_prometheus();
            for series in ["bad_frames_total", "bad_frame_suspects_total"] {
                if !text.contains(series) {
                    violations.push(format!(
                        "seed {seed}: `{series}` missing from the Prometheus exposition"
                    ));
                }
            }
            if let Err(e) = dat_obs::validate_prometheus(&text) {
                violations.push(format!("seed {seed}: invalid Prometheus exposition: {e}"));
            }
        }
        None => violations.push(format!("seed {seed}: poison victim vanished")),
    }

    let _ = exact;
    CorruptOutcome {
        seed,
        digest,
        sim_ms: total,
        events_processed: net.events_processed(),
        log,
        violations,
        injected: stats.injected,
        rejected: stats.rejected,
        passed: stats.passed,
        min_ratio_during_faults,
        final_ratio,
        fleet_bad_frames,
        fleet_bad_frame_suspects,
        fleet_quarantines,
        fleet_rejoins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_ordered_and_bounded() {
        let cfg = CorruptConfig::default();
        let (noise, jam, poison, end) = cfg.schedule();
        assert_eq!(noise, cfg.warmup_ms);
        assert_eq!(jam, cfg.warmup_ms);
        assert!(jam < poison && poison < end);
        assert_eq!(cfg.total_ms(), end + cfg.quiesce_ms);
    }

    /// Two identically-seeded runs must inject the identical schedule,
    /// mutate the identical frames, and observe the identical report log.
    /// (Full invariant runs live in tests/corruption_soak.rs.)
    #[test]
    fn corrupt_run_is_seed_replayable() {
        let cfg = CorruptConfig {
            nodes: 12,
            warmup_ms: 20_000,
            episode_ms: 20_000,
            quiesce_ms: 30_000,
            seed: 7,
            ..CorruptConfig::default()
        };
        let a = run_corrupt(&cfg);
        let b = run_corrupt(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(
            (a.injected, a.rejected, a.passed),
            (b.injected, b.rejected, b.passed)
        );
        assert_eq!(a.log.len(), b.log.len());
        for (x, y) in a.log.iter().zip(&b.log) {
            assert_eq!((x.t_ms, x.addr, x.epoch), (y.t_ms, y.addr, y.epoch));
            assert_eq!(x.completeness.contributors, y.completeness.contributors);
        }
        assert!(a.injected > 0, "short run still injects corruption");
    }
}
