//! Network latency and loss models.
//!
//! The paper's testbed is an 8-node gigabit cluster (sub-millisecond RTTs);
//! its future work points at PlanetLab-scale WANs. We model both: constant
//! LAN latency, uniform jitter, and a heavy-tailed log-normal WAN model
//! (the standard fit for wide-area RTT distributions), plus i.i.d. packet
//! loss for fault injection.

use rand::Rng;

/// One-way message latency distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Fixed latency — the cluster/LAN setting of §5.1.
    Constant(u64),
    /// Uniform in `[lo, hi]` milliseconds.
    Uniform {
        /// Lower bound (ms).
        lo: u64,
        /// Upper bound (ms), inclusive.
        hi: u64,
    },
    /// Log-normal with the given median (ms) and shape `sigma` — a standard
    /// WAN RTT model. Samples are capped at `20 × median` to keep simulated
    /// tail events finite.
    LogNormal {
        /// Median latency in ms.
        median_ms: f64,
        /// Shape parameter (σ of the underlying normal).
        sigma: f64,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Constant(1)
    }
}

impl LatencyModel {
    /// Draw a one-way latency in milliseconds (at least 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            LatencyModel::Constant(ms) => ms.max(1),
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency bounds inverted");
                rng.random_range(lo..=hi).max(1)
            }
            LatencyModel::LogNormal { median_ms, sigma } => {
                assert!(median_ms > 0.0 && sigma >= 0.0);
                // Box-Muller for a standard normal, then exponentiate:
                // X = median * exp(sigma * Z).
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let x = median_ms * (sigma * z).exp();
                let capped = x.min(20.0 * median_ms);
                (capped.round() as u64).max(1)
            }
        }
    }

    /// The smallest latency [`LatencyModel::sample`] can ever return — the
    /// conservative lookahead bound of the sharded engine: no send issued
    /// at or after time `t` can be delivered before `t + min_ms()`, so a
    /// shard may safely execute the window `[t, t + min_ms())` without
    /// seeing its peers' sends from that window. Always ≥ 1 because
    /// `sample` clamps (events must advance time).
    pub fn min_ms(&self) -> u64 {
        match *self {
            LatencyModel::Constant(ms) => ms.max(1),
            LatencyModel::Uniform { lo, .. } => lo.max(1),
            // The normal tail is unbounded below; only the ≥ 1 clamp holds.
            LatencyModel::LogNormal { .. } => 1,
        }
    }
}

/// Independent per-message loss.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct LossModel {
    /// Probability in `[0, 1]` that any message is silently dropped.
    pub drop_prob: f64,
}

impl LossModel {
    /// No loss.
    pub const NONE: LossModel = LossModel { drop_prob: 0.0 };

    /// Create a loss model, clamping the probability into `[0, 1]`.
    pub fn new(drop_prob: f64) -> Self {
        LossModel {
            drop_prob: drop_prob.clamp(0.0, 1.0),
        }
    }

    /// Decide whether to drop one message.
    pub fn drops<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.drop_prob > 0.0 && rng.random::<f64>() < self.drop_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = SmallRng::seed_from_u64(0);
        let m = LatencyModel::Constant(5);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), 5);
        }
        // Zero is clamped to 1 (events must advance time).
        assert_eq!(LatencyModel::Constant(0).sample(&mut rng), 1);
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = LatencyModel::Uniform { lo: 10, hi: 20 };
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!((10..=20).contains(&s));
        }
    }

    #[test]
    fn lognormal_median_roughly_right() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = LatencyModel::LogNormal {
            median_ms: 80.0,
            sigma: 0.5,
        };
        let mut samples: Vec<u64> = (0..4001).map(|_| m.sample(&mut rng)).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        assert!(
            (60..=100).contains(&median),
            "median {median} too far from 80"
        );
        // Tail capped.
        assert!(*samples.last().unwrap() <= 1600);
    }

    #[test]
    fn min_ms_is_a_true_lower_bound() {
        let mut rng = SmallRng::seed_from_u64(7);
        let models = [
            LatencyModel::Constant(0),
            LatencyModel::Constant(5),
            LatencyModel::Uniform { lo: 0, hi: 3 },
            LatencyModel::Uniform { lo: 10, hi: 20 },
            LatencyModel::LogNormal {
                median_ms: 80.0,
                sigma: 0.5,
            },
        ];
        for m in models {
            let bound = m.min_ms();
            assert!(bound >= 1, "{m:?}: lookahead must advance time");
            for _ in 0..2_000 {
                assert!(m.sample(&mut rng) >= bound, "{m:?} sampled below min_ms");
            }
        }
    }

    #[test]
    fn loss_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!LossModel::NONE.drops(&mut rng));
        let always = LossModel::new(1.0);
        for _ in 0..100 {
            assert!(always.drops(&mut rng));
        }
        // Clamping.
        assert_eq!(LossModel::new(7.0).drop_prob, 1.0);
        assert_eq!(LossModel::new(-1.0).drop_prob, 0.0);
    }

    #[test]
    fn loss_rate_statistical() {
        let mut rng = SmallRng::seed_from_u64(4);
        let m = LossModel::new(0.3);
        let dropped = (0..10_000).filter(|_| m.drops(&mut rng)).count();
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }
}
