//! Wire codec for Chord messages over UDP datagrams.
//!
//! The actual codec lives in [`dat_chord::codec`], next to the message type
//! it frames, so the simulator's zero-copy parity mode can round-trip the
//! same encoding without depending on the transport crate. This module
//! re-exports it under the historical `dat_rpc::codec` path; every datagram
//! carries one [`dat_chord::ChordMsg`] framed exactly as before.

pub use dat_chord::codec::{decode, encode, CodecError, MAGIC, MAX_FRAME, VERSION};
