//! Wire codec for Chord messages over UDP datagrams.
//!
//! The paper's prototype implements "a RPC manager module … at the
//! socket-level to send and receive UDP packets" (§4). Every datagram
//! carries one [`ChordMsg`]: a magic byte, a format version, a message tag
//! and fixed-order little-endian fields. DAT-layer payloads (already
//! encoded by `dat-core`'s codec) ride opaquely inside `App`, `Route` and
//! `Broadcast` frames.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dat_chord::{ChordMsg, Id, NodeAddr, NodeRef};

/// First byte of every valid datagram.
pub const MAGIC: u8 = 0xD7;
/// Wire-format version.
pub const VERSION: u8 = 1;
/// Maximum accepted datagram payload (defensive bound).
pub const MAX_FRAME: usize = 64 * 1024;

/// Frame decoding errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Too short / field missing.
    Truncated,
    /// First byte is not [`MAGIC`].
    BadMagic(u8),
    /// Unsupported version.
    BadVersion(u8),
    /// Unknown message tag.
    BadTag(u8),
    /// Length field out of bounds.
    BadLength(u64),
    /// Bytes left over after a full message.
    TrailingBytes(usize),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic(b) => write!(f, "bad magic byte {b:#x}"),
            FrameError::BadVersion(v) => write!(f, "unsupported version {v}"),
            FrameError::BadTag(t) => write!(f, "unknown tag {t}"),
            FrameError::BadLength(l) => write!(f, "implausible length {l}"),
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for FrameError {}

fn put_node_ref(buf: &mut BytesMut, n: NodeRef) {
    buf.put_u64_le(n.id.raw());
    buf.put_u64_le(n.addr.0);
}

fn put_opt_node_ref(buf: &mut BytesMut, n: Option<NodeRef>) {
    match n {
        Some(n) => {
            buf.put_u8(1);
            put_node_ref(buf, n);
        }
        None => buf.put_u8(0),
    }
}

fn put_node_list(buf: &mut BytesMut, list: &[NodeRef]) {
    buf.put_u16_le(list.len() as u16);
    for &n in list {
        put_node_ref(buf, n);
    }
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn need(buf: &Bytes, n: usize) -> Result<(), FrameError> {
    if buf.remaining() < n {
        Err(FrameError::Truncated)
    } else {
        Ok(())
    }
}

fn get_node_ref(buf: &mut Bytes) -> Result<NodeRef, FrameError> {
    need(buf, 16)?;
    let id = Id(buf.get_u64_le());
    let addr = NodeAddr(buf.get_u64_le());
    Ok(NodeRef::new(id, addr))
}

fn get_opt_node_ref(buf: &mut Bytes) -> Result<Option<NodeRef>, FrameError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => Ok(None),
        _ => Ok(Some(get_node_ref(buf)?)),
    }
}

fn get_node_list(buf: &mut Bytes) -> Result<Vec<NodeRef>, FrameError> {
    need(buf, 2)?;
    let n = buf.get_u16_le() as usize;
    if n > 4096 {
        return Err(FrameError::BadLength(n as u64));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_node_ref(buf)?);
    }
    Ok(out)
}

fn get_bytes(buf: &mut Bytes) -> Result<Vec<u8>, FrameError> {
    need(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    if n > MAX_FRAME {
        return Err(FrameError::BadLength(n as u64));
    }
    need(buf, n)?;
    let mut v = vec![0u8; n];
    buf.copy_to_slice(&mut v);
    Ok(v)
}

fn get_u32(buf: &mut Bytes) -> Result<u32, FrameError> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, FrameError> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn get_u8(buf: &mut Bytes) -> Result<u8, FrameError> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_id(buf: &mut Bytes) -> Result<Id, FrameError> {
    Ok(Id(get_u64(buf)?))
}

/// Encode one message into a datagram payload.
pub fn encode(msg: &ChordMsg) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(MAGIC);
    buf.put_u8(VERSION);
    match msg {
        ChordMsg::FindSuccessor {
            req,
            key,
            origin,
            hops,
        } => {
            buf.put_u8(1);
            buf.put_u64_le(*req);
            buf.put_u64_le(key.raw());
            put_node_ref(&mut buf, *origin);
            buf.put_u32_le(*hops);
        }
        ChordMsg::FoundSuccessor {
            req,
            owner,
            owner_pred,
            owner_succ,
            hops,
        } => {
            buf.put_u8(2);
            buf.put_u64_le(*req);
            put_node_ref(&mut buf, *owner);
            put_opt_node_ref(&mut buf, *owner_pred);
            put_opt_node_ref(&mut buf, *owner_succ);
            buf.put_u32_le(*hops);
        }
        ChordMsg::GetNeighbors { req, sender } => {
            buf.put_u8(3);
            buf.put_u64_le(*req);
            put_node_ref(&mut buf, *sender);
        }
        ChordMsg::Neighbors {
            req,
            me,
            pred,
            succ_list,
        } => {
            buf.put_u8(4);
            buf.put_u64_le(*req);
            put_node_ref(&mut buf, *me);
            put_opt_node_ref(&mut buf, *pred);
            put_node_list(&mut buf, succ_list);
        }
        ChordMsg::Notify { sender } => {
            buf.put_u8(5);
            put_node_ref(&mut buf, *sender);
        }
        ChordMsg::Ping { req, sender } => {
            buf.put_u8(6);
            buf.put_u64_le(*req);
            put_node_ref(&mut buf, *sender);
        }
        ChordMsg::Pong { req, sender } => {
            buf.put_u8(7);
            buf.put_u64_le(*req);
            put_node_ref(&mut buf, *sender);
        }
        ChordMsg::ProbeJoin { req, origin } => {
            buf.put_u8(8);
            buf.put_u64_le(*req);
            put_node_ref(&mut buf, *origin);
        }
        ChordMsg::ProbeJoinReply { req, designated } => {
            buf.put_u8(9);
            buf.put_u64_le(*req);
            buf.put_u64_le(designated.raw());
        }
        ChordMsg::LeaveToPred { leaver, succ_list } => {
            buf.put_u8(10);
            put_node_ref(&mut buf, *leaver);
            put_node_list(&mut buf, succ_list);
        }
        ChordMsg::LeaveToSucc { leaver, pred } => {
            buf.put_u8(11);
            put_node_ref(&mut buf, *leaver);
            put_opt_node_ref(&mut buf, *pred);
        }
        ChordMsg::Route {
            key,
            payload,
            origin,
            hops,
        } => {
            buf.put_u8(12);
            buf.put_u64_le(key.raw());
            put_bytes(&mut buf, payload);
            put_node_ref(&mut buf, *origin);
            buf.put_u32_le(*hops);
        }
        ChordMsg::App {
            proto,
            from,
            payload,
        } => {
            buf.put_u8(13);
            buf.put_u8(*proto);
            put_node_ref(&mut buf, *from);
            put_bytes(&mut buf, payload);
        }
        ChordMsg::Broadcast {
            limit,
            payload,
            origin,
            depth,
        } => {
            buf.put_u8(14);
            buf.put_u64_le(limit.raw());
            put_bytes(&mut buf, payload);
            put_node_ref(&mut buf, *origin);
            buf.put_u32_le(*depth);
        }
    }
    buf.to_vec()
}

/// Decode a datagram payload into a message.
pub fn decode(data: &[u8]) -> Result<ChordMsg, FrameError> {
    if data.len() > MAX_FRAME {
        return Err(FrameError::BadLength(data.len() as u64));
    }
    let mut buf = Bytes::copy_from_slice(data);
    let magic = get_u8(&mut buf)?;
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let ver = get_u8(&mut buf)?;
    if ver != VERSION {
        return Err(FrameError::BadVersion(ver));
    }
    let tag = get_u8(&mut buf)?;
    let msg = match tag {
        1 => ChordMsg::FindSuccessor {
            req: get_u64(&mut buf)?,
            key: get_id(&mut buf)?,
            origin: get_node_ref(&mut buf)?,
            hops: get_u32(&mut buf)?,
        },
        2 => ChordMsg::FoundSuccessor {
            req: get_u64(&mut buf)?,
            owner: get_node_ref(&mut buf)?,
            owner_pred: get_opt_node_ref(&mut buf)?,
            owner_succ: get_opt_node_ref(&mut buf)?,
            hops: get_u32(&mut buf)?,
        },
        3 => ChordMsg::GetNeighbors {
            req: get_u64(&mut buf)?,
            sender: get_node_ref(&mut buf)?,
        },
        4 => ChordMsg::Neighbors {
            req: get_u64(&mut buf)?,
            me: get_node_ref(&mut buf)?,
            pred: get_opt_node_ref(&mut buf)?,
            succ_list: get_node_list(&mut buf)?,
        },
        5 => ChordMsg::Notify {
            sender: get_node_ref(&mut buf)?,
        },
        6 => ChordMsg::Ping {
            req: get_u64(&mut buf)?,
            sender: get_node_ref(&mut buf)?,
        },
        7 => ChordMsg::Pong {
            req: get_u64(&mut buf)?,
            sender: get_node_ref(&mut buf)?,
        },
        8 => ChordMsg::ProbeJoin {
            req: get_u64(&mut buf)?,
            origin: get_node_ref(&mut buf)?,
        },
        9 => ChordMsg::ProbeJoinReply {
            req: get_u64(&mut buf)?,
            designated: get_id(&mut buf)?,
        },
        10 => ChordMsg::LeaveToPred {
            leaver: get_node_ref(&mut buf)?,
            succ_list: get_node_list(&mut buf)?,
        },
        11 => ChordMsg::LeaveToSucc {
            leaver: get_node_ref(&mut buf)?,
            pred: get_opt_node_ref(&mut buf)?,
        },
        12 => ChordMsg::Route {
            key: get_id(&mut buf)?,
            payload: get_bytes(&mut buf)?,
            origin: get_node_ref(&mut buf)?,
            hops: get_u32(&mut buf)?,
        },
        13 => ChordMsg::App {
            proto: get_u8(&mut buf)?,
            from: get_node_ref(&mut buf)?,
            payload: get_bytes(&mut buf)?,
        },
        14 => ChordMsg::Broadcast {
            limit: get_id(&mut buf)?,
            payload: get_bytes(&mut buf)?,
            origin: get_node_ref(&mut buf)?,
            depth: get_u32(&mut buf)?,
        },
        t => return Err(FrameError::BadTag(t)),
    };
    if buf.remaining() != 0 {
        return Err(FrameError::TrailingBytes(buf.remaining()));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nr(id: u64) -> NodeRef {
        NodeRef::new(Id(id), NodeAddr(id * 3))
    }

    fn all_messages() -> Vec<ChordMsg> {
        vec![
            ChordMsg::FindSuccessor {
                req: 1,
                key: Id(u64::MAX),
                origin: nr(2),
                hops: 3,
            },
            ChordMsg::FoundSuccessor {
                req: 4,
                owner: nr(5),
                owner_pred: Some(nr(6)),
                owner_succ: None,
                hops: 7,
            },
            ChordMsg::GetNeighbors {
                req: 8,
                sender: nr(9),
            },
            ChordMsg::Neighbors {
                req: 10,
                me: nr(11),
                pred: None,
                succ_list: vec![nr(12), nr(13), nr(14)],
            },
            ChordMsg::Notify { sender: nr(15) },
            ChordMsg::Ping {
                req: 16,
                sender: nr(17),
            },
            ChordMsg::Pong {
                req: 18,
                sender: nr(19),
            },
            ChordMsg::ProbeJoin {
                req: 20,
                origin: nr(21),
            },
            ChordMsg::ProbeJoinReply {
                req: 22,
                designated: Id(23),
            },
            ChordMsg::LeaveToPred {
                leaver: nr(24),
                succ_list: vec![],
            },
            ChordMsg::LeaveToSucc {
                leaver: nr(25),
                pred: Some(nr(26)),
            },
            ChordMsg::Route {
                key: Id(27),
                payload: vec![1, 2, 3, 4, 5],
                origin: nr(28),
                hops: 29,
            },
            ChordMsg::App {
                proto: 1,
                from: nr(30),
                payload: vec![0; 1000],
            },
            ChordMsg::Broadcast {
                limit: Id(31),
                payload: vec![9, 9],
                origin: nr(32),
                depth: 33,
            },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for m in all_messages() {
            let bytes = encode(&m);
            assert_eq!(decode(&bytes).unwrap(), m, "{:?}", m.kind());
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        for m in all_messages() {
            let bytes = encode(&m);
            for cut in 0..bytes.len() {
                assert!(
                    decode(&bytes[..cut]).is_err(),
                    "{} decoded from {cut}-byte prefix",
                    m.kind()
                );
            }
        }
    }

    #[test]
    fn bad_magic_version_tag() {
        assert_eq!(decode(&[0x00, VERSION, 1]), Err(FrameError::BadMagic(0)));
        assert_eq!(decode(&[MAGIC, 99, 1]), Err(FrameError::BadVersion(99)));
        assert_eq!(decode(&[MAGIC, VERSION, 200]), Err(FrameError::BadTag(200)));
        assert_eq!(decode(&[]), Err(FrameError::Truncated));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&ChordMsg::Notify { sender: nr(1) });
        bytes.extend_from_slice(&[0xAA, 0xBB]);
        assert_eq!(decode(&bytes), Err(FrameError::TrailingBytes(2)));
    }

    #[test]
    fn hostile_lengths_rejected() {
        // Neighbors with an absurd successor-list length.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(4);
        buf.put_u64_le(1);
        put_node_ref(&mut buf, nr(1));
        buf.put_u8(0);
        buf.put_u16_le(u16::MAX);
        assert_eq!(
            decode(&buf.to_vec()),
            Err(FrameError::BadLength(u16::MAX as u64))
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(decode(&huge), Err(FrameError::BadLength(_))));
    }
}
