//! Multi-node UDP runtime hosting sans-io protocol nodes.
//!
//! Each node gets a real `UdpSocket` on the loopback interface, a worker
//! thread that drives its state machine, and a receiver thread that decodes
//! inbound datagrams; one shared timer thread services every node's timer
//! requests. This is the Rust analogue of the paper's RPC manager (§4) —
//! the prototype ran "up to 64 DAT instances on each machine to create a
//! network of 512 nodes"; we run the instances in one process with one
//! socket each, which exercises the identical code path (real datagrams,
//! real loss possible, real wall-clock timers).

use std::collections::{BinaryHeap, HashMap};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Sender};
use dat_chord::wire::ERROR_KINDS;
use dat_chord::{Actor, Input, NodeAddr, Output, TimerKind, Upcall};
use parking_lot::Mutex;

use crate::codec;

/// Number of distinct decode-failure kinds the transport classifies
/// (one counter slot per [`dat_chord::wire::ERROR_KINDS`] label).
const KINDS: usize = ERROR_KINDS.len();

/// Runtime knobs for [`RpcCluster`] — everything that used to be a magic
/// constant in the transport loops.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// How long one [`RpcCluster::call`] wait round lasts before the next
    /// retry round (the control channel is reliable, so a round only
    /// expires when the worker is genuinely backed up).
    pub call_timeout: Duration,
    /// Extra wait rounds `call` spends after the first before giving up.
    pub call_retries: u32,
    /// Receive-loop poll interval: how often a receiver thread wakes to
    /// check for shutdown when no datagrams arrive.
    pub socket_poll: Duration,
    /// Upper bound on how long the shared timer thread sleeps, which caps
    /// how late a timer can fire.
    pub timer_granularity: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            call_timeout: Duration::from_secs(10),
            call_retries: 0,
            socket_poll: Duration::from_millis(100),
            timer_granularity: Duration::from_millis(50),
        }
    }
}

type WithFn<A> = Box<dyn FnOnce(&mut A) -> Vec<Output> + Send>;

enum Control<A> {
    Input(Input),
    With(WithFn<A>),
    Stop,
}

struct TimerReq {
    deadline: Instant,
    node: NodeAddr,
    kind: TimerKind,
    seq: u64,
}

impl PartialEq for TimerReq {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerReq {}
impl PartialOrd for TimerReq {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerReq {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by deadline.
        (other.deadline, other.seq).cmp(&(self.deadline, self.seq))
    }
}

/// Transport counters for the whole cluster.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterStats {
    /// Datagrams sent.
    pub sent: u64,
    /// Datagrams received and decoded.
    pub received: u64,
    /// Datagrams that failed to decode.
    pub decode_errors: u64,
    /// `decode_errors` broken down by failure kind, indexed like
    /// [`dat_chord::wire::ERROR_KINDS`].
    pub decode_errors_by_kind: [u64; KINDS],
    /// `recv_from` socket errors (other than the poll timeout).
    pub socket_recv_errors: u64,
    /// `send_to` socket errors.
    pub socket_send_errors: u64,
}

impl ClusterStats {
    /// The per-kind decode-error tallies paired with their wire labels,
    /// ready for logging or metric export.
    pub fn decode_error_kinds(&self) -> [(&'static str, u64); KINDS] {
        let mut out = [("", 0u64); KINDS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (ERROR_KINDS[i], self.decode_errors_by_kind[i]);
        }
        out
    }
}

/// A running cluster of UDP-backed protocol nodes.
pub struct RpcCluster<A: Actor> {
    inboxes: HashMap<NodeAddr, Sender<Control<A>>>,
    workers: Vec<JoinHandle<A>>,
    receivers: Vec<JoinHandle<()>>,
    timer_thread: Option<JoinHandle<()>>,
    // `Some` while running; taken (and thereby disconnected, once the
    // workers' clones are gone) during teardown so the timer thread's
    // channel wait ends immediately instead of at the next poll tick.
    timer_tx: Option<Sender<TimerReq>>,
    upcalls: Arc<Mutex<Vec<(NodeAddr, Upcall)>>>,
    shutdown: Arc<AtomicBool>,
    sent: Arc<AtomicU64>,
    received: Arc<AtomicU64>,
    decode_errors: Arc<AtomicU64>,
    decode_errors_by_kind: Arc<[AtomicU64; KINDS]>,
    socket_recv_errors: Arc<AtomicU64>,
    socket_send_errors: Arc<AtomicU64>,
    addr_book: Arc<HashMap<NodeAddr, SocketAddr>>,
    sockets: Vec<UdpSocket>,
    cfg: ClusterConfig,
}

impl<A: Actor> RpcCluster<A> {
    /// Bind sockets and spawn the runtime for `actors` with default
    /// [`ClusterConfig`]. Actor `i` must have logical address `NodeAddr(i)`.
    pub fn launch(actors: Vec<A>) -> std::io::Result<Self> {
        Self::launch_with(actors, ClusterConfig::default())
    }

    /// Like [`RpcCluster::launch`] with explicit runtime knobs.
    pub fn launch_with(actors: Vec<A>, cfg: ClusterConfig) -> std::io::Result<Self> {
        let n = actors.len();
        let mut sockets = Vec::with_capacity(n);
        let mut book = HashMap::with_capacity(n);
        for (i, a) in actors.iter().enumerate() {
            assert_eq!(
                a.addr(),
                NodeAddr(i as u64),
                "actor {i} must use NodeAddr({i})"
            );
            let sock = UdpSocket::bind(("127.0.0.1", 0))?;
            sock.set_read_timeout(Some(cfg.socket_poll))?;
            book.insert(NodeAddr(i as u64), sock.local_addr()?);
            sockets.push(sock);
        }
        // Reverse book: source socket -> logical address, so a damaged
        // frame can still be attributed to the peer that sent it (the
        // payload is untrustworthy by definition, the UDP source is the
        // best evidence available).
        let rev_book: Arc<HashMap<SocketAddr, NodeAddr>> =
            Arc::new(book.iter().map(|(&n, &s)| (s, n)).collect());
        let addr_book = Arc::new(book);
        let shutdown = Arc::new(AtomicBool::new(false));
        let upcalls = Arc::new(Mutex::new(Vec::new()));
        let sent = Arc::new(AtomicU64::new(0));
        let received = Arc::new(AtomicU64::new(0));
        let decode_errors = Arc::new(AtomicU64::new(0));
        let decode_errors_by_kind: Arc<[AtomicU64; KINDS]> =
            Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
        let socket_recv_errors = Arc::new(AtomicU64::new(0));
        let socket_send_errors = Arc::new(AtomicU64::new(0));

        let (timer_tx, timer_rx) = unbounded::<TimerReq>();
        let mut inboxes = HashMap::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        // One epoch for the whole cluster: every worker reports the same
        // monotonic clock to its actor, so cross-node RTT math is coherent.
        let epoch = Instant::now();

        for (i, actor) in actors.into_iter().enumerate() {
            let addr = NodeAddr(i as u64);
            let (tx, rx) = unbounded::<Control<A>>();
            inboxes.insert(addr, tx.clone());

            // Receiver thread: datagrams -> inbox. Every inbound frame
            // passes the full decode (magic, version, structure, CRC32C
            // trailer); a failure is classified by kind and handed to the
            // actor as `Input::BadFrame` so the engine's per-peer scoring
            // and quarantine pipeline runs over real UDP exactly as it
            // does in the simulator.
            let sock_recv = sockets[i].try_clone()?;
            let inbox = tx.clone();
            let stop = Arc::clone(&shutdown);
            let rx_count = Arc::clone(&received);
            let err_count = Arc::clone(&decode_errors);
            let err_kinds = Arc::clone(&decode_errors_by_kind);
            let recv_errs = Arc::clone(&socket_recv_errors);
            let sources = Arc::clone(&rev_book);
            receivers.push(std::thread::spawn(move || {
                let mut buf = vec![0u8; codec::MAX_FRAME];
                while !stop.load(Ordering::Relaxed) {
                    match sock_recv.recv_from(&mut buf) {
                        Ok((len, peer)) => match codec::decode(&buf[..len]) {
                            Ok(msg) => {
                                rx_count.fetch_add(1, Ordering::Relaxed);
                                // `from` is carried inside the message where
                                // needed; the transport-level from is the
                                // logical unknown here, pass a sentinel.
                                let _ = inbox.send(Control::Input(Input::Message {
                                    from: NodeAddr(u64::MAX),
                                    msg,
                                }));
                            }
                            Err(error) => {
                                err_count.fetch_add(1, Ordering::Relaxed);
                                err_kinds[error.kind_index()].fetch_add(1, Ordering::Relaxed);
                                let _ = inbox.send(Control::Input(Input::BadFrame {
                                    from: sources.get(&peer).copied(),
                                    error,
                                }));
                            }
                        },
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => {
                            recv_errs.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }));

            // Worker thread: drives the actor.
            let sock_send = sockets[i].try_clone()?;
            let book = Arc::clone(&addr_book);
            let tt = timer_tx.clone();
            let ups = Arc::clone(&upcalls);
            let tx_count = Arc::clone(&sent);
            let send_errs = Arc::clone(&socket_send_errors);
            let seq = Arc::new(AtomicU64::new(0));
            workers.push(std::thread::spawn(move || {
                let mut actor = actor;
                while let Ok(ctl) = rx.recv() {
                    actor.set_now(epoch.elapsed().as_millis() as u64);
                    let outs = match ctl {
                        Control::Input(input) => actor.on_input(input),
                        Control::With(f) => f(&mut actor),
                        Control::Stop => break,
                    };
                    for o in outs {
                        match o {
                            Output::Send { to, msg } => {
                                if let Some(peer) = book.get(&to.addr) {
                                    let frame = codec::encode(&msg);
                                    if sock_send.send_to(&frame, peer).is_ok() {
                                        tx_count.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        send_errs.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Output::SetTimer { kind, delay_ms } => {
                                let _ = tt.send(TimerReq {
                                    deadline: Instant::now() + Duration::from_millis(delay_ms),
                                    node: addr,
                                    kind,
                                    seq: seq.fetch_add(1, Ordering::Relaxed),
                                });
                            }
                            Output::Upcall(u) => ups.lock().push((addr, u)),
                        }
                    }
                }
                actor
            }));
        }

        // Timer thread: one heap services every node.
        let stop = Arc::clone(&shutdown);
        let timer_inboxes: HashMap<NodeAddr, Sender<Control<A>>> = inboxes.clone();
        let granularity = cfg.timer_granularity;
        let timer_thread = std::thread::spawn(move || {
            let mut heap: BinaryHeap<TimerReq> = BinaryHeap::new();
            while !stop.load(Ordering::Relaxed) {
                let wait = heap
                    .peek()
                    .map(|t| t.deadline.saturating_duration_since(Instant::now()))
                    .unwrap_or(granularity)
                    .min(granularity);
                match timer_rx.recv_timeout(wait) {
                    Ok(req) => heap.push(req),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
                let now = Instant::now();
                while heap.peek().is_some_and(|t| t.deadline <= now) {
                    let t = heap.pop().unwrap();
                    if let Some(inbox) = timer_inboxes.get(&t.node) {
                        let _ = inbox.send(Control::Input(Input::Timer(t.kind)));
                    }
                }
            }
        });

        Ok(RpcCluster {
            inboxes,
            workers,
            receivers,
            timer_thread: Some(timer_thread),
            timer_tx: Some(timer_tx),
            upcalls,
            shutdown,
            sent,
            received,
            decode_errors,
            decode_errors_by_kind,
            socket_recv_errors,
            socket_send_errors,
            addr_book,
            sockets,
            cfg,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// `true` when the cluster hosts no nodes.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The UDP socket address of a logical node.
    pub fn socket_addr(&self, addr: NodeAddr) -> Option<SocketAddr> {
        self.addr_book.get(&addr).copied()
    }

    /// Send raw bytes from `from`'s socket to `to`'s socket, bypassing the
    /// codec entirely — a byte-level fault-injection hook for hostile-wire
    /// tests. The receiver attributes whatever arrives to `from` via the
    /// source address, exactly as it would a genuinely corrupted datagram.
    pub fn send_raw(&self, from: NodeAddr, to: NodeAddr, bytes: &[u8]) -> std::io::Result<()> {
        let sock = self
            .sockets
            .get(from.0 as usize)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "unknown sender"))?;
        let peer = self
            .addr_book
            .get(&to)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "unknown target"))?;
        sock.send_to(bytes, peer).map(|_| ())
    }

    /// Run `f` against the actor at `addr` asynchronously; its outputs are
    /// processed on the worker thread.
    pub fn cast<F>(&self, addr: NodeAddr, f: F)
    where
        F: FnOnce(&mut A) -> Vec<Output> + Send + 'static,
    {
        if let Some(tx) = self.inboxes.get(&addr) {
            let _ = tx.send(Control::With(Box::new(f)));
        }
    }

    /// Run `f` against the actor at `addr` and wait for its return value.
    pub fn call<R, F>(&self, addr: NodeAddr, f: F) -> Option<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut A) -> (R, Vec<Output>) + Send + 'static,
    {
        let tx = self.inboxes.get(&addr)?;
        let (rtx, rrx) = bounded::<R>(1);
        let _ = tx.send(Control::With(Box::new(move |a| {
            let (r, outs) = f(a);
            let _ = rtx.send(r);
            outs
        })));
        // The control channel is reliable; a round only expires when the
        // worker is backed up, so extra rounds just extend the wait.
        for _ in 0..=self.cfg.call_retries {
            if let Ok(r) = rrx.recv_timeout(self.cfg.call_timeout) {
                return Some(r);
            }
        }
        None
    }

    /// Drain the recorded upcalls of every node.
    pub fn drain_upcalls(&self) -> Vec<(NodeAddr, Upcall)> {
        std::mem::take(&mut *self.upcalls.lock())
    }

    /// Transport counters.
    pub fn stats(&self) -> ClusterStats {
        let mut by_kind = [0u64; KINDS];
        for (slot, counter) in by_kind.iter_mut().zip(self.decode_errors_by_kind.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        ClusterStats {
            sent: self.sent.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            decode_errors_by_kind: by_kind,
            socket_recv_errors: self.socket_recv_errors.load(Ordering::Relaxed),
            socket_send_errors: self.socket_send_errors.load(Ordering::Relaxed),
        }
    }

    /// Transport-level metrics as an obs registry, in the shared
    /// [`dat_obs::transport`] vocabulary (`transport="threads"`). The
    /// shed layers exist at zero: this host's channels are unbounded, so
    /// nothing sheds here — but the series stay comparable with the
    /// bounded tokio host's.
    pub fn transport_registry(&self) -> dat_obs::Registry {
        let stats = self.stats();
        dat_obs::transport_registry(&dat_obs::TransportCounters {
            transport: "threads",
            sent: stats.sent,
            received: stats.received,
            decode_errors_by_kind: stats.decode_error_kinds().to_vec(),
            shed_rx: 0,
            shed_tx: 0,
            socket_recv_errors: stats.socket_recv_errors,
            socket_send_errors: stats.socket_send_errors,
        })
    }

    /// Teardown shared by `shutdown` and `Drop`: stop markers on the
    /// control plane, raise the flag, join workers (collecting actors),
    /// then receivers, then disconnect and join the timer thread.
    /// Idempotent — the second run finds nothing left to stop.
    fn stop_all(&mut self) -> Vec<A> {
        for tx in self.inboxes.values() {
            let _ = tx.send(Control::Stop);
        }
        self.shutdown.store(true, Ordering::Relaxed);
        let mut actors = Vec::with_capacity(self.workers.len());
        for w in self.workers.drain(..) {
            if let Ok(a) = w.join() {
                actors.push(a);
            }
        }
        for r in self.receivers.drain(..) {
            let _ = r.join();
        }
        // The workers' timer senders died with their threads; dropping
        // ours disconnects the channel, so the timer thread wakes from
        // its wait immediately rather than at the next granularity tick.
        drop(self.timer_tx.take());
        if let Some(t) = self.timer_thread.take() {
            let _ = t.join();
        }
        actors
    }

    /// Stop every thread and return the actors for inspection.
    pub fn shutdown(mut self) -> Vec<A> {
        let mut actors = self.stop_all();
        actors.sort_by_key(|a| a.addr());
        actors
    }
}

impl<A: Actor> Drop for RpcCluster<A> {
    /// Dropping an un-shutdown cluster must not leak threads: run the
    /// same teardown, discarding the actors.
    fn drop(&mut self) {
        let _ = self.stop_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{ChordConfig, ChordNode, Id, IdSpace};

    fn fast_cfg() -> ChordConfig {
        ChordConfig {
            space: IdSpace::new(32),
            stabilize_ms: 50,
            fix_fingers_ms: 30,
            check_pred_ms: 100,
            req_timeout_ms: 400,
            ..ChordConfig::default()
        }
    }

    #[test]
    fn two_nodes_join_over_real_udp() {
        let a = ChordNode::new(fast_cfg(), Id(1_000), NodeAddr(0));
        let b = ChordNode::new(fast_cfg(), Id(2_000_000), NodeAddr(1));
        let cluster = RpcCluster::launch(vec![a, b]).unwrap();
        let bootstrap = cluster
            .call(NodeAddr(0), |n| (n.me(), n.start_create()))
            .unwrap();
        cluster.cast(NodeAddr(1), move |n| n.start_join(bootstrap));
        // Wait for convergence (real time).
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut ok = false;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(100));
            let succ_a = cluster
                .call(NodeAddr(0), |n| {
                    (n.table().successor().map(|s| s.id), vec![])
                })
                .unwrap();
            let succ_b = cluster
                .call(NodeAddr(1), |n| {
                    (n.table().successor().map(|s| s.id), vec![])
                })
                .unwrap();
            let pred_a = cluster
                .call(NodeAddr(0), |n| {
                    (n.table().predecessor().map(|s| s.id), vec![])
                })
                .unwrap();
            if succ_a == Some(Id(2_000_000))
                && succ_b == Some(Id(1_000))
                && pred_a == Some(Id(2_000_000))
            {
                ok = true;
                break;
            }
        }
        let stats = cluster.stats();
        let actors = cluster.shutdown();
        assert!(ok, "ring did not converge over UDP");
        assert_eq!(actors.len(), 2);
        assert!(stats.sent > 0 && stats.received > 0);
        assert_eq!(stats.decode_errors, 0);
    }

    #[test]
    fn join_succeeds_only_with_datagram_retransmission() {
        // The bootstrap activates ~250 ms late: the joiner's first
        // FindSuccessor lands while it is still `Created` and is
        // protocol-dropped. With a single protocol-level join attempt
        // (max_join_retries: 1), only RTO-driven datagram retransmission
        // can complete the join — the no-retry config must surface
        // JoinFailed instead.
        let run = |max_retries: u32| {
            let cfg = ChordConfig {
                max_retries,
                max_join_retries: 1,
                ..fast_cfg()
            };
            let a = ChordNode::new(cfg, Id(1_000), NodeAddr(0));
            let b = ChordNode::new(cfg, Id(2_000_000), NodeAddr(1));
            let cluster = RpcCluster::launch_with(vec![a, b], ClusterConfig::default()).unwrap();
            let bootstrap = dat_chord::NodeRef::new(Id(1_000), NodeAddr(0));
            cluster.cast(NodeAddr(1), move |n| n.start_join(bootstrap));
            std::thread::sleep(Duration::from_millis(250));
            cluster.cast(NodeAddr(0), |n| n.start_create());
            let deadline = Instant::now() + Duration::from_secs(8);
            let (mut joined, mut failed) = (false, false);
            while Instant::now() < deadline && !joined && !failed {
                std::thread::sleep(Duration::from_millis(50));
                for (addr, u) in cluster.drain_upcalls() {
                    if addr == NodeAddr(1) {
                        match u {
                            Upcall::Joined { .. } => joined = true,
                            Upcall::JoinFailed => failed = true,
                            _ => {}
                        }
                    }
                }
            }
            cluster.shutdown();
            (joined, failed)
        };
        let (joined, _) = run(2);
        assert!(
            joined,
            "retransmission should recover the dropped join request"
        );
        let (joined, failed) = run(0);
        assert!(
            !joined && failed,
            "single-shot join through a sleeping bootstrap must fail (joined={joined}, failed={failed})"
        );
    }

    #[test]
    fn upcalls_are_recorded() {
        let a = ChordNode::new(fast_cfg(), Id(5), NodeAddr(0));
        let cluster = RpcCluster::launch(vec![a]).unwrap();
        cluster.cast(NodeAddr(0), |n| n.start_create());
        std::thread::sleep(Duration::from_millis(200));
        let ups = cluster.drain_upcalls();
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::Joined { id } if *id == Id(5))));
        cluster.shutdown();
    }

    #[test]
    #[should_panic(expected = "must use NodeAddr")]
    fn launch_validates_addresses() {
        let a = ChordNode::new(fast_cfg(), Id(5), NodeAddr(7));
        let _ = RpcCluster::launch(vec![a]);
    }

    /// A minimal actor that records every `BadFrame` it is handed, so the
    /// test can see exactly what the receiver thread forwarded.
    struct Recorder {
        addr: NodeAddr,
        bad: Vec<(Option<NodeAddr>, &'static str)>,
        messages: u64,
    }

    impl Actor for Recorder {
        fn addr(&self) -> NodeAddr {
            self.addr
        }
        fn on_input(&mut self, input: Input) -> Vec<Output> {
            match input {
                Input::BadFrame { from, error } => self.bad.push((from, error.kind_label())),
                Input::Message { .. } => self.messages += 1,
                _ => {}
            }
            vec![]
        }
    }

    #[test]
    fn damaged_datagrams_are_classified_attributed_and_forwarded() {
        let recorder = |i: u64| Recorder {
            addr: NodeAddr(i),
            bad: Vec::new(),
            messages: 0,
        };
        let cluster = RpcCluster::launch(vec![recorder(0), recorder(1)]).unwrap();

        let valid = codec::encode(&dat_chord::ChordMsg::Ping {
            req: 7,
            sender: dat_chord::NodeRef::new(Id(42), NodeAddr(1)),
        });
        // One intact control: a clean frame must still arrive as a Message.
        cluster.send_raw(NodeAddr(1), NodeAddr(0), &valid).unwrap();
        // Four damaged frames from node 1, one per failure class the
        // decode pipeline distinguishes at these offsets.
        cluster
            .send_raw(NodeAddr(1), NodeAddr(0), &valid[..1])
            .unwrap(); // truncated
        cluster
            .send_raw(NodeAddr(1), NodeAddr(0), b"not a chord frame")
            .unwrap(); // bad_magic
        let mut wrong_version = valid.clone();
        wrong_version[1] = 0x7F;
        cluster
            .send_raw(NodeAddr(1), NodeAddr(0), &wrong_version)
            .unwrap(); // bad_version
        let mut flipped = valid.clone();
        let body_end = flipped.len() - dat_chord::codec::CRC_TRAILER;
        flipped[body_end - 1] ^= 0x01;
        cluster
            .send_raw(NodeAddr(1), NodeAddr(0), &flipped)
            .unwrap(); // bad_checksum
                       // And one from a socket the cluster has never heard of: the frame
                       // must still be counted and forwarded, but with no attribution.
        let outsider = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let target = cluster.socket_addr(NodeAddr(0)).unwrap();
        outsider.send_to(b"zzzz", target).unwrap();

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut seen = Vec::new();
        let mut messages = 0;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50));
            let (bad, msgs) = cluster
                .call(NodeAddr(0), |a| ((a.bad.clone(), a.messages), vec![]))
                .unwrap();
            if bad.len() >= 5 && msgs >= 1 {
                seen = bad;
                messages = msgs;
                break;
            }
        }
        let stats = cluster.stats();
        cluster.shutdown();

        assert_eq!(messages, 1, "the intact frame should decode and deliver");
        assert_eq!(seen.len(), 5, "all five damaged frames should forward");
        let from_peer = |kind: &str| {
            seen.iter()
                .filter(|(f, k)| *f == Some(NodeAddr(1)) && *k == kind)
                .count()
        };
        assert_eq!(from_peer("truncated"), 1);
        assert_eq!(from_peer("bad_magic"), 1);
        assert_eq!(from_peer("bad_version"), 1);
        assert_eq!(from_peer("bad_checksum"), 1);
        assert_eq!(
            seen.iter()
                .filter(|(f, k)| f.is_none() && *k == "bad_magic")
                .count(),
            1,
            "the outsider's frame should arrive unattributed"
        );

        assert_eq!(stats.received, 1);
        assert_eq!(stats.decode_errors, 5);
        let kinds: HashMap<&str, u64> = stats.decode_error_kinds().into_iter().collect();
        assert_eq!(kinds["truncated"], 1);
        assert_eq!(kinds["bad_magic"], 2);
        assert_eq!(kinds["bad_version"], 1);
        assert_eq!(kinds["bad_checksum"], 1);
        assert_eq!(kinds["bad_tag"], 0);
        assert_eq!(stats.decode_errors_by_kind.iter().sum::<u64>(), 5);
    }

    #[test]
    fn drop_without_shutdown_joins_every_thread() {
        let a = ChordNode::new(fast_cfg(), Id(1_000), NodeAddr(0));
        let b = ChordNode::new(fast_cfg(), Id(2_000_000), NodeAddr(1));
        let cluster = RpcCluster::launch(vec![a, b]).unwrap();
        cluster.cast(NodeAddr(0), |n| n.start_create());
        std::thread::sleep(Duration::from_millis(100));
        // The shutdown flag is cloned into every receiver thread; once
        // Drop has joined them all, ours is the last strong reference.
        let weak = Arc::downgrade(&cluster.shutdown);
        drop(cluster);
        assert!(
            weak.upgrade().is_none(),
            "Drop must join the worker/receiver/timer threads, not leak them"
        );
    }

    #[test]
    fn registry_speaks_the_shared_transport_vocabulary() {
        let a = ChordNode::new(fast_cfg(), Id(1_000), NodeAddr(0));
        let b = ChordNode::new(fast_cfg(), Id(2_000_000), NodeAddr(1));
        let cluster = RpcCluster::launch(vec![a, b]).unwrap();
        let bootstrap = cluster
            .call(NodeAddr(0), |n| (n.me(), n.start_create()))
            .unwrap();
        cluster.cast(NodeAddr(1), move |n| n.start_join(bootstrap));
        std::thread::sleep(Duration::from_millis(300));
        let reg = cluster.transport_registry();
        cluster.shutdown();

        let text = reg.render_prometheus();
        let samples = dat_obs::validate_prometheus(&text).expect("well-formed exposition");
        // 2 dirs + 8 decode kinds + 2 socket ops + 2 shed layers.
        assert_eq!(
            samples, 14,
            "full vocabulary must exist even at zero:\n{text}"
        );
        assert!(reg.counter_with("transport_datagrams_total", "sent") > 0);
        assert!(reg.counter_with("transport_datagrams_total", "received") > 0);
        assert_eq!(reg.counter_sum("engine_shed_total"), 0);
        assert_eq!(reg.counter_sum("transport_socket_errors_total"), 0);
        assert!(text.contains("transport=\"threads\""));
    }
}
