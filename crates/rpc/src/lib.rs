//! # dat-rpc — UDP RPC transport for DAT nodes
//!
//! The real-network counterpart of the discrete-event simulator: the same
//! sans-io Chord/DAT state machines driven by loopback UDP sockets,
//! wall-clock timers and worker threads — the architecture of the paper's
//! prototype, whose "RPC manager module is implemented at the socket-level
//! to send and receive UDP packets" (§4).
//!
//! * [`codec`] — one datagram per [`dat_chord::ChordMsg`]; versioned,
//!   bounds-checked, fuzz-tolerant binary frames on the shared
//!   [`dat_chord::wire`] primitives;
//! * [`cluster::RpcCluster`] — binds one socket per node, spawns worker +
//!   receiver threads per node and a shared timer thread, interprets the
//!   outputs of any hosted [`dat_chord::Actor`] (a bare `ChordNode` or a
//!   `dat_core::StackNode` protocol stack) against the real network.
//!
//! ```no_run
//! use dat_chord::{ChordConfig, ChordNode, Id, NodeAddr};
//! use dat_rpc::RpcCluster;
//!
//! let a = ChordNode::new(ChordConfig::default(), Id(1), NodeAddr(0));
//! let b = ChordNode::new(ChordConfig::default(), Id(2), NodeAddr(1));
//! let cluster = RpcCluster::launch(vec![a, b]).unwrap();
//! let boot = cluster.call(NodeAddr(0), |n| (n.me(), n.start_create())).unwrap();
//! cluster.cast(NodeAddr(1), move |n| n.start_join(boot));
//! // ... let it run, then:
//! let nodes = cluster.shutdown();
//! assert_eq!(nodes.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod codec;

pub use cluster::{ClusterConfig, ClusterStats, RpcCluster};
pub use codec::{decode, encode, CodecError, MAX_FRAME};
