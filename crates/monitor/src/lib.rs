//! # dat-monitor — the P-GMA Grid resource-monitoring stack
//!
//! The application layer of the paper (§2.1, §5.4): a P2P Grid Monitoring
//! Architecture whose layers are
//!
//! * **sensors** ([`sensor`]) — signal sources per attribute (trace replay,
//!   random walks, constants);
//! * **producers** — each node's [`dat_core::StackNode`] hosting a
//!   [`dat_core::DatProtocol`], fed by its sensors every epoch;
//! * **indexing** — the MAAN layer, fronted by
//!   [`discovery::DiscoveryService`] for multi-attribute resource search;
//! * **aggregation** — continuous DAT aggregation of global attributes;
//! * **consumers** — per-epoch global reports at the rendezvous root,
//!   collected by [`pgma::GridMonitorSim`] together with ground truth.
//!
//! The §5.4 trace (2-hour CPU usage of an 8-processor Sun Fire v880) is
//! substituted by the seeded generator in [`trace`] — see DESIGN.md §4.
//!
//! ```
//! use dat_monitor::{GridMonitorSim, MonitorConfig, ConstantSensor};
//!
//! let cfg = MonitorConfig { nodes: 16, epoch_ms: 1_000, ..MonitorConfig::default() };
//! let mut sim = GridMonitorSim::new(cfg, "cpu-usage", |_| {
//!     Box::new(ConstantSensor::new("cpu-usage", 42.0))
//! });
//! sim.run_epochs(10);
//! assert!(sim.accuracy().mape < 1e-6); // constant signals aggregate exactly
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod discovery;
pub mod pgma;
pub mod sensor;
pub mod trace;

pub use discovery::DiscoveryService;
pub use pgma::{grid_schemas, AccuracyStats, EpochRecord, GridMonitorSim, MonitorConfig};
pub use sensor::{ConstantSensor, RandomWalkSensor, Sensor, TraceSensor};
pub use trace::{CpuTrace, TraceConfig};
