//! Resource discovery — the consumer-facing face of P-GMA.
//!
//! Consumers "can directly search resources or monitor their status by
//! issuing multi-attribute range queries to any nodes in the P2P indexing
//! network" (paper §2.1). This module glues the MAAN indexing layer to the
//! monitoring stack: producers register their machines' capability
//! attributes; consumers run typed discovery queries (e.g. *find Linux
//! boxes with ≥2 GHz CPUs that are under 50% load*).

use dat_maan::{AttrSchema, MaanNetwork, OpStats, Predicate, Resource};

/// A typed discovery front-end over a [`MaanNetwork`].
pub struct DiscoveryService {
    maan: MaanNetwork,
}

impl DiscoveryService {
    /// Standard Grid schemas used by the examples and experiments.
    pub fn standard_schemas() -> Vec<AttrSchema> {
        vec![
            AttrSchema::numeric("cpu-speed", 0.0, 16.0),
            AttrSchema::numeric("cpu-usage", 0.0, 100.0),
            AttrSchema::numeric("memory-size", 0.0, 1024.0),
            AttrSchema::numeric("disk-free", 0.0, 100_000.0),
            AttrSchema::keyword("os"),
            AttrSchema::keyword("arch"),
            AttrSchema::keyword("site"),
        ]
    }

    /// Wrap an existing MAAN.
    pub fn new(maan: MaanNetwork) -> Self {
        DiscoveryService { maan }
    }

    /// The underlying index.
    pub fn maan(&self) -> &MaanNetwork {
        &self.maan
    }

    /// Mutable access to the underlying index.
    pub fn maan_mut(&mut self) -> &mut MaanNetwork {
        &mut self.maan
    }

    /// Register a machine's capability advertisement from `origin`.
    pub fn advertise(&mut self, origin: dat_chord::Id, resource: &Resource) -> OpStats {
        self.maan.register(origin, resource)
    }

    /// Find machines satisfying every predicate.
    pub fn find(&self, origin: dat_chord::Id, preds: &[Predicate]) -> (Vec<Resource>, OpStats) {
        self.maan.multi_query(origin, preds)
    }

    /// Convenience: idle machines of a given OS at least `min_ghz` fast.
    pub fn find_idle(
        &self,
        origin: dat_chord::Id,
        os: &str,
        min_ghz: f64,
        max_usage: f64,
    ) -> (Vec<Resource>, OpStats) {
        self.find(
            origin,
            &[
                Predicate::exact("os", os),
                Predicate::range("cpu-speed", min_ghz, 16.0),
                Predicate::range("cpu-usage", 0.0, max_usage),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{IdPolicy, IdSpace, StaticRing};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn service(n: usize) -> DiscoveryService {
        let mut rng = SmallRng::seed_from_u64(11);
        let ring = StaticRing::build(IdSpace::new(32), n, IdPolicy::Probed, &mut rng);
        DiscoveryService::new(MaanNetwork::new(ring, DiscoveryService::standard_schemas()))
    }

    fn machine(i: u64, ghz: f64, usage: f64, os: &str) -> Resource {
        Resource::new(&format!("grid://host{i}"))
            .with("cpu-speed", ghz)
            .with("cpu-usage", usage)
            .with("memory-size", 32.0)
            .with("os", os)
            .with("arch", "x86_64")
            .with("site", if i.is_multiple_of(2) { "usc" } else { "isi" })
    }

    #[test]
    fn end_to_end_discovery() {
        let mut svc = service(64);
        let origin = svc.maan().ring().ids()[0];
        svc.advertise(origin, &machine(1, 2.8, 20.0, "linux"));
        svc.advertise(origin, &machine(2, 2.8, 95.0, "linux"));
        svc.advertise(origin, &machine(3, 1.2, 10.0, "linux"));
        svc.advertise(origin, &machine(4, 3.2, 5.0, "freebsd"));
        let (hits, stats) = svc.find_idle(origin, "linux", 2.0, 50.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].uri, "grid://host1");
        assert!(stats.total() > 0);
    }

    #[test]
    fn site_scoped_search() {
        let mut svc = service(32);
        let origin = svc.maan().ring().ids()[3];
        for i in 0..10 {
            svc.advertise(origin, &machine(i, 2.5, 30.0, "linux"));
        }
        let (hits, _) = svc.find(
            origin,
            &[
                Predicate::exact("site", "usc"),
                Predicate::range("memory-size", 16.0, 64.0),
            ],
        );
        assert_eq!(hits.len(), 5);
        assert!(hits
            .iter()
            .all(|r| r.get("site").unwrap().as_str() == Some("usc")));
    }
}
