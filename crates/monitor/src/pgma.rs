//! P-GMA assembly: the full monitoring stack in one simulated Grid.
//!
//! Wires the layers of the paper's Fig. 1 together — sensors feed
//! producers (the per-node [`dat_core::DatProtocol`] local values), the
//! aggregation layer pushes partials along the DAT tree every epoch, and
//! the consumer reads per-epoch global reports at the rendezvous root.
//! [`GridMonitorSim`] is the engine behind the §5.4 accuracy experiment
//! (Fig. 9): it tracks ground truth (the sum of every sensor's current
//! value) against the root's aggregated view.
//!
//! Every Grid node is one [`StackNode`] hosting *both* P-GMA services on
//! one Chord substrate: DAT continuous aggregation and MAAN resource
//! discovery — the paper's layered architecture, literally stacked.

use std::collections::HashMap;

use dat_chord::{ChordConfig, Id, IdPolicy, IdSpace, NodeAddr, RoutingScheme, StaticRing};
use dat_core::{
    AggFunc, AggregationMode, Completeness, DatConfig, DatEvent, DatProtocol, StackNode,
};
use dat_maan::{AttrSchema, MaanEvent, MaanProtocol, MaanStack, Resource};
use dat_sim::harness::{addr_book, prestabilized_stack};
use dat_sim::{LatencyModel, SimNet};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::sensor::Sensor;

/// The default Grid attribute schemas for the MAAN index hosted next to
/// the aggregation layer (the paper's running examples: CPU speed in GHz,
/// memory in MB, operating system as a keyword).
pub fn grid_schemas() -> Vec<AttrSchema> {
    vec![
        AttrSchema::numeric("cpu-speed", 0.0, 8.0),
        AttrSchema::numeric("memory", 0.0, 65_536.0),
        AttrSchema::keyword("os"),
    ]
}

/// Configuration of a monitoring simulation.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Number of Grid nodes (paper §5.4: 512).
    pub nodes: usize,
    /// Identifier-space width.
    pub space_bits: u8,
    /// Identifier placement policy.
    pub id_policy: IdPolicy,
    /// DAT routing scheme.
    pub scheme: RoutingScheme,
    /// Aggregation mode.
    pub mode: AggregationMode,
    /// Epoch length in virtual milliseconds.
    pub epoch_ms: u64,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Determinism seed.
    pub seed: u64,
    /// Override the DAT hold window (ms); `None` uses the DAT default.
    pub hold_ms: Option<u64>,
    /// Override the soft-state child TTL (epochs); `None` uses the default.
    pub child_ttl_epochs: Option<u64>,
    /// Use churn-grade ring maintenance (1 s stabilization, 0.5 s finger
    /// fixing) instead of the relaxed static-overlay defaults. Required
    /// when the run injects departures/failures and expects the trees to
    /// re-form within seconds.
    pub fast_maintenance: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            nodes: 512,
            space_bits: 32,
            id_policy: IdPolicy::Probed,
            scheme: RoutingScheme::Balanced,
            mode: AggregationMode::Continuous,
            epoch_ms: 10_000,
            latency: LatencyModel::Constant(2),
            seed: 0xCA1,
            hold_ms: None,
            child_ttl_epochs: None,
            fast_maintenance: false,
        }
    }
}

/// Ground truth vs aggregated view for one epoch (one point of Fig. 9).
#[derive(Clone, Copy, Debug)]
pub struct EpochRecord {
    /// Root-side epoch index.
    pub epoch: u64,
    /// Wall (virtual) time of the record, seconds.
    pub t_s: u64,
    /// True sum of every node's current sensor value.
    pub actual_total: f64,
    /// True average.
    pub actual_avg: f64,
    /// Aggregated sum as reported at the root (None until the first report
    /// reaches the root).
    pub reported_total: Option<f64>,
    /// Aggregated average.
    pub reported_avg: Option<f64>,
    /// Number of nodes contributing to the report.
    pub reported_count: Option<u64>,
    /// The report's completeness accounting (contributors vs estimated
    /// ring size, staleness bound, report fence) — the consumer-side view
    /// of how degraded the number is.
    pub completeness: Option<Completeness>,
}

/// Accuracy summary over a run.
#[derive(Clone, Copy, Debug)]
pub struct AccuracyStats {
    /// Epochs with a root report.
    pub reported_epochs: usize,
    /// Mean absolute percentage error of the reported total vs actual.
    pub mape: f64,
    /// Worst absolute percentage error.
    pub max_ape: f64,
    /// Mean node-count coverage (reported count / n).
    pub coverage: f64,
    /// Mean self-reported completeness ratio over the counted epochs (the
    /// root's own estimate, no global view — compare against `coverage`).
    pub mean_completeness: f64,
    /// Worst staleness bound (ms) over the counted epochs.
    pub max_staleness_ms: u64,
}

/// The monitoring simulation: n nodes, one trace-driven sensor each,
/// continuous aggregation of the configured attribute.
pub struct GridMonitorSim {
    net: SimNet<StackNode>,
    sensors: HashMap<NodeAddr, Box<dyn Sensor>>,
    current: HashMap<NodeAddr, f64>,
    key: Id,
    root_addr: NodeAddr,
    cfg: MonitorConfig,
    records: Vec<EpochRecord>,
    epoch: u64,
}

impl GridMonitorSim {
    /// Build the Grid: a pre-stabilized DAT overlay plus one sensor per
    /// node produced by `make_sensor(index)`.
    pub fn new<F>(cfg: MonitorConfig, attr: &str, mut make_sensor: F) -> Self
    where
        F: FnMut(usize) -> Box<dyn Sensor>,
    {
        let space = IdSpace::new(cfg.space_bits);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let ring = StaticRing::build(space, cfg.nodes, cfg.id_policy, &mut rng);
        let ccfg = if cfg.fast_maintenance {
            ChordConfig {
                space,
                stabilize_ms: 1_000,
                fix_fingers_ms: 500,
                check_pred_ms: 1_500,
                req_timeout_ms: 2_500,
                ..ChordConfig::default()
            }
        } else {
            ChordConfig {
                space,
                // The monitored overlay is pre-converged and static for the
                // accuracy experiment: relax ring maintenance so simulated
                // time is dominated by aggregation traffic.
                stabilize_ms: 30_000,
                fix_fingers_ms: 20_000,
                check_pred_ms: 30_000,
                ..ChordConfig::default()
            }
        };
        let mut dcfg = DatConfig {
            scheme: cfg.scheme,
            epoch_ms: cfg.epoch_ms,
            d0_hint: Some(ring.d0()),
            ..DatConfig::default()
        };
        if let Some(h) = cfg.hold_ms {
            dcfg.hold_ms = h;
        }
        if let Some(t) = cfg.child_ttl_epochs {
            dcfg.child_ttl_epochs = t;
        }
        let mut net = prestabilized_stack(&ring, ccfg, cfg.seed, |_, id, addr| {
            StackNode::new(ccfg, id, addr)
                .with_app(DatProtocol::new(dcfg))
                .with_app(MaanProtocol::new(grid_schemas()))
        });
        net.set_latency(cfg.latency);
        net.set_record_upcalls(false);
        // Phase-shift the sampling windows: every node's epoch tick fires at
        // multiples of epoch_ms; by advancing `settle_ms` past the start we
        // make each step_epoch window contain exactly one tick *plus* the
        // full convergecast that follows it, so the root's report for epoch
        // k is computed entirely from the sensor values set for epoch k.
        let settle_ms = (2 * dcfg.hold_ms + 100).min(cfg.epoch_ms / 2).max(1);
        net.run_for(settle_ms);

        // Register the aggregation everywhere and attach sensors.
        let book = addr_book(&ring);
        let mut key = Id(0);
        let mut sensors: HashMap<NodeAddr, Box<dyn Sensor>> = HashMap::new();
        let mut current = HashMap::new();
        for (i, &id) in ring.ids().iter().enumerate() {
            let addr = book[&id];
            let node = net.node_mut(addr).expect("node exists");
            key = node.register(attr, cfg.mode);
            sensors.insert(addr, make_sensor(i));
            current.insert(addr, 0.0);
        }
        let root_addr = book[&ring.successor(key)];
        GridMonitorSim {
            net,
            sensors,
            current,
            key,
            root_addr,
            cfg,
            records: Vec::new(),
            epoch: 0,
        }
    }

    /// The rendezvous key of the monitored attribute.
    pub fn key(&self) -> Id {
        self.key
    }

    /// The simulator address of the aggregation root.
    pub fn root_addr(&self) -> NodeAddr {
        self.root_addr
    }

    /// The simulation network (for ad-hoc inspection).
    pub fn net(&self) -> &SimNet<StackNode> {
        &self.net
    }

    /// Mutable network access (e.g. to inject churn mid-run).
    pub fn net_mut(&mut self) -> &mut SimNet<StackNode> {
        &mut self.net
    }

    /// The monitoring fleet's merged Prometheus dump — every node's
    /// Chord + DAT + MAAN registries folded into one exposition, the same
    /// text a single node serves over `ChordMsg::StatsRequest`.
    pub fn fleet_prometheus(&self) -> String {
        dat_sim::fleet_prometheus(&self.net)
    }

    /// Register a Grid resource in the MAAN index (hosted on the same
    /// overlay nodes as the aggregation layer), entering at `at`.
    pub fn register_resource(&mut self, at: NodeAddr, resource: &Resource) {
        let r = resource.clone();
        self.net.with_node(at, |n| ((), n.maan_register(&r)));
        // Let the registration routes land.
        self.net.run_for(2_000);
    }

    /// Discover resources with `attr ∈ [lo, hi]` from node `from`: issues
    /// a MAAN range query over the same overlay that carries the
    /// aggregation traffic and runs the network until it completes.
    pub fn discover(&mut self, from: NodeAddr, attr: &str, lo: f64, hi: f64) -> Vec<Resource> {
        let attr = attr.to_string();
        let qid = self
            .net
            .with_node(from, |n| n.maan_range_query(&attr, lo, hi))
            .expect("query origin exists");
        self.net.run_for(5_000);
        self.net
            .with_node(from, |n| (n.take_maan_events(), Vec::new()))
            .into_iter()
            .flatten()
            .find_map(|e| match e {
                MaanEvent::QueryDone { qid: q, hits } if q == qid => Some(hits),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// Collected per-epoch records.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Advance one epoch: sample every sensor, publish local values, run
    /// the network for one epoch, and record actual vs reported.
    pub fn step_epoch(&mut self) {
        let t_s = self.net.now().as_secs();
        // Sensors → producers.
        let key = self.key;
        for (addr, sensor) in self.sensors.iter_mut() {
            let v = sensor.sample(t_s);
            self.current.insert(*addr, v);
            if let Some(node) = self.net.node_mut(*addr) {
                node.set_local(key, v);
            }
        }
        // One epoch of protocol time.
        self.net.run_for(self.cfg.epoch_ms);
        self.epoch += 1;
        // Ground truth.
        let n = self.current.len() as f64;
        let actual_total: f64 = self.current.values().sum();
        // Root report (latest).
        let report = self
            .net
            .node_mut(self.root_addr)
            .map(|root| {
                root.take_events()
                    .into_iter()
                    .filter_map(|e| match e {
                        DatEvent::Report {
                            key: k,
                            partial,
                            completeness,
                            ..
                        } if k == key => Some((partial, completeness)),
                        _ => None,
                    })
                    .next_back()
            })
            .unwrap_or(None);
        self.records.push(EpochRecord {
            epoch: self.epoch,
            t_s,
            actual_total,
            actual_avg: actual_total / n,
            reported_total: report.as_ref().map(|(p, _)| p.finalize(AggFunc::Sum)),
            reported_avg: report.as_ref().map(|(p, _)| p.finalize(AggFunc::Avg)),
            reported_count: report.as_ref().map(|(p, _)| p.count),
            completeness: report.as_ref().map(|(_, c)| *c),
        });
    }

    /// Run `epochs` epochs.
    pub fn run_epochs(&mut self, epochs: u64) {
        for _ in 0..epochs {
            self.step_epoch();
        }
    }

    /// Accuracy of the aggregated totals vs ground truth, skipping the
    /// warm-up epochs before the first full report.
    pub fn accuracy(&self) -> AccuracyStats {
        let n = self.sensors.len() as f64;
        let mut count = 0usize;
        let mut ape_sum = 0.0;
        let mut ape_max = 0.0f64;
        let mut cov_sum = 0.0;
        let mut ratio_sum = 0.0;
        let mut stale_max = 0u64;
        for r in &self.records {
            let (Some(total), Some(c)) = (r.reported_total, r.reported_count) else {
                continue;
            };
            // Skip partial warm-up reports.
            if (c as f64) < 0.5 * n {
                continue;
            }
            count += 1;
            let ape = if r.actual_total == 0.0 {
                0.0
            } else {
                ((total - r.actual_total) / r.actual_total).abs() * 100.0
            };
            ape_sum += ape;
            ape_max = ape_max.max(ape);
            cov_sum += c as f64 / n;
            if let Some(cm) = r.completeness {
                ratio_sum += cm.ratio;
                stale_max = stale_max.max(cm.staleness_ms);
            }
        }
        AccuracyStats {
            reported_epochs: count,
            mape: if count == 0 {
                f64::NAN
            } else {
                ape_sum / count as f64
            },
            max_ape: ape_max,
            coverage: if count == 0 {
                0.0
            } else {
                cov_sum / count as f64
            },
            mean_completeness: if count == 0 {
                0.0
            } else {
                ratio_sum / count as f64
            },
            max_staleness_ms: stale_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::ConstantSensor;
    use crate::trace::{CpuTrace, TraceConfig};
    use crate::TraceSensor;

    #[test]
    fn constant_signal_aggregates_exactly() {
        let cfg = MonitorConfig {
            nodes: 32,
            epoch_ms: 1_000,
            ..MonitorConfig::default()
        };
        let mut sim = GridMonitorSim::new(cfg, "cpu-usage", |_| {
            Box::new(ConstantSensor::new("cpu-usage", 50.0))
        });
        sim.run_epochs(12);
        let acc = sim.accuracy();
        assert!(acc.reported_epochs >= 5, "reports: {acc:?}");
        // A constant signal must aggregate exactly once converged.
        assert!(acc.mape < 1e-6, "{acc:?}");
        assert!((acc.coverage - 1.0).abs() < 1e-9, "{acc:?}");
        // The d0 hint makes the root's ring-size estimate exact, so the
        // self-reported completeness agrees with the true coverage, and a
        // healthy run's reports are at most a couple epochs stale.
        assert!((acc.mean_completeness - 1.0).abs() < 1e-9, "{acc:?}");
        assert!(acc.max_staleness_ms <= 2 * 1_000, "{acc:?}");
    }

    #[test]
    fn trace_signal_tracks_closely() {
        let trace = CpuTrace::generate(TraceConfig {
            duration_s: 600,
            ..TraceConfig::default()
        });
        let cfg = MonitorConfig {
            nodes: 64,
            epoch_ms: 5_000,
            ..MonitorConfig::default()
        };
        let mut sim = GridMonitorSim::new(cfg, "cpu-usage", |i| {
            Box::new(TraceSensor::new("cpu-usage", trace.clone(), i as u64, 1.0))
        });
        sim.run_epochs(40);
        let acc = sim.accuracy();
        assert!(acc.reported_epochs >= 30, "{acc:?}");
        // Pipelined aggregation lags the signal slightly; an
        // autocorrelated trace should still track within a few percent.
        assert!(acc.mape < 10.0, "{acc:?}");
        assert!(acc.coverage > 0.95, "{acc:?}");
    }

    #[test]
    fn discovery_rides_the_monitoring_overlay() {
        // The same StackNodes carry DAT aggregation and MAAN discovery:
        // register two resources, range-query one, and keep aggregating.
        let cfg = MonitorConfig {
            nodes: 16,
            epoch_ms: 1_000,
            ..MonitorConfig::default()
        };
        let mut sim = GridMonitorSim::new(cfg, "cpu-usage", |_| {
            Box::new(ConstantSensor::new("cpu-usage", 2.0))
        });
        sim.register_resource(
            NodeAddr(0),
            &Resource::new("grid://m1")
                .with("cpu-speed", 2.8)
                .with("os", "linux"),
        );
        sim.register_resource(
            NodeAddr(3),
            &Resource::new("grid://m2").with("cpu-speed", 6.0),
        );
        let hits = sim.discover(NodeAddr(5), "cpu-speed", 2.0, 3.0);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].uri, "grid://m1");
        assert!(sim.discover(NodeAddr(7), "cpu-speed", 7.0, 8.0).is_empty());
        sim.run_epochs(8);
        let acc = sim.accuracy();
        assert!(acc.reported_epochs >= 1, "{acc:?}");
        assert!(
            acc.mape < 1e-6,
            "aggregation unharmed by discovery: {acc:?}"
        );
    }

    #[test]
    fn records_have_monotone_epochs() {
        let cfg = MonitorConfig {
            nodes: 8,
            epoch_ms: 500,
            ..MonitorConfig::default()
        };
        let mut sim = GridMonitorSim::new(cfg, "cpu-usage", |_| {
            Box::new(ConstantSensor::new("cpu-usage", 1.0))
        });
        sim.run_epochs(5);
        let e: Vec<u64> = sim.records().iter().map(|r| r.epoch).collect();
        assert_eq!(e, vec![1, 2, 3, 4, 5]);
    }
}
