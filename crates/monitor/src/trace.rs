//! Synthetic CPU-usage traces.
//!
//! The paper's accuracy experiment (§5.4) replays "a 2-hour long trace of
//! the CPU usages on an 8-processor Sun Fire v880 server at USC" into a
//! 512-node simulated Grid. That trace is not public, so we substitute a
//! seeded generator producing the same *class* of signal: autocorrelated
//! (AR(1)) utilisation with a slow diurnal-style drift and occasional load
//! spikes, clamped to `[0, 100]`% per processor — any such signal exercises
//! the identical aggregation path (sensor → producer → continuous DAT →
//! root report vs ground truth). See DESIGN.md §4 (substitutions).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic trace generator.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Trace length in seconds (paper: 2 h = 7200 s).
    pub duration_s: u64,
    /// Samples per second (paper-equivalent: 1 Hz).
    pub sample_hz: u32,
    /// Number of processors whose utilisation is summed (Sun Fire v880: 8).
    pub cpus: u32,
    /// RNG seed.
    pub seed: u64,
    /// Baseline utilisation per CPU, percent.
    pub base: f64,
    /// Amplitude of the slow sinusoidal drift, percent.
    pub drift_amp: f64,
    /// Period of the slow drift, seconds.
    pub drift_period_s: f64,
    /// AR(1) coefficient (0 = white noise, →1 = long memory).
    pub ar1: f64,
    /// Standard deviation of the AR(1) innovations, percent.
    pub noise: f64,
    /// Per-sample probability of a load spike starting.
    pub spike_prob: f64,
    /// Spike amplitude, percent.
    pub spike_amp: f64,
    /// Spike decay per sample (exponential).
    pub spike_decay: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            duration_s: 7200,
            sample_hz: 1,
            cpus: 8,
            seed: 0x5f1f,
            base: 35.0,
            drift_amp: 20.0,
            drift_period_s: 5400.0,
            ar1: 0.97,
            noise: 2.5,
            spike_prob: 0.002,
            spike_amp: 45.0,
            spike_decay: 0.92,
        }
    }
}

/// A generated utilisation trace. Samples are *average per-CPU usage* in
/// percent (`0..=100`); [`CpuTrace::total_at`] scales by the CPU count.
#[derive(Clone, Debug)]
pub struct CpuTrace {
    cfg: TraceConfig,
    samples: Vec<f64>,
}

impl CpuTrace {
    /// Generate a trace from `cfg` (deterministic per seed).
    pub fn generate(cfg: TraceConfig) -> Self {
        assert!(cfg.sample_hz >= 1 && cfg.duration_s >= 1);
        assert!((0.0..1.0).contains(&cfg.ar1.abs()) || cfg.ar1 == 0.0 || cfg.ar1 < 1.0);
        let n = (cfg.duration_s * cfg.sample_hz as u64) as usize;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut samples = Vec::with_capacity(n);
        let mut ar = 0.0f64;
        let mut spike = 0.0f64;
        for i in 0..n {
            let t = i as f64 / cfg.sample_hz as f64;
            // AR(1) noise via Box-Muller.
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            ar = cfg.ar1 * ar + cfg.noise * z;
            // Spikes.
            spike *= cfg.spike_decay;
            if rng.random::<f64>() < cfg.spike_prob {
                spike += cfg.spike_amp;
            }
            let drift = cfg.drift_amp * (std::f64::consts::TAU * t / cfg.drift_period_s).sin();
            let v = (cfg.base + drift + ar + spike).clamp(0.0, 100.0);
            samples.push(v);
        }
        CpuTrace { cfg, samples }
    }

    /// The generator parameters.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Average per-CPU usage (percent) at `t_s` seconds from trace start.
    /// Out-of-range times clamp to the last sample.
    pub fn at(&self, t_s: u64) -> f64 {
        let idx = ((t_s * self.cfg.sample_hz as u64) as usize).min(self.samples.len() - 1);
        self.samples[idx]
    }

    /// Total usage across all CPUs (percent × cpus) at `t_s`.
    pub fn total_at(&self, t_s: u64) -> f64 {
        self.at(t_s) * self.cfg.cpus as f64
    }

    /// The raw sample vector.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Lag-1 autocorrelation of the samples — used by tests to verify the
    /// signal is trace-like (strongly autocorrelated) rather than white.
    pub fn lag1_autocorr(&self) -> f64 {
        let n = self.samples.len();
        if n < 3 {
            return 0.0;
        }
        let mean = self.samples.iter().sum::<f64>() / n as f64;
        let var: f64 = self.samples.iter().map(|x| (x - mean).powi(2)).sum();
        if var == 0.0 {
            return 1.0;
        }
        let cov: f64 = self
            .samples
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        cov / var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = CpuTrace::generate(TraceConfig::default());
        let b = CpuTrace::generate(TraceConfig::default());
        assert_eq!(a.samples(), b.samples());
        let c = CpuTrace::generate(TraceConfig {
            seed: 999,
            ..TraceConfig::default()
        });
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn two_hour_trace_shape() {
        let t = CpuTrace::generate(TraceConfig::default());
        assert_eq!(t.len(), 7200);
        assert!(t.samples().iter().all(|&v| (0.0..=100.0).contains(&v)));
        // 8-CPU totals scale accordingly.
        assert_eq!(t.total_at(0), t.at(0) * 8.0);
    }

    #[test]
    fn strongly_autocorrelated() {
        let t = CpuTrace::generate(TraceConfig::default());
        assert!(
            t.lag1_autocorr() > 0.8,
            "trace-like signals are smooth: r1 = {}",
            t.lag1_autocorr()
        );
        // A white trace for contrast.
        let white = CpuTrace::generate(TraceConfig {
            ar1: 0.0,
            noise: 20.0,
            drift_amp: 0.0,
            spike_prob: 0.0,
            ..TraceConfig::default()
        });
        assert!(white.lag1_autocorr() < 0.4);
    }

    #[test]
    fn out_of_range_times_clamp() {
        let t = CpuTrace::generate(TraceConfig {
            duration_s: 10,
            ..TraceConfig::default()
        });
        assert_eq!(t.at(10_000), t.at(9));
    }

    #[test]
    fn spikes_present() {
        let t = CpuTrace::generate(TraceConfig {
            spike_prob: 0.05,
            ..TraceConfig::default()
        });
        let max = t.samples().iter().cloned().fold(0.0, f64::max);
        let mean = t.samples().iter().sum::<f64>() / t.len() as f64;
        assert!(
            max > mean + 20.0,
            "spikes should stand out: max {max}, mean {mean}"
        );
    }
}
