//! Sensors — the bottom layer of the P-GMA architecture.
//!
//! "A sensor monitors the status of one or more resources and generates
//! events to producers. The sensor could be simply some scripts that
//! collect the system status from the /proc file system" (paper §2.1).
//! In the simulated Grid a sensor is a deterministic signal source sampled
//! at epoch boundaries; the producer pushes the readings into the DAT and
//! MAAN layers.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::trace::CpuTrace;

/// A monitored signal source for one attribute.
pub trait Sensor: Send {
    /// The attribute this sensor reports (e.g. `"cpu-usage"`).
    fn attribute(&self) -> &str;
    /// Sample the signal at `t_s` seconds since monitoring began.
    fn sample(&mut self, t_s: u64) -> f64;
}

/// Replays a [`CpuTrace`], optionally phase-shifted per node.
pub struct TraceSensor {
    attr: String,
    trace: CpuTrace,
    offset_s: u64,
    scale: f64,
}

impl TraceSensor {
    /// A sensor replaying `trace` from `offset_s` with a value multiplier.
    pub fn new(attr: &str, trace: CpuTrace, offset_s: u64, scale: f64) -> Self {
        TraceSensor {
            attr: attr.to_string(),
            trace,
            offset_s,
            scale,
        }
    }
}

impl Sensor for TraceSensor {
    fn attribute(&self) -> &str {
        &self.attr
    }
    fn sample(&mut self, t_s: u64) -> f64 {
        self.trace.at(t_s + self.offset_s) * self.scale
    }
}

/// A bounded random walk (memory/disk style metrics).
pub struct RandomWalkSensor {
    attr: String,
    value: f64,
    lo: f64,
    hi: f64,
    step: f64,
    rng: SmallRng,
}

impl RandomWalkSensor {
    /// A walk over `[lo, hi]` starting at `start`, stepping ±`step`.
    pub fn new(attr: &str, start: f64, lo: f64, hi: f64, step: f64, seed: u64) -> Self {
        assert!(hi > lo && (lo..=hi).contains(&start));
        RandomWalkSensor {
            attr: attr.to_string(),
            value: start,
            lo,
            hi,
            step,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Sensor for RandomWalkSensor {
    fn attribute(&self) -> &str {
        &self.attr
    }
    fn sample(&mut self, _t_s: u64) -> f64 {
        let d: f64 = self.rng.random_range(-1.0..=1.0) * self.step;
        self.value = (self.value + d).clamp(self.lo, self.hi);
        self.value
    }
}

/// A constant signal (capacity-style attributes: cpu-speed, total memory).
pub struct ConstantSensor {
    attr: String,
    value: f64,
}

impl ConstantSensor {
    /// A sensor always reporting `value`.
    pub fn new(attr: &str, value: f64) -> Self {
        ConstantSensor {
            attr: attr.to_string(),
            value,
        }
    }
}

impl Sensor for ConstantSensor {
    fn attribute(&self) -> &str {
        &self.attr
    }
    fn sample(&mut self, _t_s: u64) -> f64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;

    #[test]
    fn trace_sensor_replays_with_offset_and_scale() {
        let trace = CpuTrace::generate(TraceConfig::default());
        let mut s = TraceSensor::new("cpu-usage", trace.clone(), 100, 2.0);
        assert_eq!(s.attribute(), "cpu-usage");
        assert_eq!(s.sample(0), trace.at(100) * 2.0);
        assert_eq!(s.sample(50), trace.at(150) * 2.0);
    }

    #[test]
    fn random_walk_stays_bounded() {
        let mut s = RandomWalkSensor::new("memory-free", 32.0, 0.0, 64.0, 4.0, 1);
        for t in 0..10_000 {
            let v = s.sample(t);
            assert!((0.0..=64.0).contains(&v));
        }
    }

    #[test]
    fn random_walk_deterministic() {
        let run = |seed| {
            let mut s = RandomWalkSensor::new("m", 10.0, 0.0, 20.0, 1.0, seed);
            (0..100).map(|t| s.sample(t)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn constant_sensor() {
        let mut s = ConstantSensor::new("cpu-speed", 2.8);
        assert_eq!(s.sample(0), 2.8);
        assert_eq!(s.sample(9999), 2.8);
    }
}
