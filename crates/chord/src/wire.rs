//! Shared binary wire primitives.
//!
//! One `Writer`/`Reader` pair and one error vocabulary for every hand-rolled
//! codec in the workspace: the DAT application codec (`dat-core`), the MAAN
//! discovery codec (`dat-maan`) and the UDP datagram framing (`dat-rpc`) all
//! build on these primitives instead of maintaining parallel copies. The
//! format is little-endian, TLV-free, length-prefixed where variable.

use crate::finger::{NodeAddr, NodeRef};
use crate::id::Id;

/// Decoding errors shared by every codec built on [`Reader`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the field being read.
    Truncated,
    /// First byte of a frame is not the expected magic byte.
    BadMagic(u8),
    /// Unknown message tag.
    BadTag(u8),
    /// Unsupported wire version.
    BadVersion(u8),
    /// A length field exceeded sane bounds.
    BadLength(u64),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::BadMagic(b) => write!(f, "bad magic byte {b:#x}"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            CodecError::BadLength(l) => write!(f, "implausible length {l}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(64),
        }
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64` (IEEE-754 bits, little-endian).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a ring identifier.
    pub fn id(&mut self, v: Id) -> &mut Self {
        self.u64(v.raw())
    }

    /// Append a node reference (id + transport address).
    pub fn node_ref(&mut self, v: NodeRef) -> &mut Self {
        self.id(v.id).u64(v.addr.0)
    }

    /// Append an optional node reference (presence byte).
    pub fn opt_node_ref(&mut self, v: Option<NodeRef>) -> &mut Self {
        match v {
            Some(n) => self.u8(1).node_ref(n),
            None => self.u8(0),
        }
    }

    /// Append a `u16`-length-prefixed node list.
    pub fn node_list(&mut self, v: &[NodeRef]) -> &mut Self {
        self.u16(v.len() as u16);
        for &n in v {
            self.node_ref(n);
        }
        self
    }

    /// Append length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// Cursor-based decoder.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a ring identifier.
    pub fn id(&mut self) -> Result<Id, CodecError> {
        Ok(Id(self.u64()?))
    }

    /// Read a node reference.
    pub fn node_ref(&mut self) -> Result<NodeRef, CodecError> {
        let id = self.id()?;
        let addr = NodeAddr(self.u64()?);
        Ok(NodeRef::new(id, addr))
    }

    /// Read an optional node reference.
    pub fn opt_node_ref(&mut self) -> Result<Option<NodeRef>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.node_ref()?)),
        }
    }

    /// Read a `u16`-length-prefixed node list (bounded at 4096 entries).
    pub fn node_list(&mut self) -> Result<Vec<NodeRef>, CodecError> {
        let n = self.u16()? as usize;
        if n > 4096 {
            return Err(CodecError::BadLength(n as u64));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.node_ref()?);
        }
        Ok(out)
    }

    /// Read length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::BadLength(len as u64));
        }
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string (lossy on invalid UTF-8).
    pub fn str(&mut self) -> Result<String, CodecError> {
        Ok(String::from_utf8_lossy(self.bytes()?).into_owned())
    }

    /// Assert the input is fully consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            Err(CodecError::TrailingBytes(self.remaining()))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nr(id: u64) -> NodeRef {
        NodeRef::new(Id(id), NodeAddr(id + 1000))
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7).u16(999).u32(1234).u64(u64::MAX).f64(2.5);
        w.str("cpu-usage")
            .opt_node_ref(None)
            .opt_node_ref(Some(nr(9)));
        w.node_list(&[nr(1), nr(2)]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 999);
        assert_eq!(r.u32().unwrap(), 1234);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str().unwrap(), "cpu-usage");
        assert_eq!(r.opt_node_ref().unwrap(), None);
        assert_eq!(r.opt_node_ref().unwrap(), Some(nr(9)));
        assert_eq!(r.node_list().unwrap(), vec![nr(1), nr(2)]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_trailing_detected() {
        let mut w = Writer::new();
        w.node_ref(nr(5)).bytes(&[1, 2, 3]);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let ok = r
                .node_ref()
                .and_then(|_| r.bytes().map(|_| ()))
                .and_then(|_| r.expect_end());
            assert!(ok.is_err(), "prefix {cut} accepted");
        }
        let mut r = Reader::new(&bytes);
        r.node_ref().unwrap();
        r.bytes().unwrap();
        r.expect_end().unwrap();
    }

    #[test]
    fn hostile_lengths_rejected() {
        let mut w = Writer::new();
        w.u16(u16::MAX);
        let bytes = w.finish();
        assert_eq!(
            Reader::new(&bytes).node_list(),
            Err(CodecError::BadLength(u16::MAX as u64))
        );
        let mut w = Writer::new();
        w.u32(1 << 30);
        let bytes = w.finish();
        assert_eq!(
            Reader::new(&bytes).bytes(),
            Err(CodecError::BadLength(1 << 30))
        );
    }
}
