//! Shared binary wire primitives.
//!
//! One `Writer`/`Reader` pair and one error vocabulary for every hand-rolled
//! codec in the workspace: the DAT application codec (`dat-core`), the MAAN
//! discovery codec (`dat-maan`) and the UDP datagram framing (`dat-rpc`) all
//! build on these primitives instead of maintaining parallel copies. The
//! format is little-endian, TLV-free, length-prefixed where variable.
//!
//! The module also owns the workspace's frame checksum: a table-driven
//! CRC32C ([`crc32c`]) appended as a little-endian trailer by the framing
//! codec, so bit-flips and truncations that survive UDP's 16-bit checksum
//! are rejected instead of decoded into a silently-wrong aggregate.

#![deny(clippy::unwrap_used)]

use crate::finger::{NodeAddr, NodeRef};
use crate::id::Id;

/// Decoding errors shared by every codec built on [`Reader`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the field being read.
    Truncated,
    /// First byte of a frame is not the expected magic byte.
    BadMagic(u8),
    /// Unknown message tag.
    BadTag(u8),
    /// Unsupported wire version.
    BadVersion(u8),
    /// A length field exceeded sane bounds.
    BadLength(u64),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
    /// Frame checksum trailer does not match the frame body.
    BadChecksum {
        /// CRC32C computed over the received body.
        computed: u32,
        /// CRC32C the frame claimed in its trailer.
        stored: u32,
    },
    /// A length-prefixed string field held invalid UTF-8.
    BadUtf8,
}

/// Every [`CodecError::kind_label`] value, in [`CodecError::kind_index`]
/// order — lets hosts pre-register one counter per kind so a quiet wire
/// still exports a complete (zeroed) error taxonomy.
pub const ERROR_KINDS: [&str; 8] = [
    "truncated",
    "bad_magic",
    "bad_tag",
    "bad_version",
    "bad_length",
    "trailing_bytes",
    "bad_checksum",
    "bad_utf8",
];

impl CodecError {
    /// Stable label for this error kind (metric label / log field).
    pub fn kind_label(&self) -> &'static str {
        ERROR_KINDS[self.kind_index()]
    }

    /// Dense index of this error kind into [`ERROR_KINDS`].
    pub fn kind_index(&self) -> usize {
        match self {
            CodecError::Truncated => 0,
            CodecError::BadMagic(_) => 1,
            CodecError::BadTag(_) => 2,
            CodecError::BadVersion(_) => 3,
            CodecError::BadLength(_) => 4,
            CodecError::TrailingBytes(_) => 5,
            CodecError::BadChecksum { .. } => 6,
            CodecError::BadUtf8 => 7,
        }
    }
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::BadMagic(b) => write!(f, "bad magic byte {b:#x}"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            CodecError::BadLength(l) => write!(f, "implausible length {l}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            CodecError::BadChecksum { computed, stored } => write!(
                f,
                "checksum mismatch: frame claims {stored:#010x}, body hashes to {computed:#010x}"
            ),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// CRC32C (Castagnoli) lookup table, built at compile time from the
/// reflected polynomial 0x82F63B78.
const CRC32C_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32C (Castagnoli) of `data` — the checksum iSCSI and ext4 use, chosen
/// over CRC32 (IEEE) for its better error-detection spectrum on short
/// frames. Table-driven, no dependencies; standard check value:
/// `crc32c(b"123456789") == 0xE3069283`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append-only encoder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(64),
        }
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64` (IEEE-754 bits, little-endian).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a ring identifier.
    pub fn id(&mut self, v: Id) -> &mut Self {
        self.u64(v.raw())
    }

    /// Append a node reference (id + transport address).
    pub fn node_ref(&mut self, v: NodeRef) -> &mut Self {
        self.id(v.id).u64(v.addr.0)
    }

    /// Append an optional node reference (presence byte).
    pub fn opt_node_ref(&mut self, v: Option<NodeRef>) -> &mut Self {
        match v {
            Some(n) => self.u8(1).node_ref(n),
            None => self.u8(0),
        }
    }

    /// Append a `u16`-length-prefixed node list.
    pub fn node_list(&mut self, v: &[NodeRef]) -> &mut Self {
        self.u16(v.len() as u16);
        for &n in v {
            self.node_ref(n);
        }
        self
    }

    /// Append length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// Cursor-based decoder.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Length-checked fixed-size read (the slice is exactly `N` bytes, so
    /// the copy cannot fail — this keeps the primitives panic-free).
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// Read a ring identifier.
    pub fn id(&mut self) -> Result<Id, CodecError> {
        Ok(Id(self.u64()?))
    }

    /// Read a node reference.
    pub fn node_ref(&mut self) -> Result<NodeRef, CodecError> {
        let id = self.id()?;
        let addr = NodeAddr(self.u64()?);
        Ok(NodeRef::new(id, addr))
    }

    /// Read an optional node reference.
    pub fn opt_node_ref(&mut self) -> Result<Option<NodeRef>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.node_ref()?)),
        }
    }

    /// Read a `u16`-length-prefixed node list (bounded at 4096 entries).
    pub fn node_list(&mut self) -> Result<Vec<NodeRef>, CodecError> {
        let n = self.u16()? as usize;
        if n > 4096 {
            return Err(CodecError::BadLength(n as u64));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.node_ref()?);
        }
        Ok(out)
    }

    /// Read length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::BadLength(len as u64));
        }
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string. Invalid UTF-8 is rejected
    /// ([`CodecError::BadUtf8`]) rather than lossily replaced — a
    /// corrupted attribute name must not be aggregated under a garbled
    /// key.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let raw = self.bytes()?;
        core::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| CodecError::BadUtf8)
    }

    /// Assert the input is fully consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            Err(CodecError::TrailingBytes(self.remaining()))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn nr(id: u64) -> NodeRef {
        NodeRef::new(Id(id), NodeAddr(id + 1000))
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7).u16(999).u32(1234).u64(u64::MAX).f64(2.5);
        w.str("cpu-usage")
            .opt_node_ref(None)
            .opt_node_ref(Some(nr(9)));
        w.node_list(&[nr(1), nr(2)]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 999);
        assert_eq!(r.u32().unwrap(), 1234);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str().unwrap(), "cpu-usage");
        assert_eq!(r.opt_node_ref().unwrap(), None);
        assert_eq!(r.opt_node_ref().unwrap(), Some(nr(9)));
        assert_eq!(r.node_list().unwrap(), vec![nr(1), nr(2)]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_trailing_detected() {
        let mut w = Writer::new();
        w.node_ref(nr(5)).bytes(&[1, 2, 3]);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let ok = r
                .node_ref()
                .and_then(|_| r.bytes().map(|_| ()))
                .and_then(|_| r.expect_end());
            assert!(ok.is_err(), "prefix {cut} accepted");
        }
        let mut r = Reader::new(&bytes);
        r.node_ref().unwrap();
        r.bytes().unwrap();
        r.expect_end().unwrap();
    }

    #[test]
    fn hostile_lengths_rejected() {
        let mut w = Writer::new();
        w.u16(u16::MAX);
        let bytes = w.finish();
        assert_eq!(
            Reader::new(&bytes).node_list(),
            Err(CodecError::BadLength(u16::MAX as u64))
        );
        let mut w = Writer::new();
        w.u32(1 << 30);
        let bytes = w.finish();
        assert_eq!(
            Reader::new(&bytes).bytes(),
            Err(CodecError::BadLength(1 << 30))
        );
    }

    #[test]
    fn invalid_utf8_rejected_not_mangled() {
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE, b'x']);
        let bytes = w.finish();
        assert_eq!(Reader::new(&bytes).str(), Err(CodecError::BadUtf8));
        // Valid UTF-8 (including multibyte) still round-trips.
        let mut w = Writer::new();
        w.str("grid-λ");
        let bytes = w.finish();
        assert_eq!(Reader::new(&bytes).str().unwrap(), "grid-λ");
    }

    #[test]
    fn crc32c_matches_standard_check_value() {
        // The canonical CRC32C test vector (RFC 3720 appendix / every
        // hardware implementation).
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // Sensitivity: one flipped bit changes the checksum.
        assert_ne!(crc32c(&[0x00, 0x01]), crc32c(&[0x00, 0x03]));
    }

    #[test]
    fn error_kind_labels_are_dense_and_stable() {
        let samples = [
            CodecError::Truncated,
            CodecError::BadMagic(0),
            CodecError::BadTag(0),
            CodecError::BadVersion(0),
            CodecError::BadLength(0),
            CodecError::TrailingBytes(0),
            CodecError::BadChecksum {
                computed: 0,
                stored: 1,
            },
            CodecError::BadUtf8,
        ];
        for (i, e) in samples.iter().enumerate() {
            assert_eq!(e.kind_index(), i);
            assert_eq!(e.kind_label(), ERROR_KINDS[i]);
        }
    }
}
