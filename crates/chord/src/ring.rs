//! Global-view ("static") Chord rings for analysis and experiments.
//!
//! The tree-property experiments of the paper (Fig. 7) need rings of up to
//! 8192 nodes with three identifier-placement policies: uniform random,
//! perfectly even, and *probed* (Adler et al.'s identifier probing, §3.5).
//! [`StaticRing`] holds the sorted membership, answers `successor()` queries
//! in `O(log n)`, and materialises per-node [`FingerTable`]s identical to
//! what a fully stabilized live overlay would converge to — so analysis
//! results cross-validate the protocol implementation.

use crate::finger::{FingerInfo, FingerTable, NodeAddr, NodeRef};
use crate::id::{Id, IdSpace};
use rand::Rng;

/// How node identifiers are assigned when building a ring.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IdPolicy {
    /// Uniformly random identifiers (plain Chord join).
    Random,
    /// Perfectly evenly spaced identifiers (the idealised analysis case of
    /// §3.3/§3.5).
    Even,
    /// Identifier probing at join time: each joining node probes the
    /// successor of a random id plus that successor's fingers and splits the
    /// largest owned interval (Adler et al. \[1\], §3.5).
    Probed,
}

impl IdPolicy {
    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            IdPolicy::Random => "random",
            IdPolicy::Even => "even",
            IdPolicy::Probed => "probed",
        }
    }
}

/// An immutable global view of a Chord ring: the sorted set of member
/// identifiers.
#[derive(Clone, Debug)]
pub struct StaticRing {
    space: IdSpace,
    /// Sorted ascending, unique.
    ids: Vec<Id>,
}

impl StaticRing {
    /// Build a ring from arbitrary ids (sorted + deduplicated internally).
    /// Panics on an empty membership.
    pub fn from_ids(space: IdSpace, mut ids: Vec<Id>) -> Self {
        assert!(!ids.is_empty(), "a ring needs at least one node");
        ids.sort_unstable();
        ids.dedup();
        StaticRing { space, ids }
    }

    /// Build a ring of `n` nodes following `policy`.
    pub fn build<R: Rng + ?Sized>(space: IdSpace, n: usize, policy: IdPolicy, rng: &mut R) -> Self {
        assert!(n >= 1);
        match policy {
            IdPolicy::Random => {
                let mut set = std::collections::BTreeSet::new();
                while set.len() < n {
                    set.insert(space.random(rng));
                }
                StaticRing {
                    space,
                    ids: set.into_iter().collect(),
                }
            }
            IdPolicy::Even => {
                let step = space.size() / n as u128;
                assert!(step >= 1, "space too small for {n} even nodes");
                let ids = (0..n as u128)
                    .map(|i| space.id((i * step) as u64))
                    .collect();
                StaticRing { space, ids }
            }
            IdPolicy::Probed => {
                let mut ring = StaticRing::from_ids(space, vec![space.random(rng)]);
                while ring.len() < n {
                    let id = ring.probe_join_id(rng);
                    if ring.contains(id) {
                        // Unsplittable gap (space exhausted locally): fall
                        // back to a random identifier so the build always
                        // terminates.
                        ring.insert(space.random(rng));
                    } else {
                        ring.insert(id);
                    }
                }
                ring
            }
        }
    }

    /// The identifier space.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the ring has no nodes — never, by construction.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Sorted member identifiers.
    pub fn ids(&self) -> &[Id] {
        &self.ids
    }

    /// `true` iff `id` is a member.
    pub fn contains(&self, id: Id) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Insert a node (no-op when present).
    pub fn insert(&mut self, id: Id) {
        if let Err(pos) = self.ids.binary_search(&id) {
            self.ids.insert(pos, id);
        }
    }

    /// Remove a node. Panics when removing the last member.
    pub fn remove(&mut self, id: Id) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                assert!(self.ids.len() > 1, "cannot remove the last ring member");
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// `successor(k)`: the first member at or clockwise-after `k`.
    pub fn successor(&self, k: Id) -> Id {
        match self.ids.binary_search(&k) {
            Ok(pos) => self.ids[pos],
            Err(pos) => {
                if pos == self.ids.len() {
                    self.ids[0]
                } else {
                    self.ids[pos]
                }
            }
        }
    }

    /// The member immediately preceding `id` clockwise (wrapping).
    pub fn predecessor(&self, id: Id) -> Id {
        match self.ids.binary_search(&id) {
            Ok(pos) | Err(pos) => {
                if pos == 0 {
                    *self.ids.last().unwrap()
                } else {
                    self.ids[pos - 1]
                }
            }
        }
    }

    /// Gap owned by member `id`: the clockwise distance from its predecessor.
    /// For a singleton ring this is the whole space (saturated to `u64`).
    pub fn gap_of(&self, id: Id) -> u64 {
        if self.ids.len() == 1 {
            return u64::try_from(self.space.size() - 1).unwrap_or(u64::MAX);
        }
        self.space.dist_cw(self.predecessor(id), id)
    }

    /// Average inter-node gap `d0 = 2^b / n`, the quantity Algorithm 1 line 3
    /// plugs into `g(x)`.
    pub fn d0(&self) -> u64 {
        (self.space.size() / self.ids.len() as u128).max(1) as u64
    }

    /// The id a joining node would be assigned under identifier probing:
    /// route to the successor of a random id, inspect it and its `b`
    /// fingers, split the largest owned gap at its midpoint.
    pub fn probe_join_id<R: Rng + ?Sized>(&self, rng: &mut R) -> Id {
        if self.ids.len() == 1 {
            // A singleton owns the whole circle: split it opposite the node.
            return self.space.add(self.ids[0], (self.space.size() / 2) as u64);
        }
        let anchor = self.successor(self.space.random(rng));
        let mut best = anchor;
        let mut best_gap = self.gap_of(anchor);
        for j in 1..=self.space.bits() {
            let f = self.successor(self.space.finger_start(anchor, j));
            let g = self.gap_of(f);
            if g > best_gap {
                best_gap = g;
                best = f;
            }
        }
        self.space.midpoint(self.predecessor(best), best)
    }

    /// Ratio of the maximal to minimal inter-node gap — `O(log n)` for
    /// random placement, `O(1)` with probing (§3.5).
    pub fn gap_ratio(&self) -> f64 {
        if self.ids.len() < 2 {
            return 1.0;
        }
        let mut min = u64::MAX;
        let mut max = 0u64;
        for &id in &self.ids {
            let g = self.gap_of(id);
            min = min.min(g);
            max = max.max(g);
        }
        max as f64 / min.max(1) as f64
    }

    /// Materialise the fully-stabilized [`FingerTable`] of member `id`,
    /// with FOF (predecessor/successor of each finger) populated, exactly as
    /// the live protocol converges to. `addr_of` maps ids to transport
    /// endpoints; use [`Self::table_of`] for the identity mapping.
    pub fn table_of_with(
        &self,
        id: Id,
        succ_list_len: usize,
        addr_of: &dyn Fn(Id) -> NodeAddr,
    ) -> FingerTable {
        assert!(self.contains(id), "node {id} is not a ring member");
        let space = self.space;
        let me = NodeRef::new(id, addr_of(id));
        let mut t = FingerTable::new(space, me, succ_list_len);
        if self.ids.len() == 1 {
            return t;
        }
        t.set_predecessor(Some(self.node_ref(self.predecessor(id), addr_of)));
        // Successor list: walk clockwise.
        let mut succs = Vec::with_capacity(succ_list_len);
        let mut cur = id;
        for _ in 0..succ_list_len.min(self.ids.len() - 1) {
            cur = self.successor(self.space.add(cur, 1));
            if cur == id {
                break;
            }
            succs.push(self.node_ref(cur, addr_of));
        }
        t.set_successor_list(succs);
        for j in 1..=space.bits() {
            let f = self.successor(space.finger_start(id, j));
            if f == id {
                continue;
            }
            let info = FingerInfo {
                node: self.node_ref(f, addr_of),
                pred: Some(self.node_ref(self.predecessor(f), addr_of)),
                succ: Some(self.node_ref(self.successor(space.add(f, 1)), addr_of)),
            };
            t.set_finger(j, info);
        }
        t
    }

    /// [`Self::table_of_with`] using `NodeAddr(id.raw())` endpoints.
    pub fn table_of(&self, id: Id, succ_list_len: usize) -> FingerTable {
        self.table_of_with(id, succ_list_len, &|i: Id| NodeAddr(i.raw()))
    }

    fn node_ref(&self, id: Id, addr_of: &dyn Fn(Id) -> NodeAddr) -> NodeRef {
        NodeRef::new(id, addr_of(id))
    }

    /// Full greedy finger route from `from` to the successor of `key`,
    /// inclusive of both endpoints (paper §3.1 `f_{u,v}`).
    pub fn finger_route(&self, from: Id, key: Id) -> Vec<Id> {
        let root = self.successor(key);
        let mut path = vec![from];
        let mut cur = from;
        while cur != root {
            let next =
                crate::routing::ideal_parent_basic(self.space, cur, key, &|x| self.successor(x))
                    .expect("non-root node must have a next hop");
            debug_assert!(
                self.space.dist_cw(next, key) < self.space.dist_cw(cur, key) || next == root,
                "route must progress"
            );
            path.push(next);
            cur = next;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn even16() -> StaticRing {
        StaticRing::build(
            IdSpace::new(4),
            16,
            IdPolicy::Even,
            &mut SmallRng::seed_from_u64(1),
        )
    }

    #[test]
    fn successor_and_predecessor_wrap() {
        let r = StaticRing::from_ids(IdSpace::new(4), vec![Id(2), Id(7), Id(12)]);
        assert_eq!(r.successor(Id(0)), Id(2));
        assert_eq!(r.successor(Id(2)), Id(2));
        assert_eq!(r.successor(Id(3)), Id(7));
        assert_eq!(r.successor(Id(13)), Id(2)); // wraps
        assert_eq!(r.predecessor(Id(2)), Id(12)); // wraps
        assert_eq!(r.predecessor(Id(7)), Id(2));
        assert_eq!(r.predecessor(Id(0)), Id(12));
    }

    #[test]
    fn gaps_and_d0() {
        let r = StaticRing::from_ids(IdSpace::new(4), vec![Id(2), Id(7), Id(12)]);
        assert_eq!(r.gap_of(Id(2)), 6); // 12 -> 2
        assert_eq!(r.gap_of(Id(7)), 5);
        assert_eq!(r.gap_of(Id(12)), 5);
        assert_eq!(r.d0(), 5); // 16/3
        let even = even16();
        assert_eq!(even.d0(), 1);
        assert_eq!(even.gap_ratio(), 1.0);
    }

    #[test]
    fn even_ring_ids() {
        let r = even16();
        assert_eq!(r.len(), 16);
        assert_eq!(r.ids()[3], Id(3));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut r = StaticRing::from_ids(IdSpace::new(8), vec![Id(10), Id(200)]);
        r.insert(Id(100));
        assert!(r.contains(Id(100)));
        assert_eq!(r.len(), 3);
        r.insert(Id(100)); // idempotent
        assert_eq!(r.len(), 3);
        assert!(r.remove(Id(100)));
        assert!(!r.remove(Id(100)));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn finger_route_matches_paper_fig2() {
        // Fig. 2(b): the finger route from N1 to N0 is <N1, N9, N13, N15, N0>.
        let r = even16();
        assert_eq!(
            r.finger_route(Id(1), Id(0)),
            vec![Id(1), Id(9), Id(13), Id(15), Id(0)]
        );
        // Route from the root itself is trivial.
        assert_eq!(r.finger_route(Id(0), Id(0)), vec![Id(0)]);
    }

    #[test]
    fn table_of_full_even_ring() {
        let r = even16();
        let t = r.table_of(Id(8), 3);
        assert_eq!(t.predecessor().unwrap().id, Id(7));
        assert_eq!(t.successor().unwrap().id, Id(9));
        assert_eq!(t.finger(3).unwrap().node.id, Id(12));
        assert_eq!(t.finger(4).unwrap().node.id, Id(0));
        // FOF populated.
        assert_eq!(t.finger(4).unwrap().pred.unwrap().id, Id(15));
        assert_eq!(t.finger(4).unwrap().succ.unwrap().id, Id(1));
        let ids: Vec<u64> = t.successor_list().iter().map(|s| s.id.raw()).collect();
        assert_eq!(ids, vec![9, 10, 11]);
    }

    #[test]
    fn table_of_singleton() {
        let r = StaticRing::from_ids(IdSpace::new(8), vec![Id(5)]);
        let t = r.table_of(Id(5), 4);
        assert!(t.successor().is_none());
        assert!(t.predecessor().is_none());
        assert_eq!(t.populated(), 0);
    }

    #[test]
    fn random_ring_sized_correctly() {
        let mut rng = SmallRng::seed_from_u64(42);
        let r = StaticRing::build(IdSpace::new(32), 500, IdPolicy::Random, &mut rng);
        assert_eq!(r.len(), 500);
        let mut sorted = r.ids().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, r.ids());
    }

    #[test]
    fn probing_tightens_gap_ratio() {
        let mut rng = SmallRng::seed_from_u64(7);
        let space = IdSpace::new(40);
        let random = StaticRing::build(space, 1024, IdPolicy::Random, &mut rng);
        let probed = StaticRing::build(space, 1024, IdPolicy::Probed, &mut rng);
        assert!(
            probed.gap_ratio() < random.gap_ratio(),
            "probed {} !< random {}",
            probed.gap_ratio(),
            random.gap_ratio()
        );
        // Adler et al. bound: constant factor; allow slack but require far
        // below the random ring's O(log n) spread.
        assert!(probed.gap_ratio() <= 8.0, "ratio {}", probed.gap_ratio());
    }

    #[test]
    fn probe_join_splits_largest_gap() {
        // Ring {0, 1}: the largest gap is (1 -> 0], size 255; probing must
        // split it near its midpoint regardless of the random anchor.
        let r = StaticRing::from_ids(IdSpace::new(8), vec![Id(0), Id(1)]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            let id = r.probe_join_id(&mut rng);
            assert_eq!(id, r.space().midpoint(Id(1), Id(0)));
        }
    }
}
